//! Stream a 45-minute video from orbit: plan stripes across successive
//! satellites (§4) and compare stalls against pinning one satellite.
//!
//! ```sh
//! cargo run --release --example video_striping
//! ```

use spacecdn_suite::content::catalog::ContentId;
use spacecdn_suite::content::video::{StripePlanInput, VideoObject};
use spacecdn_suite::core::striping::{plan_stripes, playback_stalls, single_satellite_stalls};
use spacecdn_suite::geo::{Geodetic, SimDuration};
use spacecdn_suite::orbit::shell::shells;
use spacecdn_suite::orbit::visibility::VisibilityMask;
use spacecdn_suite::orbit::Constellation;

fn main() {
    let constellation = Constellation::new(shells::starlink_shell1());
    let viewer = Geodetic::ground(-25.97, 32.57); // Maputo
    let mask = VisibilityMask::STARLINK;

    // A 45-minute video of 4-second DASH segments (~1.7 GB at 2.5 MB/seg).
    let video = VideoObject::new(
        ContentId(7),
        1000,
        675,
        SimDuration::from_secs(4),
        2_500_000,
    );
    println!(
        "video: {} segments, {:.0} min, {:.1} GB",
        video.segments.len(),
        video.duration().as_secs_f64() / 60.0,
        video.total_bytes() as f64 / 1e9
    );

    let input = StripePlanInput {
        video,
        start_secs: 300,
        window: SimDuration::from_mins(3),
    };
    let plan = plan_stripes(&constellation, viewer, mask, &input);
    println!("\nstripe schedule (first 8 of {}):", plan.len());
    for a in plan.iter().take(8) {
        println!(
            "  stripe {:>2} at t+{:>4.0}s → satellite {:?} ({} segments)",
            a.stripe_index,
            a.window_start.as_secs_f64() - 300.0,
            a.sat.map(|s| s.0),
            a.segments.len()
        );
    }

    let step = SimDuration::from_secs(10);
    let striped = playback_stalls(&constellation, viewer, mask, &plan, input.window, step);
    let single = single_satellite_stalls(&constellation, viewer, mask, &input, step);
    println!("\nstall fraction striped: {:.1}%", striped * 100.0);
    println!("stall fraction single satellite: {:.1}%", single * 100.0);
    println!(
        "\nWhile stripe 0 plays from satellite A, stripes 1..n upload to the \
         satellites that\nwill be overhead next — the bent pipe's latency is \
         hidden entirely (§4)."
    );
}
