//! Quickstart: build the Starlink Shell 1 network, ask where a user's
//! traffic goes, and compare the bent-pipe CDN path against a SpaceCDN
//! fetch resolved through a [`Scenario`] session.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spacecdn_suite::prelude::*;
use spacecdn_suite::terra::cdn::{anycast_select, cdn_sites};
use spacecdn_suite::terra::city::city_by_name;

fn main() {
    // 1. The network: 1584 satellites, +Grid ISLs, 22 PoPs, 41 gateways.
    let net = LsnNetwork::starlink();
    let snap = net.snapshot(SimTime::EPOCH, &FaultPlan::none());

    // 2. A subscriber in Maputo, Mozambique.
    let maputo = city_by_name("Maputo").expect("city in dataset");
    let pop = snap.home_pop(maputo.cc, maputo.position());
    println!(
        "Maputo homes to the {} PoP, {:.0} km away",
        pop.city.name,
        maputo.position().great_circle_distance(pop.position()).0
    );

    // 3. Today's CDN experience: bent pipe to the PoP, then anycast.
    let path = snap
        .starlink_rtt_to_pop(maputo.position(), &pop, None)
        .expect("path resolves");
    let sites = cdn_sites();
    let (site, pop_to_site) =
        anycast_select(pop.position(), pop.city.region, &sites, net.fiber()).expect("sites");
    println!(
        "bent-pipe CDN fetch: {:.1} ms over {} ISL hops, served from {}",
        (path.rtt + pop_to_site).ms(),
        path.isl_hops,
        site.city.name,
    );
    drop(snap); // release the borrow so the session can own the network

    // 4. SpaceCDN: 4 copies per orbital plane, fetched through a session.
    let caches = PlacementPlan::builder(PlacementStrategy::PerPlane { k: 4 })
        .seed(42)
        .build_single(net.constellation())
        .materialize(net.constellation());
    let scenario = Scenario::builder(net)
        .copies(caches)
        .hop_budget(5)
        .ground_fallback(path.rtt + pop_to_site)
        .graceful(false)
        .build();
    let fetch = scenario
        .fetch_user(maputo.position(), None)
        .outcome
        .expect("constellation alive");
    let source = match fetch.source {
        RetrievalSource::Overhead => "the satellite directly overhead".to_string(),
        RetrievalSource::Isl { hops } => format!("a satellite {hops} ISL hops away"),
        RetrievalSource::Ground => "the ground cache (space missed)".to_string(),
    };
    println!(
        "SpaceCDN fetch:      {:.1} ms from {source}",
        fetch.rtt.ms()
    );
    println!(
        "speedup: {:.1}×",
        (path.rtt + pop_to_site).ms() / fetch.rtt.ms()
    );
}
