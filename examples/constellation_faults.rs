//! Fault injection: how routing and SpaceCDN retrieval degrade as
//! satellites fail — the smoltcp-style "break it on purpose" example.
//!
//! ```sh
//! cargo run --release --example constellation_faults
//! ```

use spacecdn_suite::prelude::*;
use spacecdn_suite::terra::city::city_by_name;

fn main() {
    let net = LsnNetwork::starlink();
    let nairobi = city_by_name("Nairobi").expect("city in dataset");
    let caches = PlacementPlan::builder(PlacementStrategy::PerPlane { k: 4 })
        .seed(7)
        .build_single(net.constellation())
        .materialize(net.constellation());
    let req = RetrievalRequest::new(nairobi.position())
        .hop_budget(8)
        .ground_fallback(Latency::from_ms(150.0))
        .graceful(false);

    println!("SpaceCDN fetch from Nairobi as the fleet degrades:");
    println!(
        "{:<18} {:>10} {:>12} {:>10}",
        "failed fraction", "rtt (ms)", "source", "hops"
    );
    for failed_pct in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let mut faults = FaultPlan::none();
        let mut frng = DetRng::new(11, &format!("faults/{failed_pct}"));
        faults.fail_random_sats(net.constellation().len(), failed_pct, &mut frng);
        let snap = net.snapshot(SimTime::EPOCH, &faults);
        match req
            .execute(snap.graph(), net.access(), &caches, None)
            .outcome
        {
            Some(out) => {
                let (source, hops) = match out.source {
                    RetrievalSource::Overhead => ("overhead", 0),
                    RetrievalSource::Isl { hops } => ("isl", hops),
                    RetrievalSource::Ground => ("ground", 0),
                };
                println!(
                    "{:<18} {:>10.1} {:>12} {:>10}",
                    format!("{:.0}%", failed_pct * 100.0),
                    out.rtt.ms(),
                    source,
                    hops
                );
            }
            None => println!(
                "{:<18} {:>10} {:>12} {:>10}",
                format!("{:.0}%", failed_pct * 100.0),
                "-",
                "no service",
                "-"
            ),
        }
    }
    println!(
        "\nCopies on failed satellites vanish, paths detour around dead \
         nodes, and the\nground fallback catches what space can no longer \
         serve — degradation is graceful."
    );
}
