//! Why your Starlink dish thinks you're German: the geo-blocking
//! walkthrough (§1–2).
//!
//! ```sh
//! cargo run --release --example geoblocking
//! ```

use spacecdn_suite::measure::geoblock::{geoblock_survey, spacecdn_outcome};
use spacecdn_suite::terra::city::cities;
use spacecdn_suite::terra::geoblock::{AccessOutcome, LicenseScope};

fn main() {
    let survey = geoblock_survey();

    println!("A Starlink subscriber's public IP belongs to their PoP's country.");
    println!("For content licensed per country, that means:\n");
    for cc in ["MZ", "KE", "CY", "ES", "NG"] {
        let s = survey.iter().find(|s| s.cc == cc).expect("surveyed");
        let verdict = if s.national_content_blocked {
            format!(
                "BLOCKED from {cc}'s own national content (IP says {})",
                s.pop_cc
            )
        } else {
            "fine — the PoP is domestic".to_string()
        };
        println!("  {cc}: {verdict}");
    }

    let blocked = survey.iter().filter(|s| s.national_content_blocked).count();
    println!(
        "\n{blocked} of {} Starlink-covered countries lose access to their own \
         national content.",
        survey.len()
    );

    // And the fix: SpaceCDN enforcement at the GPS-pinned terminal.
    let mz_city = cities().iter().find(|c| c.cc == "MZ").expect("city");
    let national = LicenseScope::Countries(vec!["MZ"]);
    assert_eq!(
        spacecdn_outcome(&national, "MZ", mz_city.region),
        AccessOutcome::Allowed
    );
    println!(
        "\nA SpaceCDN knows the terminal's physical location (dishes are \
         GPS-pinned), so the\nsame Mozambican user gets their content from \
         orbit — zero unwarranted blocks."
    );
}
