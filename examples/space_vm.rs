//! Run a stateful service from orbit: plan VM replication across the
//! satellites that will serve New York over the next hour (§5 Space VMs).
//!
//! ```sh
//! cargo run --release --example space_vm
//! ```

use spacecdn_suite::core::spacevm::{plan_vm_service, VmServiceConfig};
use spacecdn_suite::geo::{Geodetic, SimTime};
use spacecdn_suite::orbit::shell::shells;
use spacecdn_suite::orbit::visibility::VisibilityMask;
use spacecdn_suite::orbit::Constellation;

fn main() {
    let constellation = Constellation::new(shells::starlink_shell1());
    let area = Geodetic::ground(40.7, -74.0); // New York service area

    let config = VmServiceConfig::default(); // 100 MB deltas, 2.5 Gbit/s ISLs
    let plan = plan_vm_service(
        &constellation,
        area,
        VisibilityMask::STARLINK,
        &config,
        SimTime::EPOCH,
        20, // 20 × 3-minute windows = one hour of service
    );

    println!("serving chain over New York (one hour, 3-minute windows):");
    for (i, sat) in plan.chain.iter().enumerate() {
        match sat {
            Some(s) => println!("  window {i:>2}: satellite {}", s.0),
            None => println!("  window {i:>2}: COVERAGE GAP"),
        }
    }

    println!("\nhand-offs:");
    for h in &plan.handoffs {
        println!(
            "  t={:>5.0}s  {} → {}  ({} hops, sync {:.2}s, {})",
            h.at.as_secs_f64(),
            h.from.0,
            h.to.0,
            h.isl_hops,
            h.sync_time.as_secs_f64(),
            if h.seamless { "seamless" } else { "LATE" }
        );
    }
    println!(
        "\n{:.0}% of hand-offs complete within the window; worst sync {:.2}s \
         of a {:.0}s budget.",
        plan.seamless_fraction() * 100.0,
        plan.worst_sync().map(|d| d.as_secs_f64()).unwrap_or(0.0),
        (config.window.0 - config.margin.0) as f64 / 1e9,
    );
    println!(
        "A 100 MB state delta crosses the laser mesh in well under a second — \
         replicated\nVMs chasing their users around the planet are a scheduling \
         problem, not a bandwidth one."
    );
}
