//! The paper's Figure 3 case study as a runnable walkthrough: why a Maputo
//! Starlink user is served from Frankfurt while their terrestrial
//! neighbour is served from across the street.
//!
//! ```sh
//! cargo run --release --example maputo_case_study
//! ```

use spacecdn_suite::measure::aim::{case_study_city, AimConfig, IspKind};
use spacecdn_suite::terra::city::city_by_name;

fn main() {
    let maputo = city_by_name("Maputo").expect("city in dataset");
    let config = AimConfig {
        epochs: 4,
        tests_per_epoch: 3,
        ..AimConfig::default()
    };

    for (isp, label) in [
        (IspKind::Starlink, "over Starlink (Fig 3a)"),
        (IspKind::Terrestrial, "over a terrestrial ISP (Fig 3b)"),
    ] {
        println!("\nCDN sites reachable from Maputo {label}:");
        let ranked = case_study_city(maputo, isp, &config);
        for (site, rtt) in ranked.iter().take(8) {
            let km = maputo.position().great_circle_distance(site.position()).0;
            println!(
                "  {:<14} {:>2}  {:>7.1} ms  {:>6.0} km",
                site.city.name,
                site.city.cc,
                rtt.ms(),
                km
            );
        }
        let (best, best_rtt) = &ranked[0];
        println!("  → optimal: {} at {:.1} ms", best.city.name, best_rtt.ms());
    }

    println!(
        "\nThe satellite user skips Johannesburg entirely: their packets \
         surface in Europe,\nso Europe is 'close' and Africa is 'far' — the \
         inversion the paper is about."
    );
}
