//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls against the value-tree
//! traits in the vendored `serde` crate. The input item is parsed directly
//! from the raw `TokenStream` (no `syn`/`quote` in this offline
//! environment) and the impl is emitted as source text.
//!
//! Supported shapes — exactly those appearing in the workspace:
//! named-field structs, tuple structs (newtypes serialize transparently,
//! wider ones as arrays), unit structs, and enums whose variants are unit
//! or newtype (externally tagged). `#[serde(transparent)]` is accepted on
//! single-field structs; it matches the default newtype encoding. Any
//! other shape or attribute produces a `compile_error!` naming it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    NamedStruct {
        fields: Vec<String>,
    },
    TupleStruct {
        arity: usize,
    },
    UnitStruct,
    /// Variant name plus payload arity (0 = unit, 1 = newtype).
    Enum {
        variants: Vec<(String, usize)>,
    },
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Split a token list into top-level comma-separated chunks, treating
/// `<...>` spans as nested. Delimited groups are single trees, so only
/// angle brackets need explicit depth tracking.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Strip leading attributes (`#[...]`, including doc comments) from a token
/// slice, returning the rest and whether `#[serde(transparent)]` was seen.
fn skip_attrs(tokens: &[TokenTree]) -> (&[TokenTree], bool) {
    let mut i = 0;
    let mut transparent = false;
    while i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            let text = args.stream().to_string();
                            if text.trim() == "transparent" {
                                transparent = true;
                            } else {
                                // Flag unknown serde attrs loudly instead of
                                // silently changing the encoding.
                                transparent = false;
                            }
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (&tokens[i..], transparent)
}

/// Skip a `pub` / `pub(...)` visibility prefix.
fn skip_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    &tokens[i..]
}

fn parse_input(input: TokenStream) -> Result<(Input, bool), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (rest, transparent) = skip_attrs(&tokens);
    let rest = skip_vis(rest);

    let (kind, rest) = match rest {
        [TokenTree::Ident(id), rest @ ..] => (id.to_string(), rest),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    let (name, rest) = match rest {
        [TokenTree::Ident(id), rest @ ..] => (id.to_string(), rest),
        _ => return Err(format!("expected a name after `{kind}`")),
    };
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the vendored serde derive"
        ));
    }

    let shape = match (kind.as_str(), rest.first()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut fields = Vec::new();
            for chunk in split_commas(&body) {
                let (chunk, _) = skip_attrs(&chunk);
                let chunk = skip_vis(chunk);
                match chunk.first() {
                    Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                    _ => return Err(format!("unparseable field in struct `{name}`")),
                }
            }
            Shape::NamedStruct { fields }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::TupleStruct {
                arity: split_commas(&body).len(),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut variants = Vec::new();
            for chunk in split_commas(&body) {
                let (chunk, _) = skip_attrs(&chunk);
                let vname = match chunk.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => return Err(format!("unparseable variant in enum `{name}`")),
                };
                let arity = match chunk.get(1) {
                    None => 0,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let body: Vec<TokenTree> = g.stream().into_iter().collect();
                        split_commas(&body).len()
                    }
                    Some(other) => {
                        return Err(format!(
                            "variant `{name}::{vname}` has unsupported payload near `{other}`"
                        ))
                    }
                };
                if arity > 1 {
                    return Err(format!(
                        "variant `{name}::{vname}` has {arity} fields; only unit and newtype variants are supported"
                    ));
                }
                variants.push((vname, arity));
            }
            Shape::Enum { variants }
        }
        _ => return Err(format!("unsupported item shape for `{name}`")),
    };

    if transparent {
        let single = match &shape {
            Shape::NamedStruct { fields } => fields.len() == 1,
            Shape::TupleStruct { arity } => *arity == 1,
            _ => false,
        };
        if !single {
            return Err(format!(
                "#[serde(transparent)] on `{name}` requires exactly one field"
            ));
        }
    }
    Ok((Input { name, shape }, transparent))
}

fn gen_serialize(input: &Input, transparent: bool) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct { fields } if transparent => {
            format!("serde::Serialize::to_json_value(&self.{})", fields[0])
        }
        Shape::NamedStruct { fields } => {
            let mut pairs = String::new();
            for f in fields {
                pairs.push_str(&format!(
                    "({:?}.to_string(), serde::Serialize::to_json_value(&self.{f})),",
                    f
                ));
            }
            format!("serde::Value::Object(vec![{pairs}])")
        }
        Shape::TupleStruct { arity: 1 } => "serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(","))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for (v, arity) in variants {
                if *arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{v} => serde::Value::String({:?}.to_string()),",
                        v
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v}(inner) => serde::Value::Object(vec![({:?}.to_string(), serde::Serialize::to_json_value(inner))]),",
                        v
                    ));
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input, transparent: bool) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct { fields } if transparent => {
            format!(
                "Ok({name} {{ {}: serde::Deserialize::from_json_value(value)? }})",
                fields[0]
            )
        }
        Shape::NamedStruct { fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: serde::Deserialize::from_json_value(value.get({f:?}).ok_or_else(|| serde::DeError::new(concat!(\"missing field `{f}` in {name}\")))?)?,",
                ));
            }
            format!(
                "match value {{\n\
                     serde::Value::Object(_) => Ok({name} {{ {inits} }}),\n\
                     other => Err(serde::DeError::new(format!(\"expected object for {name}, found {{other:?}}\"))),\n\
                 }}"
            )
        }
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(serde::Deserialize::from_json_value(value)?))")
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Deserialize::from_json_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     serde::Value::Array(items) if items.len() == {arity} => Ok({name}({})),\n\
                     other => Err(serde::DeError::new(format!(\"expected array of {arity} for {name}, found {{other:?}}\"))),\n\
                 }}",
                items.join(",")
            )
        }
        Shape::UnitStruct => format!(
            "match value {{\n\
                 serde::Value::Null => Ok({name}),\n\
                 other => Err(serde::DeError::new(format!(\"expected null for {name}, found {{other:?}}\"))),\n\
             }}"
        ),
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for (v, arity) in variants {
                if *arity == 0 {
                    arms.push_str(&format!(
                        "serde::Value::String(s) if s == {v:?} => Ok({name}::{v}),",
                    ));
                } else {
                    arms.push_str(&format!(
                        "serde::Value::Object(pairs) if pairs.len() == 1 && pairs[0].0 == {v:?} => Ok({name}::{v}(serde::Deserialize::from_json_value(&pairs[0].1)?)),",
                    ));
                }
            }
            format!(
                "match value {{\n\
                     {arms}\n\
                     other => Err(serde::DeError::new(format!(\"no variant of {name} matches {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_json_value(value: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` via the value-tree encoding.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok((parsed, transparent)) => gen_serialize(&parsed, transparent).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize` via the value-tree encoding.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok((parsed, transparent)) => gen_deserialize(&parsed, transparent).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}
