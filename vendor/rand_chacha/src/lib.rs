//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (RFC 8439 block
//! function, 8 rounds) exposed as [`ChaCha8Rng`] through the `RngCore` /
//! `SeedableRng` traits of the vendored `rand` crate. Output words are the
//! little-endian keystream in block order, which is all the workspace's
//! determinism guarantees rely on; it is not required to be bit-compatible
//! with upstream `rand_chacha`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// "expand 32-byte k" — the standard ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha8 deterministic random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key schedule words 4..12 of the state (from the 32-byte seed).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word index into `block`; 16 means exhausted.
    word_pos: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Run the ChaCha block function for the current counter into `block`.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: a fresh key per seed makes one fine.
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = ChaCha8Rng::from_seed([1; 32]);
        let mut b = ChaCha8Rng::from_seed([2; 32]);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::from_seed([9; 32]);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keystream_spans_blocks() {
        // 16 words per block: drawing 40 u32s must cross two refills
        // without repeating the block.
        let mut a = ChaCha8Rng::from_seed([3; 32]);
        let words: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        assert_ne!(&words[0..16], &words[16..32]);
    }

    #[test]
    fn output_is_balanced() {
        // Crude sanity check that the block function actually mixes: the
        // population count over many words should be near half the bits.
        let mut a = ChaCha8Rng::from_seed([5; 32]);
        let ones: u32 = (0..4096).map(|_| a.next_u32().count_ones()).sum();
        let total = 4096 * 32;
        assert!((ones as f64) > total as f64 * 0.45);
        assert!((ones as f64) < total as f64 * 0.55);
    }
}
