//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! supplies the slice of serde's surface the workspace uses: `Serialize` /
//! `Deserialize` traits (here defined over an in-memory JSON [`Value`]
//! tree rather than serde's visitor machinery), derive macros re-exported
//! from the sibling `serde_derive` crate, and impls for the primitive,
//! string, tuple and container types that appear in workspace types.
//!
//! Encoding conventions match `serde_json` defaults for the shapes the
//! workspace derives: named structs become objects in declaration order,
//! newtype structs are transparent, unit enum variants become strings, and
//! newtype enum variants are externally tagged (`{"Variant": value}`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON number, keeping the integer/float distinction so integers
/// round-trip without a fractional suffix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point value.
    Float(f64),
}

impl Number {
    /// The value as f64 (lossy for huge integers, like serde_json's
    /// `as_f64`).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::UInt(v) => v as f64,
            Number::Int(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

/// In-memory JSON document. Objects keep insertion order so serialized
/// struct fields appear in declaration order, matching derive output.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor used by generated code.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a JSON [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self`, reporting a descriptive error on shape mismatch.
    fn from_json_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(Number::UInt(v)) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    Value::Number(Number::Int(v)) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::UInt(v as u64))
                } else {
                    Value::Number(Number::Int(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(Number::UInt(v)) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    Value::Number(Number::Int(v)) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::new(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        // Workspace types carry `&'static str` for interned city/country
        // labels; deserializing one necessarily leaks the string, exactly
        // as a static-interning table would.
        String::from_json_value(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_json_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected array of {LEN}, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_get_finds_keys_in_order() {
        let v = Value::Object(vec![
            ("a".into(), Value::Bool(true)),
            ("b".into(), Value::Null),
        ]);
        assert_eq!(v.get("b"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn primitive_round_trips() {
        let x: u32 = 42;
        assert_eq!(u32::from_json_value(&x.to_json_value()).unwrap(), 42);
        let y: i32 = -7;
        assert_eq!(i32::from_json_value(&y.to_json_value()).unwrap(), -7);
        let z = 2.5f64;
        assert_eq!(f64::from_json_value(&z.to_json_value()).unwrap(), 2.5);
        let s = "hi".to_string();
        assert_eq!(String::from_json_value(&s.to_json_value()).unwrap(), "hi");
    }

    #[test]
    fn tuple_and_option_round_trip() {
        let t = ("x".to_string(), 1.5f64, 3u64);
        let v = t.to_json_value();
        let back: (String, f64, u64) = Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, t);

        let none: Option<f64> = None;
        assert_eq!(none.to_json_value(), Value::Null);
        let opt: Option<f64> = Deserialize::from_json_value(&Value::Null).unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn negative_int_rejected_by_unsigned() {
        let v = Value::Number(Number::Int(-3));
        assert!(u32::from_json_value(&v).is_err());
    }
}
