//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`, [`Bencher::iter`], [`black_box`], [`criterion_group!`]
//! and [`criterion_main!`] — as a small wall-clock harness. Each benchmark
//! is auto-calibrated to a target per-sample duration, timed over a fixed
//! number of samples, and reported as median ± spread on stdout. There is
//! no statistical regression machinery; the numbers are for relative
//! comparison within a run.
//!
//! Passing `--test` (as `cargo test --benches` does) runs each benchmark
//! body once and skips measurement, so benches double as smoke tests.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 30;
/// Target wall-clock time for one measured sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Median / min / max nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measure a closure: calibrate batch size, then time `samples`
    /// batches and record per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: double the batch size until one batch reaches the
        // target sample duration.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || batch >= 1 << 20 {
                break;
            }
            // Jump straight toward the target once we have a signal.
            let scale = (TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .ceil()
                .min(1024.0) as u64;
            batch = (batch * scale.max(2)).min(1 << 20);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                start.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((median, per_iter[0], per_iter[per_iter.len() - 1]));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.1} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.3} s ", ns / 1e9)
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        test_mode: test_mode(),
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, lo, hi)) => println!(
            "bench {id:<44} {} (min {}, max {})",
            format_ns(median),
            format_ns(lo).trim(),
            format_ns(hi).trim()
        ),
        None if b.test_mode => println!("bench {id:<44} ok (test mode)"),
        None => println!("bench {id:<44} (no measurement)"),
    }
}

/// Top-level benchmark registry handed to each bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Open a named group; group benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named group of benchmarks sharing a sample-count override.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.samples, &mut f);
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Collect bench functions under a group name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_in_normal_mode() {
        let mut b = Bencher {
            samples: 3,
            test_mode: false,
            result: None,
        };
        b.iter(|| black_box(2u64 + 2));
        let (median, lo, hi) = b.result.expect("measurement recorded");
        assert!(lo <= median && median <= hi);
        assert!(median > 0.0);
    }

    #[test]
    fn group_labels_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        assert_eq!(g.samples, 2);
        g.finish();
    }
}
