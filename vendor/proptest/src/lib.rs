//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest's API this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]` header),
//! `prop_assert!` / `prop_assert_eq!`, `prop_oneof!`,
//! `prop::collection::vec`, and a [`Strategy`] trait with range/tuple
//! strategies plus `prop_map` / `prop_flat_map`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs a fixed number of cases drawn from a ChaCha8 stream
//! seeded by the test name and case index, so failures are reproducible
//! run-to-run. For a simulation workspace whose properties are
//! deterministic in their inputs, that retains the coverage value while
//! staying dependency-free.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Deterministic per-case random source handed to strategies.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Build the RNG for one (test, case) pair. Seeding off the test name
    /// keeps cases independent across tests; seeding off the case index
    /// makes every case a fresh stream.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&hash.to_le_bytes());
        seed[8..16].copy_from_slice(&case.to_le_bytes());
        seed[16..24].copy_from_slice(&hash.rotate_left(31).to_le_bytes());
        TestRng {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }
}

/// A failed property check, carrying the formatted assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message (what `prop_assert!` expands to).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    generate: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Uniform choice among alternatives (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the already-boxed alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies, addressed as `prop::collection::*`.
pub mod prop {
    /// Strategies over growable collections.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Vec`s with uniformly chosen length.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// Generate vectors of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so helper functions can propagate with `?`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}` ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Uniform choice among strategy alternatives producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 0u32..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn tuple_and_map_compose(p in arb_pair().prop_map(|(a, b)| a as u64 + b as u64)) {
            prop_assert!(p <= 198);
        }

        #[test]
        fn flat_map_derives(pair in (1u32..10).prop_flat_map(|n| (0u32..n).prop_map(move |k| (n, k)))) {
            let (n, k) = pair;
            prop_assert!(k < n, "{k} >= {n}");
        }

        #[test]
        fn oneof_and_vec(xs in prop::collection::vec(prop_oneof![0u32..5, 100u32..105], 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for x in xs {
                prop_assert!(x < 5 || (100..105).contains(&x));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0u8..10) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let a = TestRng::for_case("t", 3).next_f64();
        let b = TestRng::for_case("t", 3).next_f64();
        assert_eq!(a, b);
        let c = TestRng::for_case("t", 4).next_f64();
        assert_ne!(a, c);
    }

    #[test]
    fn helper_functions_can_propagate() {
        fn helper(x: u32) -> Result<(), TestCaseError> {
            prop_assert!(x < 10, "x too big: {x}");
            Ok(())
        }
        assert!(helper(3).is_ok());
        assert!(helper(30).is_err());
    }
}
