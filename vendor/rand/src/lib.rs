//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of `rand`'s 0.8 API that the workspace
//! consumes: the [`Rng`] extension methods `gen` / `gen_range` and the
//! [`SeedableRng`] constructor trait. The underlying generator lives in the
//! sibling `rand_chacha` stand-in.
//!
//! Draw semantics match upstream where the workspace depends on them:
//! `gen::<f64>()` is the standard 53-bit-mantissa uniform in `[0, 1)`.
//! Integer `gen_range` uses unbiased rejection sampling; the exact stream
//! is not guaranteed to be bit-compatible with upstream `rand` (nothing in
//! this workspace stores golden values from upstream).

#![forbid(unsafe_code)]

/// Low-level uniform word source. Mirrors `rand_core::RngCore` minus the
/// fallible and byte-filling methods, which nothing here uses.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a fixed seed, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed material type (e.g. `[u8; 32]` for ChaCha).
    type Seed;
    /// Build the generator from a seed; the same seed always yields the
    /// same stream.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`] (the `Standard`
/// distribution in upstream terms).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1) — the same construction
        // upstream `rand` uses for its `Standard` f64 distribution.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait RangeSample: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased draw from `[0, span)` by rejection on the top of the u64 range.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; values at or above it
    // would bias the modulo and are redrawn (at most ~50 % rejection).
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_range_unsigned {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                lo + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}
impl_range_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $u as $t)
            }
        }
    )*};
}
impl_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl RangeSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a half-open range. Panics when the range is
    /// empty, matching upstream.
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64 keeps the test generator trivially deterministic.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = Counter(2);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..17);
            assert!((10..17).contains(&v));
        }
        assert_eq!(r.gen_range(5u64..6), 5);
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = Counter(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Counter(4);
        let _ = r.gen_range(3u32..3);
    }
}
