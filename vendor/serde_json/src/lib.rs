//! Offline stand-in for the `serde_json` crate.
//!
//! Prints and parses JSON text over the vendored `serde` crate's
//! [`Value`] tree. Provides the workspace-facing entry points
//! [`to_string`], [`to_string_pretty`] and [`from_str`], plus an
//! [`Error`] that satisfies `std::error::Error` so callers can wrap it in
//! `std::io::Error`.
//!
//! Formatting notes: output is deterministic for a given value — object
//! fields print in insertion (declaration) order, floats with an integral
//! value print with a trailing `.0` (like upstream's ryu output for e.g.
//! `1.0`), and non-finite floats print as `null` (upstream's lossy
//! behaviour for `Value`-level serialization).

#![forbid(unsafe_code)]

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_number(out: &mut String, n: &Number) {
    match *n {
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if !v.is_finite() {
                out.push_str("null");
            } else if v == v.trunc() && v.abs() < 1e16 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => push_number(out, n),
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: &str = "  ";
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                push_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_json_value());
    Ok(out)
}

/// Serialize to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_json_value(), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our own
                            // printer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_json_value(&value).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("maputo".into())),
            (
                "rtt".into(),
                Value::Array(vec![
                    Value::Number(Number::Float(1.0)),
                    Value::Number(Number::Float(42.125)),
                    Value::Number(Number::UInt(7)),
                ]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("gap".into(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            "{\"name\":\"maputo\",\"rtt\":[1.0,42.125,7],\"ok\":true,\"gap\":null}"
        );
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Bool(false)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    false\n  ]\n}");
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1i32, -2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,-2,3]");
        let back: Vec<i32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\none \"two\" \\ tab\t".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2,,]").is_err());
        assert!(parse_value("12 34").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let v = Value::Number(Number::Float(f64::NAN));
        assert_eq!(to_string(&v).unwrap(), "null");
    }
}
