//! Differential oracle for the placement-integrated traffic engine.
//!
//! The engine serves each request through heavily optimized machinery:
//! batched per-(source, epoch) geometry, jitter-invariant rank memoization
//! with append-only tail folds, a dense per-candidate cost cache, pinned
//! replicas living outside the policy fleet, and a cooperative +Grid
//! neighbor rung spliced in front of the escalation ladder. This suite
//! pins all of that against a deliberately naive reference that rescans
//! *every* candidate (plan-pinned copies first, then live pull-through
//! holders, in list order) from scratch on *every* request, reading the
//! routing tables directly.
//!
//! Both sides replay identical RNG streams (`traffic/catalog`,
//! `traffic/ranks`, `traffic/arrivals/0`, `traffic/service/0`), so with
//! `streams = 1` the engine's decision digest is an arrival-order FNV-1a
//! fold of every request's `(source, serving sat, hops, served-RTT bits)`
//! tuple — if any request is served from a different satellite, at a
//! different hop count, or with a single flipped RTT mantissa bit, the
//! digests diverge. Counters, byte tallies, the hop histogram, and the
//! raw latency samples (compared bit-for-bit) close the remaining gaps.
//!
//! The randomized sweep covers ≥200 cases across shell geometry (single
//! and dual shell), placement strategy (none / orbit-aware / random /
//! covering, with and without cooperative lookup), copy budgets and caps,
//! duty-cycle throttling, fault schedules (pristine, satellite outages,
//! GSL outages, total ground blackout), escalation ladders, epoch counts,
//! non-EPOCH start clocks, and randomized source geometry with per-epoch
//! fallback RTTs.
//!
//! Caches are oversized and TTLs outlast every horizon so the dynamic
//! holder lists evolve only by pull-through appends and fault
//! invalidations — the two transitions the serve-path memo must survive —
//! keeping the naive model's membership bookkeeping exact without
//! reimplementing eviction policies (those have their own differential
//! oracle in `spacecdn-content`).

use spacecdn_suite::content::catalog::{Catalog, ContentId};
use spacecdn_suite::content::popularity::ZipfSampler;
use spacecdn_suite::core::duty_cycle::DutyCycler;
use spacecdn_suite::core::network::LsnNetwork;
use spacecdn_suite::core::placement::{PlacementPlan, PlacementSpec};
use spacecdn_suite::core::retrieval::{neighbor_probe_cost, space_segment_cost};
use spacecdn_suite::core::scenario::Scenario;
use spacecdn_suite::core::traffic::{
    run_traffic_multishell, ArrivalStream, PolicyKind, TrafficConfig, TrafficReport, TrafficSource,
};
use spacecdn_suite::des::stream::EventStream;
use spacecdn_suite::geo::propagation::{propagation_delay, Medium};
use spacecdn_suite::geo::{DetRng, Geodetic, Latency, SimDuration, SimTime};
use spacecdn_suite::lsn::{AccessModel, FaultSchedule, IslGraph, SourceTables};
use spacecdn_suite::orbit::shell::{shells, ShellConfig};
use spacecdn_suite::orbit::{Constellation, SatIndex};
use spacecdn_suite::terra::fiber::FiberModel;
use std::sync::Arc;

/// FNV-1a parameters mirrored from the engine's decision digest.
const DIGEST_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const DIGEST_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fold_decision(digest: &mut u64, source: u32, slot: u32, hops: u32, rtt: Latency) {
    let mut h = *digest;
    for w in [source as u64, slot as u64, hops as u64, rtt.ms().to_bits()] {
        h = (h ^ w).wrapping_mul(DIGEST_PRIME);
    }
    *digest = h;
}

/// A second small Walker shell so dual-shell cases exercise the global
/// slot mapping, per-shell budget split, and cross-shell ladder compare.
fn second_shell() -> ShellConfig {
    ShellConfig {
        altitude_km: 620.0,
        inclination_deg: 70.0,
        plane_count: 6,
        sats_per_plane: 6,
        phase_factor: 1,
    }
}

fn scenarios_for(configs: &[ShellConfig], schedules: &[FaultSchedule]) -> Vec<Scenario> {
    configs
        .iter()
        .zip(schedules)
        .map(|(cfg, schedule)| {
            Scenario::builder(LsnNetwork::new(
                Constellation::new(*cfg),
                Vec::new(),
                AccessModel::default(),
                FiberModel::default(),
            ))
            .schedule(schedule.clone())
            .build()
        })
        .collect()
}

/// Everything the naive reference tallies; the subset of the engine's
/// report that pins every per-request decision.
#[derive(Debug, Default, PartialEq)]
struct NaiveOutcome {
    digest: u64,
    overhead_hits: u64,
    isl_hits: u64,
    pinned_hits: u64,
    neighbor_hits: u64,
    origin_fetches: u64,
    dead_zones: u64,
    served_bytes: u64,
    origin_bytes: u64,
    hop_histogram: Vec<u64>,
    latency_bits: Vec<u64>,
}

impl NaiveOutcome {
    fn of_report(r: &TrafficReport) -> NaiveOutcome {
        NaiveOutcome {
            digest: r.decision_digest,
            overhead_hits: r.overhead_hits,
            isl_hits: r.isl_hits,
            pinned_hits: r.pinned_hits,
            neighbor_hits: r.neighbor_hits,
            origin_fetches: r.origin_fetches,
            dead_zones: r.dead_zones,
            served_bytes: r.served_bytes,
            origin_bytes: r.origin_bytes,
            hop_histogram: r.hop_histogram.clone(),
            latency_bits: r.latencies.samples().iter().map(|l| l.to_bits()).collect(),
        }
    }
}

/// Replicate the engine's pinned-replica layout from the public plan API:
/// budget split across shells by demand mass (largest remainder), one
/// slot-keyed plan per shell, materialized to sorted global slots.
fn pinned_layout(
    spec: &PlacementSpec,
    constellations: &[&Constellation],
    shell_offsets: &[u32],
    cfg: &TrafficConfig,
) -> Vec<Vec<u32>> {
    let shells = constellations.len();
    let mass: Vec<f64> = (0..cfg.catalog_size)
        .map(|r| 1.0 / ((r + 1) as f64).powf(cfg.zipf_alpha))
        .collect();
    let shell_mass: Vec<f64> = (0..shells)
        .map(|k| mass.iter().skip(k).step_by(shells).sum())
        .collect();
    let total_mass: f64 = shell_mass.iter().sum();
    let share = |k: usize| spec.copy_budget as f64 * shell_mass[k] / total_mass;
    let mut budgets: Vec<usize> = (0..shells).map(|k| share(k).floor() as usize).collect();
    let mut left = spec.copy_budget.saturating_sub(budgets.iter().sum());
    let mut order: Vec<usize> = (0..shells).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (share(a) - share(a).floor(), share(b) - share(b).floor());
        fb.partial_cmp(&fa).expect("finite shares").then(a.cmp(&b))
    });
    for k in order {
        if left == 0 {
            break;
        }
        budgets[k] += 1;
        left -= 1;
    }
    let mut pinned: Vec<Vec<u32>> = vec![Vec::new(); cfg.catalog_size];
    for (k, constellation) in constellations.iter().enumerate() {
        let mut shell_masses = vec![0.0; cfg.catalog_size];
        for r in (k..cfg.catalog_size).step_by(shells) {
            shell_masses[r] = mass[r];
        }
        let plan = PlacementPlan::builder(spec.strategy)
            .seed(cfg.seed)
            .copy_budget(budgets[k])
            .per_object_cap(spec.per_object_cap)
            .build_for_catalog(constellation, &shell_masses);
        for r in (k..cfg.catalog_size).step_by(shells) {
            let mut slots: Vec<u32> = plan
                .sats_of(r, constellation)
                .into_iter()
                .map(|sat| shell_offsets[k] + sat.0)
                .collect();
            slots.sort_unstable();
            slots.dedup();
            pinned[r] = slots;
        }
    }
    pinned
}

/// Per-shell geometry of one (source, epoch), recomputed from scratch.
struct NaiveShellCtx {
    overhead_slot: u32,
    user_prop: Latency,
    tables: Arc<SourceTables>,
    neighbors: Vec<(u32, Latency)>,
}

/// The exhaustive reference: replay the engine's RNG streams and event
/// timeline, but resolve every request by a full candidate scan with no
/// memoization, no batching, and no cost caching.
fn naive_traffic(
    scenarios: &mut [Scenario],
    sources: &[TrafficSource],
    cfg: &TrafficConfig,
) -> NaiveOutcome {
    assert_eq!(cfg.streams, 1, "the oracle pins the single-stream digest");
    assert!(
        !cfg.placement.as_ref().is_some_and(|s| s.ground_tiers),
        "tiered ground fallback is covered by the hierarchy suite"
    );

    // Epoch-major topology snapshots, identical to the engine's freeze.
    let per_shell: Vec<Vec<Arc<IslGraph>>> = scenarios
        .iter_mut()
        .map(|sc| sc.freeze_epochs_from(cfg.start, cfg.epochs, cfg.epoch_step))
        .collect();
    let shells = per_shell.len();
    let graphs: Vec<Vec<Arc<IslGraph>>> = (0..cfg.epochs)
        .map(|e| per_shell.iter().map(|g| Arc::clone(&g[e])).collect())
        .collect();
    let mut shell_offsets = Vec::with_capacity(shells);
    let mut shell_of: Vec<u8> = Vec::new();
    let mut total_sats = 0u32;
    for (k, g) in graphs[0].iter().enumerate() {
        shell_offsets.push(total_sats);
        total_sats += g.len() as u32;
        shell_of.resize(total_sats as usize, k as u8);
    }

    // Demand model: same catalog, rank shuffle, shard sampler (one shard
    // holds everything at streams = 1), and arrival stream as the engine.
    let catalog = Catalog::generate(
        cfg.catalog_size,
        &[],
        0.0,
        &mut DetRng::new(cfg.seed, "traffic/catalog"),
    );
    let mut by_rank: Vec<ContentId> = catalog.objects().iter().map(|o| o.id).collect();
    DetRng::new(cfg.seed, "traffic/ranks").shuffle(&mut by_rank);
    let sizes: Vec<u64> = by_rank
        .iter()
        .map(|&id| catalog.get(id).expect("catalog id").size_bytes)
        .collect();
    let all_ranks: Vec<usize> = (0..cfg.catalog_size).collect();
    let sampler = ZipfSampler::over_ranks(&all_ranks, cfg.zipf_alpha);
    let weight_cdf: Vec<u64> = sources
        .iter()
        .scan(0u64, |acc, s| {
            *acc += u64::from(s.weight);
            Some(*acc)
        })
        .collect();
    let horizon = cfg.start + cfg.epoch_step.mul(cfg.epochs as u64);
    let mut arrivals = Vec::with_capacity(cfg.requests as usize);
    let mut stream = ArrivalStream::starting_at(
        cfg.seed,
        0,
        &weight_cdf,
        &sampler,
        cfg.start,
        horizon,
        cfg.requests,
    );
    while let Some(ev) = stream.next_event() {
        arrivals.push(ev);
    }

    let constellations: Vec<&Constellation> = scenarios
        .iter()
        .map(|sc| sc.network().constellation())
        .collect();
    let pinned: Vec<Vec<u32>> = match &cfg.placement {
        Some(spec) => pinned_layout(spec, &constellations, &shell_offsets, cfg),
        None => vec![Vec::new(); cfg.catalog_size],
    };
    let coop = cfg.placement.as_ref().is_some_and(|s| s.cooperative);
    let duty = DutyCycler::new(cfg.duty_fraction, cfg.duty_slot, cfg.seed);
    let access = scenarios[0].network().access();
    let mut service_rng = DetRng::new(cfg.seed, "traffic/service/0");

    let mut holders: Vec<Vec<u32>> = vec![Vec::new(); cfg.catalog_size];
    let mut out = NaiveOutcome {
        digest: DIGEST_BASIS,
        ..NaiveOutcome::default()
    };
    let ladder = &cfg.escalation;
    let rungs0 = coop as usize;

    // Epoch boundaries tick at `start + step·e` for e in 1..epochs and
    // win ties against same-instant arrivals, exactly like the engine's
    // merged stream.
    let mut epoch = 0usize;
    let mut next_boundary = 1usize;
    for &(t, a) in &arrivals {
        while next_boundary < cfg.epochs
            && cfg.start + cfg.epoch_step.mul(next_boundary as u64) <= t
        {
            epoch = next_boundary;
            // Fault invalidation: dead satellites drop every held copy,
            // in ascending global slot order (list order matters — the
            // engine swap-removes).
            for (k, graph) in graphs[epoch].iter().enumerate() {
                for local in 0..graph.len() {
                    if !graph.is_alive(SatIndex(local as u32)) {
                        let g = shell_offsets[k] + local as u32;
                        for hs in holders.iter_mut() {
                            if let Some(p) = hs.iter().position(|&x| x == g) {
                                hs.swap_remove(p);
                            }
                        }
                    }
                }
            }
            next_boundary += 1;
        }

        let si = a.source as usize;
        let rank = a.rank as usize;
        let size = sizes[rank];
        let fallback = sources[si].fallback_rtt[epoch];
        let pos = sources[si].position;

        // Retrieval geometry, rebuilt from scratch for every request.
        let mut ctx: Vec<Option<NaiveShellCtx>> = Vec::with_capacity(shells);
        let mut fill: Option<(u32, f64)> = None;
        for (k, graph) in graphs[epoch].iter().enumerate() {
            match graph.nearest_alive(pos) {
                Some((sat, slant)) => {
                    let slot = shell_offsets[k] + sat.0;
                    if fill.is_none_or(|(_, s)| slant.0 < s) {
                        fill = Some((slot, slant.0));
                    }
                    let user_prop = propagation_delay(slant, Medium::Vacuum).round_trip();
                    let neighbors = if coop {
                        let (row, kms) = graph.neighbor_row(sat.0);
                        row.iter()
                            .zip(kms)
                            .map(|(&nb, &km)| {
                                (shell_offsets[k] + nb, user_prop + neighbor_probe_cost(km))
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    ctx.push(Some(NaiveShellCtx {
                        overhead_slot: slot,
                        user_prop,
                        tables: graph.routing_tables(sat),
                        neighbors,
                    }));
                }
                None => ctx.push(None),
            }
        }

        let Some((fill, _)) = fill else {
            // Total dead zone: ground serve, no jitter draw.
            out.origin_fetches += 1;
            out.dead_zones += 1;
            out.origin_bytes += size;
            fold_decision(&mut out.digest, a.source, u32::MAX, u32::MAX, fallback);
            out.latency_bits.push(fallback.ms().to_bits());
            continue;
        };

        let jitter = Latency::from_ms(access.sched_overhead_ms_sample(&mut service_rng));

        // The exhaustive scan: every pinned copy, then every live holder,
        // each costed directly off the routing tables. Strict `<` keeps
        // the earliest candidate on ties, matching the engine's contract.
        let mut bests: Vec<Option<(Latency, u32, u32, bool)>> = vec![None; rungs0 + ladder.len()];
        let pinned_list = &pinned[rank];
        for (i, &g) in pinned_list.iter().chain(holders[rank].iter()).enumerate() {
            let is_pinned = i < pinned_list.len();
            let shell = shell_of[g as usize] as usize;
            let Some(sc) = ctx[shell].as_ref() else {
                continue;
            };
            let (rtt, hops) = if g == sc.overhead_slot {
                (sc.user_prop, 0u32)
            } else {
                let local = (g - shell_offsets[shell]) as usize;
                let h = sc.tables.hops[local];
                let (dist_km, route_hops) = sc.tables.km[local];
                if h == u32::MAX || !dist_km.is_finite() {
                    continue;
                }
                (
                    sc.user_prop + space_segment_cost(access, dist_km, route_hops),
                    h,
                )
            };
            if rungs0 == 1 {
                let cand = if hops == 0 {
                    Some((rtt, 0u32))
                } else {
                    sc.neighbors
                        .iter()
                        .find(|&&(n, _)| n == g)
                        .map(|&(_, probe)| (probe, 1))
                };
                if let Some((crtt, chops)) = cand {
                    match bests[0] {
                        Some((brtt, _, _, _)) if crtt >= brtt => {}
                        _ => bests[0] = Some((crtt, chops, g, is_pinned)),
                    }
                }
            }
            if let Some(j0) = ladder.iter().position(|&budget| hops <= budget) {
                for best in bests.iter_mut().skip(rungs0 + j0) {
                    match *best {
                        Some((brtt, _, _, _)) if rtt >= brtt => break,
                        _ => *best = Some((rtt, hops, g, is_pinned)),
                    }
                }
            }
        }

        let served = bests
            .iter()
            .enumerate()
            .filter_map(|(j, b)| b.map(|(base, hops, g, p)| (j, base + jitter, hops, g, p)))
            .find(|&(_, rtt, _, _, _)| rtt <= fallback);

        let latency = match served {
            Some((rung, rtt, hops, g, is_pinned)) => {
                if is_pinned {
                    out.pinned_hits += 1;
                }
                if rungs0 == 1 && rung == 0 && hops == 1 {
                    out.neighbor_hits += 1;
                }
                if hops == 0 {
                    out.overhead_hits += 1;
                } else {
                    out.isl_hits += 1;
                    let h = hops as usize;
                    if out.hop_histogram.len() <= h {
                        out.hop_histogram.resize(h + 1, 0);
                    }
                    out.hop_histogram[h] += 1;
                }
                out.served_bytes += size;
                fold_decision(&mut out.digest, a.source, g, hops, rtt);
                rtt
            }
            None => {
                out.origin_fetches += 1;
                out.origin_bytes += size;
                if duty.is_active(SatIndex(fill), t) && !pinned[rank].contains(&fill) {
                    let hs = &mut holders[rank];
                    if !hs.contains(&fill) {
                        hs.push(fill);
                    }
                }
                fold_decision(&mut out.digest, a.source, u32::MAX, u32::MAX, fallback);
                fallback
            }
        };
        out.latency_bits.push(latency.ms().to_bits());
    }
    out
}

/// One randomized case: drawn geometry, workload, faults, and placement.
fn run_case(case: usize, rng: &mut DetRng) -> (NaiveOutcome, NaiveOutcome, String) {
    let dual_shell = case % 3 == 2;
    let configs: Vec<ShellConfig> = if dual_shell {
        vec![shells::test_shell(), second_shell()]
    } else {
        vec![shells::test_shell()]
    };
    let epochs = 1 + rng.index(3);
    let epoch_step = SimDuration::from_secs([60, 157][rng.index(2)]);
    let start = if rng.chance(0.25) {
        SimTime::from_secs(900 + rng.index(5_000) as u64)
    } else {
        SimTime::EPOCH
    };

    // One schedule per shell, sized to that shell's fleet (fault events
    // index satellites within their own constellation).
    let mut schedules: Vec<FaultSchedule> = configs.iter().map(|_| FaultSchedule::none()).collect();
    let fault = match case % 5 {
        0 | 1 => "none",
        2 | 3 => {
            for (k, (cfg, schedule)) in configs.iter().zip(schedules.iter_mut()).enumerate() {
                let fleet = (cfg.plane_count * cfg.sats_per_plane) as usize;
                schedule.random_sat_outages(
                    fleet,
                    0.25,
                    epoch_step.mul(epochs as u64),
                    SimDuration::from_secs(120),
                    &mut rng.derive(&format!("oracle/faults/{case}/{k}")),
                );
                schedule.random_gsl_outages(
                    fleet,
                    0.15,
                    epoch_step.mul(epochs as u64),
                    SimDuration::from_secs(90),
                    &mut rng.derive(&format!("oracle/gsl/{case}/{k}")),
                );
            }
            "outage"
        }
        _ => {
            // Ground blackout: every GSL down forever — all requests are
            // dead zones, pinning the no-jitter ground path.
            for (cfg, schedule) in configs.iter().zip(schedules.iter_mut()) {
                for i in 0..cfg.plane_count * cfg.sats_per_plane {
                    schedule.gsl_outage(SatIndex(i), SimTime::EPOCH, None);
                }
            }
            "blackout"
        }
    };

    let catalog_size = 16 + rng.index(32);
    let budget = 20 + rng.index(200);
    let cap = [2usize, 4, 8, 64][rng.index(4)];
    let spec = match case % 7 {
        0 => None,
        1 => PlacementSpec::parse(&format!("perplane-2:budget-{budget}:cap-{cap}")),
        2 => PlacementSpec::parse(&format!("perplane-3:budget-{budget}:cap-{cap}:coop")),
        3 => PlacementSpec::parse(&format!("rand-24:budget-{budget}:cap-{cap}:coop")),
        4 => PlacementSpec::parse(&format!("cover-2:budget-{budget}:cap-{cap}")),
        5 => PlacementSpec::parse(&format!("frac-0.2:budget-{budget}:cap-{cap}:coop")),
        _ => PlacementSpec::parse(&format!("perplane-1:budget-{budget}:cap-{cap}:coop")),
    };
    assert!(
        case.is_multiple_of(7) || spec.is_some(),
        "case {case}: bad spec"
    );

    let source_count = 2 + rng.index(3);
    let sources: Vec<TrafficSource> = (0..source_count)
        .map(|_| TrafficSource {
            position: Geodetic::ground(rng.uniform(-55.0, 55.0), rng.uniform(-180.0, 180.0)),
            weight: 1 + rng.index(9) as u32,
            fallback_rtt: (0..epochs)
                .map(|_| Latency::from_ms(rng.uniform(25.0, 200.0)))
                .collect(),
        })
        .collect();

    let cfg = TrafficConfig {
        requests: 60 + rng.index(80) as u64,
        streams: 1,
        epochs,
        epoch_step,
        catalog_size,
        zipf_alpha: [0.7, 0.9, 1.1][rng.index(3)],
        // Oversized cache and TTL: holder lists change only by fills and
        // fault invalidations (see module docs).
        cache_bytes_per_sat: 1 << 40,
        ttl: SimDuration::from_mins(1 << 20),
        policy: PolicyKind::LruTtl,
        duty_fraction: [1.0, 0.65, 0.4][rng.index(3)],
        duty_slot: SimDuration::from_mins(10),
        escalation: if rng.chance(0.3) {
            vec![2, 6]
        } else {
            vec![1, 3, 5, 10]
        },
        placement: spec,
        seed: rng.index(1 << 30) as u64,
        start,
    };

    let label = format!(
        "case {case}: shells={} fault={fault} spec={} duty={} epochs={} requests={} seed={}",
        configs.len(),
        cfg.placement.map_or_else(|| "off".into(), |s| s.name()),
        cfg.duty_fraction,
        cfg.epochs,
        cfg.requests,
        cfg.seed,
    );

    let mut engine_scenarios = scenarios_for(&configs, &schedules);
    let report = run_traffic_multishell(&mut engine_scenarios, &sources, &cfg);
    let engine = NaiveOutcome::of_report(&report);

    let mut naive_scenarios = scenarios_for(&configs, &schedules);
    let naive = naive_traffic(&mut naive_scenarios, &sources, &cfg);
    (engine, naive, label)
}

#[test]
fn engine_matches_exhaustive_naive_scan_over_randomized_cases() {
    const CASES: usize = 210;
    let mut rng = DetRng::new(0x04AC1E, "placement-oracle");
    let mut coop_hits = 0u64;
    let mut pinned_hits = 0u64;
    let mut dead = 0u64;
    let mut space = 0u64;
    for case in 0..CASES {
        let (engine, naive, label) = run_case(case, &mut rng);
        assert_eq!(engine, naive, "engine/naive divergence at {label}");
        coop_hits += engine.neighbor_hits;
        pinned_hits += engine.pinned_hits;
        dead += engine.dead_zones;
        space += engine.overhead_hits + engine.isl_hits;
    }
    // The sweep must actually exercise every pinned path, or the oracle
    // proves nothing.
    assert!(space > 0, "no case served from space");
    assert!(pinned_hits > 0, "no case served a plan-pinned replica");
    assert!(coop_hits > 0, "no case served a cooperative neighbor probe");
    assert!(dead > 0, "no case exercised the dead-zone ground path");
}
