//! Cross-crate integration tests: the full pipeline from orbital mechanics
//! through routing, caching, and measurement.

use spacecdn_suite::content::cache::{Cache, LruCache};
use spacecdn_suite::content::catalog::{Catalog, RegionTag};
use spacecdn_suite::content::popularity::RegionalPopularity;
use spacecdn_suite::core::network::LsnNetwork;
use spacecdn_suite::core::placement::{PlacementPlan, PlacementStrategy};
use spacecdn_suite::des::{run_until, Scheduler};
use spacecdn_suite::geo::{DetRng, Latency, SimDuration, SimTime};
use spacecdn_suite::lsn::{FaultPlan, IslGraph};
use spacecdn_suite::orbit::shell::shells;
use spacecdn_suite::orbit::Constellation;
use spacecdn_suite::prelude::{RetrievalRequest, RetrievalSource};
use spacecdn_suite::terra::cdn::{anycast_select, cdn_sites};
use spacecdn_suite::terra::city::{cities, city_by_name};

#[test]
fn full_stack_fetch_pipeline() {
    // Orbit → topology → placement → retrieval, end to end.
    let net = LsnNetwork::starlink();
    let snap = net.snapshot(SimTime::from_secs(300), &FaultPlan::none());
    let caches = PlacementPlan::builder(PlacementStrategy::PerPlane { k: 4 })
        .seed(1)
        .build_single(net.constellation())
        .materialize(net.constellation());
    let mut served_from_space = 0;
    for city in ["Maputo", "London", "Tokyo", "Sao Paulo", "Nairobi"] {
        let c = city_by_name(city).unwrap();
        let out = RetrievalRequest::new(c.position())
            .hop_budget(5)
            .ground_fallback(Latency::from_ms(160.0))
            .graceful(false)
            .execute(snap.graph(), net.access(), &caches, None)
            .outcome
            .expect("constellation alive");
        assert!(
            out.rtt.ms() > 5.0 && out.rtt.ms() < 200.0,
            "{city}: {}",
            out.rtt
        );
        if out.source != RetrievalSource::Ground {
            served_from_space += 1;
        }
    }
    // 288 copies: virtually every mid-latitude fetch is served from space.
    assert!(
        served_from_space >= 4,
        "only {served_from_space} space hits"
    );
}

#[test]
fn des_drives_topology_rebuilds() {
    // A rebuild-every-minute event loop over the constellation: the clock,
    // scheduler and graph builder compose.
    let constellation = Constellation::new(shells::test_shell());
    let mut sched = Scheduler::new();
    sched.schedule_at(SimTime::EPOCH, ());
    let mut edge_counts = Vec::new();
    run_until(
        &mut edge_counts,
        &mut sched,
        SimTime::from_secs(600),
        |counts, sched, t, ()| {
            let graph = IslGraph::build(&constellation, t, &FaultPlan::none());
            counts.push(graph.edge_count());
            sched.schedule_after(SimDuration::from_secs(60), ());
        },
    );
    assert_eq!(edge_counts.len(), 11); // t = 0, 60, …, 600
    assert!(edge_counts.iter().all(|&e| e == edge_counts[0]));
}

#[test]
fn starlink_users_mapped_far_terrestrial_users_mapped_near() {
    // The paper's core mechanism as one assertion over the whole dataset:
    // for far-homed countries, Starlink's effective CDN is much farther
    // than the terrestrial one.
    let sites = cdn_sites();
    let net = LsnNetwork::starlink();
    for cc in ["MZ", "KE", "ZM"] {
        for city in cities().iter().filter(|c| c.cc == cc) {
            let (terr_site, _) =
                anycast_select(city.position(), city.region, &sites, net.fiber()).unwrap();
            let pop = spacecdn_suite::terra::starlink::home_pop(cc, city.position());
            let (star_site, _) =
                anycast_select(pop.position(), pop.city.region, &sites, net.fiber()).unwrap();
            let terr_km = city
                .position()
                .great_circle_distance(terr_site.position())
                .0;
            let star_km = city
                .position()
                .great_circle_distance(star_site.position())
                .0;
            assert!(
                star_km > terr_km + 2000.0,
                "{}: starlink CDN {star_km:.0} km vs terrestrial {terr_km:.0} km",
                city.name
            );
        }
    }
}

#[test]
fn regional_popularity_feeds_caches() {
    // Content pipeline: catalog → regional demand → LRU cache hit ratio
    // grows once the hot set is resident.
    let mut rng = DetRng::new(3, "integration-content");
    let tags = [RegionTag(0), RegionTag(1)];
    let catalog = Catalog::generate(1000, &tags, 0.5, &mut rng);
    let pop = RegionalPopularity::build(&catalog, 2, 1.0, 6.0, &mut rng);
    let mut cache = LruCache::new(200_000_000);
    for &id in pop.hot_set(RegionTag(0), 300) {
        let obj = catalog.get(id).unwrap();
        if cache.used_bytes() + obj.size_bytes > cache.capacity_bytes() {
            break;
        }
        cache.insert(id, obj.size_bytes);
    }
    let mut hits = 0;
    let n = 2000;
    for _ in 0..n {
        if cache.get(pop.sample(RegionTag(0), &mut rng)) {
            hits += 1;
        }
    }
    let ratio = hits as f64 / n as f64;
    assert!(
        ratio > 0.4,
        "hot-set cache should serve most demand: {ratio}"
    );
}

#[test]
fn faults_degrade_but_do_not_break() {
    let net = LsnNetwork::starlink();
    let mut rng = DetRng::new(9, "integration-faults");
    let mut faults = FaultPlan::none();
    faults.fail_random_sats(net.constellation().len(), 0.2, &mut rng);
    let snap = net.snapshot(SimTime::EPOCH, &faults);
    let maputo = city_by_name("Maputo").unwrap();
    let pop = snap.home_pop("MZ", maputo.position());
    let degraded = snap
        .starlink_rtt_to_pop(maputo.position(), &pop, None)
        .expect("path still resolves with 20% failures");
    let healthy = net
        .snapshot(SimTime::EPOCH, &FaultPlan::none())
        .starlink_rtt_to_pop(maputo.position(), &pop, None)
        .unwrap();
    assert!(degraded.rtt.ms() >= healthy.rtt.ms() - 5.0);
    assert!(degraded.rtt.ms() < 400.0, "got {}", degraded.rtt);
}

#[test]
fn whole_simulation_is_deterministic() {
    use spacecdn_suite::measure::aim::{AimCampaign, AimConfig};
    let cfg = AimConfig {
        epochs: 2,
        tests_per_epoch: 2,
        probes_per_test: 3,
        ..AimConfig::default()
    };
    let a = AimCampaign::run_for(&cfg, &["MZ", "ES"]);
    let b = AimCampaign::run_for(&cfg, &["MZ", "ES"]);
    let ja = serde_json::to_string(a.records()).unwrap();
    let jb = serde_json::to_string(b.records()).unwrap();
    assert_eq!(ja, jb, "bit-identical reruns");
}
