//! Coverage for the cross-campaign snapshot pool as wired into the
//! network layer: FIFO eviction at the fixed capacity, the in-process
//! kill switch, and fault-digest keying (no aliasing between distinct
//! plans, full sharing between equal ones).
//!
//! The pool is process-global, so every test serialises behind one mutex
//! and clears it on entry. The `SPACECDN_NO_SNAPSHOT_POOL` environment
//! path is latched in a `OnceLock` and lives in its own binary
//! (`tests/pool_env.rs`).

use spacecdn_suite::core::network::LsnNetwork;
use spacecdn_suite::core::{clear_graph_pool, graph_pool_stats, set_delta_override};
use spacecdn_suite::engine::set_snapshot_pool_override;
use spacecdn_suite::geo::{SimDuration, SimTime};
use spacecdn_suite::lsn::{AccessModel, FaultPlan, FaultSchedule, IslGraph};
use spacecdn_suite::orbit::shell::ShellConfig;
use spacecdn_suite::orbit::{Constellation, SatIndex};
use spacecdn_suite::terra::fiber::FiberModel;
use std::sync::Mutex;

static POOL_LOCK: Mutex<()> = Mutex::new(());

/// The network layer's pool capacity (`GRAPH_POOL_CAPACITY` in
/// `core::network`); the eviction test pins it.
const CAPACITY: usize = 32;

fn small_net() -> LsnNetwork {
    let shell = ShellConfig {
        altitude_km: 550.0,
        inclination_deg: 53.0,
        plane_count: 5,
        sats_per_plane: 5,
        phase_factor: 1,
    };
    LsnNetwork::new(
        Constellation::new(shell),
        Vec::new(),
        AccessModel::default(),
        FiberModel::default(),
    )
}

/// `(hits, misses)` deltas of `f` against the global pool counters.
fn pool_delta(f: impl FnOnce()) -> (u64, u64) {
    let (h0, m0, _) = graph_pool_stats();
    f();
    let (h1, m1, _) = graph_pool_stats();
    (h1 - h0, m1 - m0)
}

#[test]
fn fifo_eviction_at_capacity() {
    let _guard = POOL_LOCK.lock().unwrap();
    set_snapshot_pool_override(Some(true));
    clear_graph_pool();
    let net = small_net();
    let none = FaultPlan::none();

    // Fill past capacity: every epoch is a distinct key, so all miss.
    let (hits, misses) = pool_delta(|| {
        for epoch in 0..CAPACITY as u64 + 8 {
            net.snapshot(SimTime::from_secs(epoch), &none);
        }
    });
    assert_eq!(hits, 0);
    assert_eq!(misses, CAPACITY as u64 + 8);
    let (_, _, len) = graph_pool_stats();
    assert_eq!(len, CAPACITY, "pool must cap at GRAPH_POOL_CAPACITY");

    // The newest entries survive; the oldest 8 were evicted FIFO.
    let (hits, misses) = pool_delta(|| {
        net.snapshot(SimTime::from_secs(CAPACITY as u64 + 7), &none);
        net.snapshot(SimTime::from_secs(8), &none); // oldest survivor
    });
    assert_eq!((hits, misses), (2, 0), "recent epochs must still be pooled");
    let (hits, misses) = pool_delta(|| {
        net.snapshot(SimTime::from_secs(0), &none);
        net.snapshot(SimTime::from_secs(7), &none);
    });
    assert_eq!((hits, misses), (0, 2), "evicted epochs must rebuild");

    set_snapshot_pool_override(None);
    clear_graph_pool();
}

#[test]
fn override_bypasses_pool_entirely() {
    let _guard = POOL_LOCK.lock().unwrap();
    set_snapshot_pool_override(Some(false));
    clear_graph_pool();
    let net = small_net();
    let none = FaultPlan::none();

    let (hits, misses) = pool_delta(|| {
        for _ in 0..3 {
            net.snapshot(SimTime::from_secs(5), &none);
        }
    });
    assert_eq!(
        (hits, misses),
        (0, 0),
        "disabled pool must neither hit nor record misses"
    );
    let (_, _, len) = graph_pool_stats();
    assert_eq!(len, 0, "disabled pool must retain nothing");

    set_snapshot_pool_override(None);
    clear_graph_pool();
}

#[test]
fn fault_digests_key_the_pool_without_aliasing() {
    let _guard = POOL_LOCK.lock().unwrap();
    set_snapshot_pool_override(Some(true));
    clear_graph_pool();
    let net = small_net();
    let t = SimTime::from_secs(3);

    // Distinct plans at the same epoch are distinct keys.
    let mut sat_down = FaultPlan::none();
    sat_down.fail_sat(SatIndex(4));
    let mut gsl_down = FaultPlan::none();
    gsl_down.fail_gsl(SatIndex(4));
    let mut link_down = FaultPlan::none();
    link_down.fail_link(SatIndex(4), SatIndex(5));
    let (hits, misses) = pool_delta(|| {
        net.snapshot(t, &FaultPlan::none());
        net.snapshot(t, &sat_down);
        net.snapshot(t, &gsl_down);
        net.snapshot(t, &link_down);
    });
    assert_eq!(
        (hits, misses),
        (0, 4),
        "distinct fault plans must not alias to one pooled snapshot"
    );

    // The same membership assembled in a different order is the same key.
    let mut forward = FaultPlan::none();
    let mut backward = FaultPlan::none();
    for i in 0..6u32 {
        forward.fail_sat(SatIndex(i));
        backward.fail_sat(SatIndex(5 - i));
        forward.fail_link(SatIndex(i), SatIndex(i + 7));
        backward.fail_link(SatIndex(5 - i + 7), SatIndex(5 - i));
    }
    let (hits, misses) = pool_delta(|| {
        net.snapshot(t, &forward);
        net.snapshot(t, &backward);
    });
    assert_eq!(
        (hits, misses),
        (1, 1),
        "identical membership must share one pooled snapshot"
    );

    // A schedule lowering to the same members also shares the entry.
    let mut schedule = FaultSchedule::none();
    for i in 0..6u32 {
        schedule.sat_outage(SatIndex(i), SimTime::EPOCH, None);
        schedule.isl_flap(
            SatIndex(i),
            SatIndex(i + 7),
            SimTime::EPOCH,
            SimDuration::from_secs(0),
            SimDuration::from_secs(1),
        );
    }
    let (hits, misses) = pool_delta(|| {
        net.snapshot(t, &schedule.plan_at(t));
    });
    assert_eq!(
        (hits, misses),
        (1, 0),
        "a lowered schedule with equal membership must hit the pooled entry"
    );

    set_snapshot_pool_override(None);
    clear_graph_pool();
}

#[test]
fn patched_and_fresh_snapshots_never_alias_different_bytes() {
    // Delta advancement inserts *patched* graphs into the pool under the
    // same `(config, epoch, fault digest)` key a fresh build would use. A
    // later cold lookup of that key therefore serves the patched bytes —
    // which must be indistinguishable, to the bit, from building from
    // scratch.
    let _guard = POOL_LOCK.lock().unwrap();
    set_snapshot_pool_override(Some(true));
    set_delta_override(Some(true));
    clear_graph_pool();
    let net = small_net();

    let t0 = SimTime::from_secs(11);
    let t1 = SimTime::from_secs(16);
    let mut plan = FaultPlan::none();
    plan.fail_sat(SatIndex(3));
    plan.fail_gsl(SatIndex(9));
    plan.fail_link(SatIndex(12), SatIndex(13));

    // Seed an epoch, then advance through the delta path: the second
    // snapshot is a patch of the first, pooled under t1's key.
    let prev = net.snapshot(t0, &FaultPlan::none()).graph_handle();
    let patched = net.snapshot_from(t1, &plan, Some(&prev)).graph_handle();

    // A cold lookup of the same key must hit the pooled (patched) entry…
    let (hits, misses) = pool_delta(|| {
        let pooled = net.snapshot(t1, &plan).graph_handle();
        assert!(
            std::ptr::eq(pooled.as_ref(), patched.as_ref()),
            "lookup must serve the pooled patched snapshot"
        );
    });
    assert_eq!((hits, misses), (1, 0));

    // …and the patched bytes must equal an independent fresh build's.
    let fresh = IslGraph::build(net.constellation(), t1, &plan);
    assert_eq!(patched.time(), fresh.time());
    let (po, pn, pl) = patched.csr();
    let (fo, fn_, fl) = fresh.csr();
    assert_eq!(po, fo, "patched CSR offsets diverge from fresh build");
    assert_eq!(pn, fn_, "patched CSR neighbours diverge from fresh build");
    for (k, (a, b)) in pl.iter().zip(fl).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "length bits diverge at edge {k}");
    }
    for i in 0..patched.len() as u32 {
        let s = SatIndex(i);
        assert_eq!(patched.is_alive(s), fresh.is_alive(s), "alive bit {i}");
        assert_eq!(patched.gsl_alive(s), fresh.gsl_alive(s), "servable bit {i}");
        let (a, b) = (patched.position(s), fresh.position(s));
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "pos x bits {i}");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "pos y bits {i}");
        assert_eq!(a.z.to_bits(), b.z.to_bits(), "pos z bits {i}");
    }

    set_delta_override(None);
    set_snapshot_pool_override(None);
    clear_graph_pool();
}
