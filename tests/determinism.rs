//! Determinism regression tests for the experiment engine and routing
//! caches: campaign outputs must be byte-identical regardless of thread
//! count, and memoized routing tables must match direct recomputation —
//! including on degraded topologies.
//!
//! These tests mutate process-global engine/cache overrides, so they are
//! serialised behind one mutex rather than relying on test-runner
//! ordering.

use spacecdn_suite::core::{clear_graph_pool, graph_pool_stats};
use spacecdn_suite::engine::{set_snapshot_pool_override, set_thread_override};
use spacecdn_suite::geo::{DetRng, SimTime};
use spacecdn_suite::lsn::{
    set_routing_cache_override, FaultPlan, FaultSchedule, IslGraph, SourceTables,
};
use spacecdn_suite::measure::aim::{AimCampaign, AimConfig};
use spacecdn_suite::measure::spacecdn::hop_bound_experiment;
use spacecdn_suite::orbit::shell::shells;
use spacecdn_suite::orbit::{Constellation, SatIndex};
use std::sync::Mutex;

/// Serialises tests that touch the global thread/cache overrides.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    set_thread_override(Some(threads));
    let out = f();
    set_thread_override(None);
    out
}

#[test]
fn aim_campaign_identical_at_any_thread_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let cfg = AimConfig {
        epochs: 3,
        tests_per_epoch: 2,
        probes_per_test: 3,
        ..AimConfig::default()
    };
    let countries = ["MZ", "ES", "KE", "JP"];
    let sequential = with_thread_count(1, || {
        serde_json::to_string(AimCampaign::run_for(&cfg, &countries).records()).unwrap()
    });
    for threads in [2, 5] {
        let parallel = with_thread_count(threads, || {
            serde_json::to_string(AimCampaign::run_for(&cfg, &countries).records()).unwrap()
        });
        assert_eq!(
            sequential, parallel,
            "AIM records diverged at {threads} threads"
        );
    }
}

/// Flatten a Fig-7 sweep into a comparable string (Percentiles doesn't
/// expose its raw samples, so compare the full quantile ladder plus the
/// exact hop histogram and fallback count).
fn fig7_fingerprint() -> String {
    let mut out = String::new();
    for mut r in hop_bound_experiment(&[1, 3, 5], 60, 2, 23, &FaultSchedule::none()) {
        out.push_str(&format!(
            "bound={}:fallbacks={};",
            r.max_hops, r.ground_fallbacks
        ));
        out.push_str(&format!("hops={:?};", r.hop_histogram));
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            out.push_str(&format!("q{q}={:?};", r.latencies.quantile(q)));
        }
    }
    out
}

#[test]
fn fig7_sweep_identical_at_any_thread_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let sequential = with_thread_count(1, fig7_fingerprint);
    let parallel = with_thread_count(4, fig7_fingerprint);
    assert_eq!(sequential, parallel, "Fig-7 sweep depends on thread count");
}

#[test]
fn fig7_sweep_identical_with_and_without_snapshot_pool() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    set_snapshot_pool_override(Some(false));
    clear_graph_pool();
    let unpooled = fig7_fingerprint();

    set_snapshot_pool_override(Some(true));
    clear_graph_pool();
    let (hits0, _, _) = graph_pool_stats();
    let pooled = fig7_fingerprint();
    // Re-running the sweep now reuses every epoch snapshot from the pool.
    let pooled_again = fig7_fingerprint();
    let (hits1, _, len) = graph_pool_stats();

    set_snapshot_pool_override(None);
    clear_graph_pool();

    assert_eq!(unpooled, pooled, "snapshot pool changes Fig-7 output");
    assert_eq!(pooled, pooled_again, "pooled rerun diverged");
    assert!(hits1 > hits0, "second pooled run never hit the pool");
    assert!(len > 0, "pool retained no snapshots");
}

#[test]
fn fig7_sweep_identical_with_and_without_metrics() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    // Telemetry must be a pure observer: forcing it off and on around the
    // same campaign has to produce byte-identical results.
    spacecdn_suite::telemetry::set_metrics_override(Some(false));
    clear_graph_pool();
    let without = fig7_fingerprint();

    spacecdn_suite::telemetry::set_metrics_override(Some(true));
    clear_graph_pool();
    let with = fig7_fingerprint();

    spacecdn_suite::telemetry::set_metrics_override(None);
    clear_graph_pool();
    assert_eq!(without, with, "telemetry perturbs Fig-7 output");
}

#[test]
fn stable_metrics_identical_at_any_thread_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    // Metrics tagged `Determinism::Stable` count deterministic campaign
    // work (retrieval outcomes, trial counts, spatial queries), so their
    // values — unlike racy cache-hit splits or timings — must not depend
    // on how the work was scheduled. Reset the registry and the snapshot
    // pool before each run so each fingerprint covers exactly one sweep.
    spacecdn_suite::telemetry::set_metrics_override(Some(true));
    let fingerprint_at = |threads: usize| {
        with_thread_count(threads, || {
            clear_graph_pool();
            spacecdn_suite::telemetry::reset();
            let _ = fig7_fingerprint();
            spacecdn_suite::telemetry::snapshot().stable_fingerprint()
        })
    };
    let sequential = fingerprint_at(1);
    assert!(
        sequential.contains("core.retrieval."),
        "stable fingerprint missing retrieval metrics:\n{sequential}"
    );
    for threads in [2, 5] {
        let parallel = fingerprint_at(threads);
        assert_eq!(
            sequential, parallel,
            "stable metrics diverged at {threads} threads"
        );
    }
    spacecdn_suite::telemetry::set_metrics_override(None);
    clear_graph_pool();
}

/// Flatten one full-constellation traffic-engine run into a comparable
/// string: every counter, both byte tallies, the per-shell breakdown,
/// the exact hop histogram, and the full quantile ladder as raw bits.
fn traffic_fingerprint() -> String {
    use spacecdn_suite::prelude::{
        run_traffic_multishell, starlink_shell_scenarios, FaultSchedule, Geodetic, Latency,
        TrafficConfig, TrafficSource,
    };
    let mut scenarios = starlink_shell_scenarios(&[0, 1, 2, 3], &FaultSchedule::none());
    let cfg = TrafficConfig {
        requests: 4_000,
        streams: 5,
        epochs: 2,
        catalog_size: 600,
        cache_bytes_per_sat: 256 << 20,
        ..TrafficConfig::default()
    };
    let sources: Vec<TrafficSource> = [
        (40.4, -3.7, 6u32),
        (-25.97, 32.57, 2),
        (51.5, -0.13, 9),
        (35.68, 139.69, 10),
    ]
    .into_iter()
    .map(|(lat, lon, weight)| TrafficSource {
        position: Geodetic::ground(lat, lon),
        weight,
        fallback_rtt: vec![Latency::from_ms(140.0); cfg.epochs],
    })
    .collect();
    let mut r = run_traffic_multishell(&mut scenarios, &sources, &cfg);
    let mut out = format!(
        "req={};oh={};isl={};origin={};dead={};ins={};ev={};ttl={};inv={};served={};ob={};hops={:?};shells={:?};",
        r.requests,
        r.overhead_hits,
        r.isl_hits,
        r.origin_fetches,
        r.dead_zones,
        r.inserts,
        r.evictions,
        r.ttl_expiries,
        r.invalidations,
        r.served_bytes,
        r.origin_bytes,
        r.hop_histogram,
        r.per_shell,
    );
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        out.push_str(&format!(
            "q{q}={:?};",
            r.latencies.quantile(q).map(f64::to_bits)
        ));
    }
    out
}

#[test]
fn traffic_engine_identical_at_any_thread_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let sequential = with_thread_count(1, traffic_fingerprint);
    for threads in [2, 5, 8] {
        let parallel = with_thread_count(threads, traffic_fingerprint);
        assert_eq!(
            sequential, parallel,
            "traffic engine diverged at {threads} threads"
        );
    }
}

/// [`traffic_fingerprint`] with an orbit-aware placement plan pinned
/// under the pull-through fleets and cooperative neighbor lookup on:
/// covers the pre-seeded holder lists, the pinned/neighbor hit split,
/// the ground-tier counters and the per-request decision digest across
/// the parallelism grain.
fn traffic_placement_fingerprint() -> String {
    use spacecdn_suite::prelude::{
        run_traffic_multishell, starlink_shell_scenarios, FaultSchedule, Geodetic, Latency,
        PlacementSpec, TrafficConfig, TrafficSource,
    };
    let mut scenarios = starlink_shell_scenarios(&[0, 1], &FaultSchedule::none());
    let cfg = TrafficConfig {
        requests: 4_000,
        streams: 5,
        epochs: 2,
        catalog_size: 600,
        cache_bytes_per_sat: 256 << 20,
        placement: Some(
            PlacementSpec::parse("perplane-4:budget-4000:cap-64:coop").expect("valid spec"),
        ),
        ..TrafficConfig::default()
    };
    let sources: Vec<TrafficSource> = [
        (40.4, -3.7, 6u32),
        (-25.97, 32.57, 2),
        (51.5, -0.13, 9),
        (35.68, 139.69, 10),
    ]
    .into_iter()
    .map(|(lat, lon, weight)| TrafficSource {
        position: Geodetic::ground(lat, lon),
        weight,
        fallback_rtt: vec![Latency::from_ms(140.0); cfg.epochs],
    })
    .collect();
    let mut r = run_traffic_multishell(&mut scenarios, &sources, &cfg);
    let mut out = format!(
        "req={};oh={};isl={};origin={};dead={};ins={};ev={};ttl={};inv={};pin={};nb={};ge={};gr={};go={};digest={:#018x};served={};ob={};hops={:?};shells={:?};",
        r.requests,
        r.overhead_hits,
        r.isl_hits,
        r.origin_fetches,
        r.dead_zones,
        r.inserts,
        r.evictions,
        r.ttl_expiries,
        r.invalidations,
        r.pinned_hits,
        r.neighbor_hits,
        r.ground_edge_hits,
        r.ground_regional_hits,
        r.ground_origin_hits,
        r.decision_digest,
        r.served_bytes,
        r.origin_bytes,
        r.hop_histogram,
        r.per_shell,
    );
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        out.push_str(&format!(
            "q{q}={:?};",
            r.latencies.quantile(q).map(f64::to_bits)
        ));
    }
    out
}

#[test]
fn placement_traffic_identical_at_any_thread_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let sequential = with_thread_count(1, traffic_placement_fingerprint);
    // The pin only means something if the placement path actually ran:
    // pinned replicas and the coop rung must both serve requests here.
    assert!(
        sequential.contains("pin=") && !sequential.contains("pin=0;"),
        "placement fingerprint served no pinned hits:\n{sequential}"
    );
    assert!(
        !sequential.contains("nb=0;"),
        "placement fingerprint served no cooperative neighbor hits:\n{sequential}"
    );
    for threads in [2, 5, 8] {
        let parallel = with_thread_count(threads, traffic_placement_fingerprint);
        assert_eq!(
            sequential, parallel,
            "placement-enabled traffic diverged at {threads} threads"
        );
    }
}

/// [`traffic_fingerprint`] under a specific cache policy, single shell,
/// with caches tight enough that every policy's eviction path runs hot.
fn traffic_policy_fingerprint(policy: spacecdn_suite::prelude::PolicyKind) -> String {
    use spacecdn_suite::prelude::{
        run_traffic_multishell, starlink_shell_scenarios, FaultSchedule, Geodetic, Latency,
        TrafficConfig, TrafficSource,
    };
    let mut scenarios = starlink_shell_scenarios(&[0], &FaultSchedule::none());
    let cfg = TrafficConfig {
        requests: 4_000,
        streams: 5,
        epochs: 2,
        catalog_size: 600,
        cache_bytes_per_sat: 8 << 20,
        policy,
        ..TrafficConfig::default()
    };
    let sources: Vec<TrafficSource> = [
        (40.4, -3.7, 6u32),
        (-25.97, 32.57, 2),
        (51.5, -0.13, 9),
        (35.68, 139.69, 10),
    ]
    .into_iter()
    .map(|(lat, lon, weight)| TrafficSource {
        position: Geodetic::ground(lat, lon),
        weight,
        fallback_rtt: vec![Latency::from_ms(140.0); cfg.epochs],
    })
    .collect();
    let mut r = run_traffic_multishell(&mut scenarios, &sources, &cfg);
    let mut out = format!(
        "req={};oh={};isl={};origin={};dead={};ins={};ev={};ttl={};inv={};served={};ob={};hops={:?};",
        r.requests,
        r.overhead_hits,
        r.isl_hits,
        r.origin_fetches,
        r.dead_zones,
        r.inserts,
        r.evictions,
        r.ttl_expiries,
        r.invalidations,
        r.served_bytes,
        r.origin_bytes,
        r.hop_histogram,
    );
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        out.push_str(&format!(
            "q{q}={:?};",
            r.latencies.quantile(q).map(f64::to_bits)
        ));
    }
    out
}

#[test]
fn traffic_engine_identical_at_any_thread_count_for_every_policy() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    // Each policy's TrafficReport must be byte-identical at 1/2/5/8
    // worker threads: shard fleets are per-stream, so policy state must
    // never leak across the parallelism grain.
    let mut fingerprints = Vec::new();
    for policy in spacecdn_suite::prelude::PolicyKind::ALL {
        let sequential = with_thread_count(1, || traffic_policy_fingerprint(policy));
        for threads in [2, 5, 8] {
            let parallel = with_thread_count(threads, || traffic_policy_fingerprint(policy));
            assert_eq!(
                sequential,
                parallel,
                "{} policy diverged at {threads} threads",
                policy.name()
            );
        }
        fingerprints.push(sequential);
    }
    // Sanity: the knob actually reaches the engine — under eviction
    // pressure the policies cannot all tell the same story.
    fingerprints.dedup();
    assert!(
        fingerprints.len() > 1,
        "all policies produced identical reports — policy knob inert?"
    );
}

#[test]
fn traffic_engine_identical_with_delta_on_and_off_at_any_thread_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    // Delta-aware epoch advancement patches the previous epoch's graph in
    // place instead of rebuilding; a full-constellation traffic report
    // must come out byte-identical either way, at every thread count.
    spacecdn_suite::core::set_delta_override(Some(false));
    clear_graph_pool();
    let canonical = with_thread_count(1, traffic_fingerprint);
    for delta in [false, true] {
        spacecdn_suite::core::set_delta_override(Some(delta));
        for threads in [1, 2, 5, 8] {
            clear_graph_pool();
            let fp = with_thread_count(threads, traffic_fingerprint);
            assert_eq!(
                canonical, fp,
                "traffic engine diverged with delta={delta} at {threads} threads"
            );
        }
    }
    spacecdn_suite::core::set_delta_override(None);
    clear_graph_pool();
}

#[test]
fn hop_distance_between_is_symmetric_and_reuses_tables() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let constellation = Constellation::new(shells::starlink_shell1());
    let mut rng = DetRng::new(79, "determinism-symmetry");
    let mut faults = FaultPlan::none();
    faults.fail_random_sats(constellation.len(), 0.1, &mut rng);
    let graph = IslGraph::build(&constellation, SimTime::from_secs(211), &faults);

    set_routing_cache_override(Some(true));
    let pairs = [(0u32, 900u32), (111, 1583), (700, 42)];
    for (a, b) in pairs {
        let (a, b) = (SatIndex(a), SatIndex(b));
        let forward = graph.hop_distance_between(a, b);
        // The reverse query must be answered from the same table (hops are
        // integer BFS levels — direction can't change them) without
        // computing b's table.
        let before = graph.reverse_table_hits();
        let backward = graph.hop_distance_between(b, a);
        assert_eq!(forward, backward, "hop distance asymmetric {a:?}↔{b:?}");
        assert!(
            graph.reverse_table_hits() > before,
            "reverse lookup recomputed instead of reusing {a:?}'s table"
        );
    }
    set_routing_cache_override(None);
}

#[test]
fn routing_cache_matches_direct_computation_on_faulted_graph() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let constellation = Constellation::new(shells::starlink_shell1());
    let mut rng = DetRng::new(77, "determinism-faults");
    let mut faults = FaultPlan::none();
    faults.fail_random_sats(constellation.len(), 0.15, &mut rng);
    let graph = IslGraph::build(&constellation, SimTime::from_secs(431), &faults);

    for src in [0u32, 111, 700, 1583] {
        let src = SatIndex(src);
        let direct = SourceTables::compute(&graph, src);

        set_routing_cache_override(Some(true));
        let cached = graph.routing_tables(src);
        assert_eq!(*cached, direct, "cached tables diverge for {src:?}");
        // A second lookup returns the same memoized entry.
        assert_eq!(*graph.routing_tables(src), direct);

        set_routing_cache_override(Some(false));
        let uncached = graph.routing_tables(src);
        assert_eq!(*uncached, direct, "kill switch changes answers for {src:?}");
    }
    set_routing_cache_override(None);
}

#[test]
fn link_load_totals_identical_across_instances() {
    // `LinkLoad` keeps loads in a `HashMap`, whose iteration order is
    // seeded per instance. Float addition is not associative, so summing
    // in iteration order made `total_link_work` (and `isl_load.json`)
    // drift in the last ulp between runs. Build the same load twice —
    // two maps, two seeds — and demand bit-identical aggregates.
    let constellation = Constellation::new(shells::starlink_shell1());
    let graph = IslGraph::build(&constellation, SimTime::EPOCH, &FaultPlan::none());
    let build = || {
        let mut load = spacecdn_suite::lsn::LinkLoad::new();
        for i in 0..400u32 {
            let src = SatIndex((i * 37) % constellation.len() as u32);
            let dst = SatIndex((i * 101 + 13) % constellation.len() as u32);
            // Demands with busy mantissas so any reordering of the sum
            // shows up in the low bits.
            load.route(&graph, src, dst, 0.1 * (f64::from(i) + 0.37));
        }
        load
    };
    let a = build();
    let b = build();
    assert_eq!(
        a.total_link_work().to_bits(),
        b.total_link_work().to_bits(),
        "total_link_work drifts across HashMap instances"
    );
    assert_eq!(a.mean_hops().to_bits(), b.mean_hops().to_bits());
    assert_eq!(a.max_link(), b.max_link());
    assert_eq!(a.loaded_links(), b.loaded_links());
}

#[test]
fn nearest_alive_spatial_matches_linear_on_faulted_graph() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let constellation = Constellation::new(shells::starlink_shell1());
    let mut rng = DetRng::new(78, "determinism-spatial");
    let mut faults = FaultPlan::none();
    faults.fail_random_sats(constellation.len(), 0.25, &mut rng);
    let graph = IslGraph::build(&constellation, SimTime::from_secs(97), &faults);

    set_routing_cache_override(Some(true));
    for lat in [-52.0, -10.0, 0.0, 33.0, 51.5] {
        for lon in [-170.0, -45.0, 0.0, 77.0, 139.0] {
            let g = spacecdn_suite::geo::Geodetic::ground(lat, lon);
            assert_eq!(
                graph.nearest_alive(g),
                graph.nearest_alive_linear(g),
                "spatial index diverges at lat={lat} lon={lon}"
            );
        }
    }
    set_routing_cache_override(None);
}
