//! API-drift guard: the deprecated free functions (`retrieve`,
//! `retrieve_resilient`, `retrieve_multishell`) and the deprecated
//! placement method (`PlacementStrategy::place`) exist only as
//! compatibility shims. New code must go through [`RetrievalRequest`],
//! [`Scenario`] or [`PlacementPlan`]; this test scans every `.rs` file
//! in the workspace and fails if a call site appears outside the
//! explicit allowlist.

use std::fs;
use std::path::{Path, PathBuf};

/// Files that are *supposed* to reference the deprecated entry points:
/// the shim definitions themselves and the suite that proves the shims
/// bit-identical to the unified path.
const ALLOWLIST: &[&str] = &[
    "crates/core/src/retrieval.rs",
    "crates/core/tests/equivalence.rs",
    // The `PlacementStrategy::place` shim definition plus the test
    // proving it bit-identical to `PlacementPlan::build_single`.
    "crates/core/src/placement.rs",
    // This guard itself: the self-test below embeds call-shaped string
    // literals so the scanner can prove it still fires.
    "tests/api_drift.rs",
];

const DEPRECATED: &[&str] = &[
    "retrieve",
    "retrieve_resilient",
    "retrieve_multishell",
    "place",
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable workspace dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "results" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// True when `line[idx..]` is a *call* to `name`: `name(` with no
/// identifier character immediately before it (rejects `ref_retrieve(`,
/// `fetch_retrieve(`…) and not a definition (`fn name(`).
fn is_call_site(line: &str, idx: usize, name: &str) -> bool {
    let bytes = line.as_bytes();
    if idx > 0 {
        let prev = bytes[idx - 1] as char;
        if prev.is_ascii_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let after = &line[idx + name.len()..];
    if !after.trim_start().starts_with('(') {
        return false;
    }
    !line[..idx].trim_end().ends_with("fn")
}

fn deprecated_call_on(line: &str) -> Option<&'static str> {
    let code = line.trim_start();
    if code.starts_with("//") || code.starts_with("use ") || code.starts_with("pub use ") {
        return None;
    }
    for name in DEPRECATED {
        let mut from = 0;
        while let Some(rel) = line[from..].find(name) {
            let idx = from + rel;
            // Longest-match guard: `retrieve` must not fire inside
            // `retrieve_resilient(`/`retrieve_multishell(`.
            let after = &line[idx + name.len()..];
            let extends = after
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            if !extends && is_call_site(line, idx, name) {
                return Some(name);
            }
            from = idx + name.len();
        }
    }
    None
}

#[test]
fn deprecated_retrieval_shims_have_no_new_callers() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    assert!(
        files.len() > 30,
        "workspace scan looks broken: only {} .rs files found",
        files.len()
    );

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        if ALLOWLIST.contains(&rel.as_ref()) {
            continue;
        }
        let src = fs::read_to_string(path).expect("readable source file");
        for (ln, line) in src.lines().enumerate() {
            if let Some(name) = deprecated_call_on(line) {
                violations.push(format!("{rel}:{}: calls deprecated `{name}`", ln + 1));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "deprecated retrieval entry points called outside the shim allowlist \
         (use RetrievalRequest or Scenario instead):\n{}",
        violations.join("\n")
    );

    // The allowlisted files must still exist — otherwise the guard is
    // silently scanning nothing.
    for rel in ALLOWLIST {
        assert!(root.join(rel).is_file(), "allowlisted file {rel} vanished");
    }
}

#[test]
fn drift_guard_detects_a_planted_call() {
    // Self-test: the scanner must actually fire on a realistic call.
    assert_eq!(
        deprecated_call_on("    let out = retrieve(graph, access, user, &caches, &cfg, None);"),
        Some("retrieve")
    );
    assert_eq!(
        deprecated_call_on("let r = retrieve_resilient(g, a, u, &c, &rc, None);"),
        Some("retrieve_resilient")
    );
    assert_eq!(
        deprecated_call_on("retrieve_multishell(&graphs, &access, user, &sets, &cfg, None)"),
        Some("retrieve_multishell")
    );
    assert_eq!(
        deprecated_call_on("    let set = strat.place(&constellation, &mut rng);"),
        Some("place")
    );
    // …and must NOT fire on definitions, prefixed identifiers, or imports.
    assert_eq!(deprecated_call_on("pub fn retrieve("), None);
    assert_eq!(deprecated_call_on("    ref_retrieve(graph, user)"), None);
    assert_eq!(
        deprecated_call_on("use spacecdn_core::{retrieve, Scenario};"),
        None
    );
    assert_eq!(
        deprecated_call_on("// call retrieve(...) for the old way"),
        None
    );
    // The replacement API and ordinary string methods share the stem:
    // none of these are calls to the deprecated method.
    assert_eq!(deprecated_call_on("pub fn place("), None);
    assert_eq!(
        deprecated_call_on("let text = template.replace(\"{B}\", &budget);"),
        None
    );
    assert_eq!(deprecated_call_on("builder.placement(spec).build()"), None);
    assert_eq!(
        deprecated_call_on("session.set_placement(Some(spec));"),
        None
    );
}
