//! `SPACECDN_NO_SNAPSHOT_POOL=1` must bypass the snapshot pool.
//!
//! The environment default is latched in a `OnceLock` on first read, so
//! this check needs a process where the variable is set *before* anything
//! queries pool enablement — hence its own test binary with exactly one
//! test (in-process override paths live in `tests/pool.rs`).

use spacecdn_suite::core::graph_pool_stats;
use spacecdn_suite::core::network::LsnNetwork;
use spacecdn_suite::engine::snapshot_pool_enabled;
use spacecdn_suite::geo::SimTime;
use spacecdn_suite::lsn::{AccessModel, FaultPlan};
use spacecdn_suite::orbit::shell::ShellConfig;
use spacecdn_suite::orbit::Constellation;
use spacecdn_suite::terra::fiber::FiberModel;

#[test]
fn env_var_disables_snapshot_pool() {
    // Safe to set here: this binary's only test, so no other code can
    // have latched the OnceLock yet.
    std::env::set_var("SPACECDN_NO_SNAPSHOT_POOL", "1");
    assert!(
        !snapshot_pool_enabled(),
        "SPACECDN_NO_SNAPSHOT_POOL=1 must disable pooling"
    );

    let net = LsnNetwork::new(
        Constellation::new(ShellConfig {
            altitude_km: 550.0,
            inclination_deg: 53.0,
            plane_count: 4,
            sats_per_plane: 4,
            phase_factor: 1,
        }),
        Vec::new(),
        AccessModel::default(),
        FiberModel::default(),
    );
    let none = FaultPlan::none();
    net.snapshot(SimTime::from_secs(1), &none);
    net.snapshot(SimTime::from_secs(1), &none);
    let (hits, misses, len) = graph_pool_stats();
    assert_eq!(
        (hits, misses, len),
        (0, 0, 0),
        "disabled pool must never be touched"
    );
}
