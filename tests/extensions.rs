//! Integration tests for the §5-extension subsystems, exercised through the
//! umbrella crate the way a downstream user would.

use spacecdn_suite::core::costs::{compare, SpaceCdnCostModel, TerrestrialCosts};
use spacecdn_suite::core::network::LsnNetwork;
use spacecdn_suite::core::prefetch::{hot_set_overlap, DemandPredictor};
use spacecdn_suite::core::simulation::{run_workload, WorkloadConfig};
use spacecdn_suite::core::spacevm::{plan_vm_service, VmServiceConfig};
use spacecdn_suite::core::wormhole::{find_transits, wormhole_capacity};
use spacecdn_suite::geo::{DetRng, Geodetic, Km, SimDuration, SimTime};
use spacecdn_suite::lsn::{churn_report, route_samples, LinkLoad};
use spacecdn_suite::measure::geoblock::geoblock_survey;
use spacecdn_suite::measure::streaming::{simulate_session, PlayerConfig, StreamPath};
use spacecdn_suite::orbit::multishell::MultiConstellation;
use spacecdn_suite::orbit::shell::shells;
use spacecdn_suite::orbit::visibility::VisibilityMask;
use spacecdn_suite::orbit::Constellation;

#[test]
fn multishell_fleet_closes_the_polar_gap() {
    let fleet = MultiConstellation::starlink_2024();
    let pole = Geodetic::ground(82.0, 30.0);
    let full = fleet.coverage_fraction(pole, VisibilityMask::STARLINK, 12, 300);
    assert!(full > 0.8, "full fleet at 82°N: {full}");
    let shell1 = MultiConstellation::new(&[*fleet.shell(0).config()]);
    assert_eq!(
        shell1.coverage_fraction(pole, VisibilityMask::STARLINK, 12, 300),
        0.0
    );
}

#[test]
fn workload_plus_predictor_close_the_loop() {
    // The dashboard sim serves mostly from space; a predictor trained on
    // the same demand recovers the hot set it would prefetch next.
    let net = LsnNetwork::starlink();
    let report = run_workload(
        &net,
        &WorkloadConfig {
            duration: SimDuration::from_mins(5),
            mean_interarrival: SimDuration::from_millis(800),
            ..WorkloadConfig::default()
        },
    );
    assert!(report.space_hit_ratio() > 0.5);

    let mut predictor = DemandPredictor::new(0.9);
    let mut rng = DetRng::new(5, "ext-pred");
    use spacecdn_suite::content::catalog::{Catalog, RegionTag};
    use spacecdn_suite::content::popularity::RegionalPopularity;
    let catalog = Catalog::generate(800, &[RegionTag(0)], 0.5, &mut rng);
    let pop = RegionalPopularity::build(&catalog, 1, 1.0, 6.0, &mut rng);
    for _ in 0..8000 {
        predictor.observe(RegionTag(0), pop.sample(RegionTag(0), &mut rng));
    }
    let overlap = hot_set_overlap(
        &predictor.predicted_hot_set(RegionTag(0), 80),
        pop.hot_set(RegionTag(0), 80),
    );
    assert!(overlap > 0.6, "predictor overlap {overlap}");
}

#[test]
fn spacevm_and_streaming_share_the_window_math() {
    // The VM hand-off windows and the DASH stripes both ride the same
    // visibility machinery; a seamless VM plan implies stripes fit too.
    let c = Constellation::new(shells::starlink_shell1());
    let plan = plan_vm_service(
        &c,
        Geodetic::ground(48.1, 11.6),
        VisibilityMask::STARLINK,
        &VmServiceConfig::default(),
        SimTime::EPOCH,
        10,
    );
    assert_eq!(plan.seamless_fraction(), 1.0);

    let qoe = simulate_session(StreamPath::spacecdn_overhead(), PlayerConfig::default(), 1);
    assert_eq!(qoe.rebuffer_events, 0);
}

#[test]
fn wormhole_and_groundtrack_agree_on_drift_direction() {
    use spacecdn_suite::orbit::groundtrack::nodal_drift_deg_per_orbit;
    let c = Constellation::new(shells::starlink_shell1());
    // Tracks drift west ~24°/orbit…
    let drift = nodal_drift_deg_per_orbit(&c);
    assert!((23.0..25.0).contains(&drift));
    // …so the westward route has carriers and timing consistent with it.
    let transits = find_transits(
        &c,
        Geodetic::ground(50.0, 10.0),  // Europe
        Geodetic::ground(39.0, -77.0), // US East (westward!)
        Km(1500.0),
        SimTime::EPOCH,
        SimDuration::from_mins(240),
        SimDuration::from_secs(30),
    );
    let cap = wormhole_capacity(&transits, 1_000_000_000, SimDuration::from_mins(240));
    assert!(cap.carriers > 0, "westward freight must exist");
}

#[test]
fn geoblock_survey_consistent_with_homing() {
    let survey = geoblock_survey();
    for s in &survey {
        // National content is blocked exactly when the PoP sits in another
        // country.
        assert_eq!(s.national_content_blocked, s.cc != s.pop_cc, "{}", s.cc);
    }
}

#[test]
fn backbone_relief_is_an_order_of_magnitude() {
    use spacecdn_suite::core::placement::{PlacementPlan, PlacementStrategy};
    use spacecdn_suite::lsn::{bfs_nearest, FaultPlan};
    let net = LsnNetwork::starlink();
    let snap = net.snapshot(SimTime::EPOCH, &FaultPlan::none());
    let graph = snap.graph();
    let caches = PlacementPlan::builder(PlacementStrategy::PerPlane { k: 4 })
        .seed(3)
        .build_single(net.constellation())
        .materialize(net.constellation());

    let mut bent = LinkLoad::new();
    let mut space = LinkLoad::new();
    let frankfurt = Geodetic::ground(50.11, 8.68);
    let (fra_sat, _) = graph.nearest_alive(frankfurt).unwrap();
    for city in ["Maputo", "Nairobi", "Lusaka", "Kigali"] {
        let c = spacecdn_suite::terra::city::city_by_name(city).unwrap();
        let (up, _) = snap.overhead_sat(c.position()).unwrap();
        bent.route(graph, up, fra_sat, 1.0);
        let path = bfs_nearest(graph, up, 10, |s| caches.contains(&s)).unwrap();
        space.route(graph, up, *path.sats.last().unwrap(), 1.0);
    }
    assert!(
        bent.total_link_work() > 5.0 * space.total_link_work(),
        "bent {} vs space {}",
        bent.total_link_work(),
        space.total_link_work()
    );
}

#[test]
fn economics_and_duty_cycle_are_coupled() {
    // Halving the duty cycle (the Fig 8 thermal fix) doubles cost/GB; the
    // under-served-market price band tolerates it, the NA/EU band doesn't.
    let base = SpaceCdnCostModel::default();
    let halved = SpaceCdnCostModel {
        duty_cycle: base.duty_cycle / 2.0,
        ..base
    };
    let t = TerrestrialCosts::default();
    assert!(compare(&base, &t).beats_under_served);
    assert!(!compare(&base, &t).beats_well_served);
    assert!((halved.cost_per_gb() / base.cost_per_gb() - 2.0).abs() < 1e-9);
}

#[test]
fn route_churn_visible_on_long_paths() {
    let c = Constellation::new(shells::starlink_shell1());
    let samples = route_samples(
        &c,
        Geodetic::ground(-1.29, 36.82), // Nairobi
        Geodetic::ground(50.11, 8.68),  // Frankfurt
        SimTime::EPOCH,
        SimDuration::from_mins(10),
        SimDuration::from_secs(30),
    );
    let report = churn_report(&samples, SimDuration::from_secs(30)).unwrap();
    assert!(report.route_changes >= 1);
    assert!(report.max_reroute_jump_ms < 50.0);
}
