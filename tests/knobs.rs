//! Env-knob drift test: the `SPACECDN_*` table in README.md and the
//! variables the code actually reads must never diverge — a documented
//! knob nobody reads is a lie, an undocumented knob is invisible.

use std::collections::BTreeSet;
use std::path::Path;

/// Extract every `SPACECDN_[A-Z_]+` token from `text`.
fn knobs_in(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let needle = b"SPACECDN_";
    let mut i = 0;
    while let Some(pos) = text[i..].find("SPACECDN_") {
        let start = i + pos;
        let mut end = start + needle.len();
        while end < bytes.len() && (bytes[end].is_ascii_uppercase() || bytes[end] == b'_') {
            end += 1;
        }
        // Trim trailing underscores left by prefix-only mentions like
        // "SPACECDN_*" in prose.
        let token = text[start..end].trim_end_matches('_');
        if token.len() > needle.len() {
            out.insert(token.to_string());
        }
        i = end;
    }
    out
}

/// All knob tokens mentioned in `.rs` files under `dir`, recursively.
fn knobs_in_sources(dir: &Path, out: &mut BTreeSet<String>) {
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        if path.is_dir() {
            knobs_in_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).expect("read source");
            out.extend(knobs_in(&text));
        }
    }
}

#[test]
fn readme_knob_table_matches_code() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).expect("read README");
    let documented = knobs_in(&readme);
    assert!(
        !documented.is_empty(),
        "README lost its SPACECDN_* knob documentation entirely"
    );

    let mut read_in_code = BTreeSet::new();
    knobs_in_sources(&root.join("crates"), &mut read_in_code);
    knobs_in_sources(&root.join("src"), &mut read_in_code);

    let undocumented: Vec<_> = read_in_code.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "knobs read in code but missing from README.md: {undocumented:?}"
    );
    let phantom: Vec<_> = documented.difference(&read_in_code).collect();
    assert!(
        phantom.is_empty(),
        "knobs documented in README.md but read nowhere under crates/ or src/: {phantom:?}"
    );
}
