//! End-to-end assertions of the paper's headline claims, one test per
//! table/figure. These are the repository's acceptance tests: if one fails,
//! the reproduction no longer reproduces.

use spacecdn_suite::lsn::FaultSchedule;
use spacecdn_suite::measure::aim::{AimCampaign, AimConfig, IspKind};
use spacecdn_suite::measure::spacecdn::{duty_cycle_experiment, hop_bound_experiment};
use spacecdn_suite::measure::web::{
    browse_campaign, fcp_distribution, hrt_difference, PageModel, WebConfig,
};

fn aim_config() -> AimConfig {
    AimConfig {
        epochs: 4,
        tests_per_epoch: 3,
        probes_per_test: 5,
        ..AimConfig::default()
    }
}

#[test]
fn table1_starlink_always_loses_except_pop_local() {
    let ccs = [
        "GT", "MZ", "CY", "SZ", "HT", "KE", "ZM", "RW", "LT", "ES", "JP",
    ];
    let campaign = AimCampaign::run_for(&aim_config(), &ccs);
    for cc in ccs {
        let terr = campaign
            .country_stats_for(cc, IspKind::Terrestrial)
            .unwrap();
        let star = campaign.country_stats_for(cc, IspKind::Starlink).unwrap();
        // Terrestrial is faster everywhere in Table 1.
        assert!(
            terr.median_min_rtt_ms < star.median_min_rtt_ms,
            "{cc}: terr {} !< star {}",
            terr.median_min_rtt_ms,
            star.median_min_rtt_ms
        );
        // PoP-local countries have short Starlink CDN distances; far-homed
        // ones are thousands of km out.
        if ["ES", "JP"].contains(&cc) {
            assert!(star.mean_cdn_distance_km < 600.0, "{cc}: {star:?}");
            assert!(star.median_min_rtt_ms < 45.0, "{cc}: {star:?}");
        } else {
            assert!(star.mean_cdn_distance_km > 1000.0, "{cc}: {star:?}");
        }
    }
    // Africa's far-homed trio sits in the 120-160 ms band.
    for cc in ["MZ", "ZM"] {
        let star = campaign.country_stats_for(cc, IspKind::Starlink).unwrap();
        assert!(
            (115.0..175.0).contains(&star.median_min_rtt_ms),
            "{cc}: {}",
            star.median_min_rtt_ms
        );
    }
}

#[test]
fn fig2_delta_positive_nearly_everywhere_worst_in_africa() {
    let campaign = AimCampaign::run(&aim_config());
    let deltas = campaign.delta_by_country();
    assert!(
        deltas.len() >= 40,
        "need broad coverage, got {}",
        deltas.len()
    );
    let positive = deltas.iter().filter(|(_, d)| *d > 0.0).count();
    assert!(
        positive as f64 / deltas.len() as f64 > 0.9,
        "terrestrial wins nearly everywhere: {positive}/{}",
        deltas.len()
    );
    // The worst five countries are all African (the ISL-dependent band).
    let african = [
        "MZ", "ZM", "KE", "ZW", "MW", "TZ", "ZA", "BW", "NA", "MG", "AO", "UG", "SZ",
    ];
    for (cc, d) in deltas.iter().take(5) {
        assert!(
            african.contains(cc),
            "worst-5 country {cc} (Δ {d:.0} ms) not African"
        );
        assert!(*d > 80.0, "{cc} delta {d}");
    }
}

#[test]
fn fig4_nigeria_is_the_outlier() {
    let page = PageModel::typical_landing_page();
    let cfg = WebConfig {
        epochs: 4,
        fetches_per_epoch: 8,
        ..WebConfig::default()
    };
    let recs = browse_campaign(&["NG", "KE", "DE", "US", "CA", "GB"], &page, &cfg);
    let mut ng = hrt_difference(&recs, "NG");
    assert!(
        ng.fraction_at_or_below(0.0) > 0.5,
        "Starlink should win most Nigerian fetches"
    );
    for cc in ["DE", "US", "CA", "GB"] {
        let mut d = hrt_difference(&recs, cc);
        let m = d.median().unwrap();
        assert!((10.0..70.0).contains(&m), "{cc}: Δ median {m}");
    }
    let mut ke = hrt_difference(&recs, "KE");
    assert!(ke.median().unwrap() > 70.0, "Kenya gap should be large");
}

#[test]
fn fig5_fcp_gap_around_200ms() {
    let page = PageModel::typical_landing_page();
    let cfg = WebConfig {
        epochs: 4,
        fetches_per_epoch: 10,
        ..WebConfig::default()
    };
    let recs = browse_campaign(&["DE", "GB"], &page, &cfg);
    for cc in ["DE", "GB"] {
        let mut star = fcp_distribution(&recs, cc, IspKind::Starlink);
        let mut terr = fcp_distribution(&recs, cc, IspKind::Terrestrial);
        let gap = star.median().unwrap() - terr.median().unwrap();
        assert!((100.0..400.0).contains(&gap), "{cc}: FCP gap {gap}");
    }
}

#[test]
fn fig7_hop_budget_orders_latency_and_beats_far_homed_starlink() {
    let results = hop_bound_experiment(&[1, 5, 10], 240, 3, 7, &FaultSchedule::none());
    let mut medians = Vec::new();
    for mut r in results {
        medians.push(r.latencies.median().expect("samples"));
    }
    assert!(
        medians[0] < medians[1] && medians[1] < medians[2],
        "{medians:?}"
    );

    // SpaceCDN with a 5-hop budget lands in the terrestrial band and far
    // below the far-homed Starlink experience (~130-160 ms).
    let campaign = AimCampaign::run_for(&aim_config(), &["MZ", "KE", "ZM"]);
    let far_homed = campaign
        .country_stats_for("MZ", IspKind::Starlink)
        .unwrap()
        .median_min_rtt_ms;
    assert!(
        medians[1] < far_homed / 2.0,
        "5-hop {} vs far-homed Starlink {far_homed}",
        medians[1]
    );
}

#[test]
fn fig8_fifty_percent_duty_cycle_competitive() {
    let results = duty_cycle_experiment(&[0.3, 0.5, 0.8], 300, 3, 7, &FaultSchedule::none());
    let campaign = AimCampaign::run(&aim_config());
    let mut terr = campaign.rtt_distribution_balanced(IspKind::Terrestrial, 60);
    let terr_median = terr.median().unwrap();

    let med =
        |r: &mut spacecdn_suite::measure::spacecdn::DutyCycleResult| r.latencies.median().unwrap();
    let mut results = results;
    let m30 = med(&mut results[0]);
    let m50 = med(&mut results[1]);
    let m80 = med(&mut results[2]);
    assert!(m80 <= m50 && m50 <= m30, "ordering: {m80} {m50} {m30}");
    // ≥50 % active stays within ~1.1× of the terrestrial median; 30 % does
    // not (the paper's cut-off).
    assert!(
        m50 <= terr_median * 1.15,
        "50% {m50} vs terrestrial {terr_median}"
    );
    assert!(m30 > m80, "duty cycling must cost something");
}
