//! # spacecdn-suite
//!
//! Umbrella crate for the SpaceCDN reproduction — *"It's a bird? It's a
//! plane? It's CDN! Investigating Content Delivery Networks in the LEO
//! Satellite Networks Era"* (HotNets '24). Re-exports every workspace
//! crate under one namespace so examples, tests and downstream users
//! depend on a single crate.
//!
//! ```
//! use spacecdn_suite::core::network::LsnNetwork;
//! use spacecdn_suite::geo::SimTime;
//! use spacecdn_suite::lsn::FaultPlan;
//! use spacecdn_suite::terra::city::city_by_name;
//!
//! // The paper's headline path: a Maputo subscriber egresses in Frankfurt.
//! let net = LsnNetwork::starlink();
//! let snap = net.snapshot(SimTime::EPOCH, &FaultPlan::none());
//! let maputo = city_by_name("Maputo").unwrap();
//! let pop = snap.home_pop(maputo.cc, maputo.position());
//! assert_eq!(pop.city.name, "Frankfurt");
//!
//! let path = snap
//!     .starlink_rtt_to_pop(maputo.position(), &pop, None)
//!     .unwrap();
//! assert!(path.rtt.ms() > 100.0); // vs ~15 ms to the Maputo CDN terrestrially
//! ```
//!
//! The crates, bottom-up: [`geo`] (units/geodesy/RNG), [`orbit`]
//! (constellations), [`des`] (event scheduler + statistics), [`telemetry`]
//! (zero-dependency metrics registry), [`engine`] (deterministic parallel
//! experiment engine), [`lsn`] (ISL topology/routing/access + epoch-scoped
//! routing caches), [`terra`] (cities/fibre/CDN/PoPs), [`content`]
//! (catalogs/caches), [`core`] (SpaceCDN itself), [`measure`] (the
//! synthetic measurement campaigns), and [`serve`] (the long-lived
//! scenario daemon with record/replay). See `DESIGN.md` for the full
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use spacecdn_content as content;
pub use spacecdn_core as core;
pub use spacecdn_des as des;
pub use spacecdn_engine as engine;
pub use spacecdn_geo as geo;
pub use spacecdn_lsn as lsn;
pub use spacecdn_measure as measure;
pub use spacecdn_orbit as orbit;
pub use spacecdn_serve as serve;
pub use spacecdn_telemetry as telemetry;
pub use spacecdn_terra as terra;

/// The post-redesign surface in one import: `use spacecdn_suite::prelude::*;`.
///
/// Everything here is the *current* API — the unified
/// [`RetrievalRequest`](crate::core::retrieval::RetrievalRequest) /
/// [`Scenario`](crate::core::scenario::Scenario) retrieval path, the
/// steady-state traffic engine and its campaign, and the units, RNG and
/// network types they take. The deprecated free-function shims
/// (`retrieve`, `retrieve_resilient`, `retrieve_multishell`) are
/// intentionally absent: code written against the prelude cannot reach
/// them by accident.
pub mod prelude {
    pub use spacecdn_content::cache::{Cache, CacheStats, LruCache};
    pub use spacecdn_content::catalog::{Catalog, ContentId};
    pub use spacecdn_content::fleet::FleetCache;
    pub use spacecdn_content::policy::{CachePolicy, PolicyFleet, PolicyKind};
    pub use spacecdn_content::popularity::ZipfSampler;
    pub use spacecdn_content::ttl::TtlCache;
    pub use spacecdn_core::duty_cycle::DutyCycler;
    pub use spacecdn_core::network::{LsnNetwork, LsnSnapshot, PathBreakdown};
    pub use spacecdn_core::placement::{PlacementPlan, PlacementSpec, PlacementStrategy};
    pub use spacecdn_core::retrieval::{
        DegradeReason, FetchResult, ResilientOutcome, RetrievalOutcome, RetrievalRequest,
        RetrievalSource,
    };
    pub use spacecdn_core::scenario::{Scenario, ScenarioBuilder};
    pub use spacecdn_core::traffic::{
        run_traffic, run_traffic_multishell, ShellTraffic, TrafficConfig, TrafficReport,
        TrafficSource,
    };
    pub use spacecdn_des::Percentiles;
    pub use spacecdn_geo::{DetRng, Geodetic, Km, Latency, SimDuration, SimTime};
    pub use spacecdn_lsn::{AccessModel, FaultPlan, FaultSchedule, IslGraph};
    pub use spacecdn_measure::spacecdn::{duty_cycle_experiment, hop_bound_experiment};
    pub use spacecdn_measure::traffic::{
        covered_traffic_sources, starlink_shell_scenarios, traffic_campaign, TrafficCampaignConfig,
        TrafficPoint,
    };
    pub use spacecdn_orbit::{Constellation, SatIndex};
    pub use spacecdn_serve::{Daemon, ServeConfig, Session};
    pub use spacecdn_terra::fiber::FiberModel;
}
