//! # spacecdn-suite
//!
//! Umbrella crate for the SpaceCDN reproduction — *"It's a bird? It's a
//! plane? It's CDN! Investigating Content Delivery Networks in the LEO
//! Satellite Networks Era"* (HotNets '24). Re-exports every workspace
//! crate under one namespace so examples, tests and downstream users
//! depend on a single crate.
//!
//! ```
//! use spacecdn_suite::core::network::LsnNetwork;
//! use spacecdn_suite::geo::SimTime;
//! use spacecdn_suite::lsn::FaultPlan;
//! use spacecdn_suite::terra::city::city_by_name;
//!
//! // The paper's headline path: a Maputo subscriber egresses in Frankfurt.
//! let net = LsnNetwork::starlink();
//! let snap = net.snapshot(SimTime::EPOCH, &FaultPlan::none());
//! let maputo = city_by_name("Maputo").unwrap();
//! let pop = snap.home_pop(maputo.cc, maputo.position());
//! assert_eq!(pop.city.name, "Frankfurt");
//!
//! let path = snap
//!     .starlink_rtt_to_pop(maputo.position(), &pop, None)
//!     .unwrap();
//! assert!(path.rtt.ms() > 100.0); // vs ~15 ms to the Maputo CDN terrestrially
//! ```
//!
//! The crates, bottom-up: [`geo`] (units/geodesy/RNG), [`orbit`]
//! (constellations), [`des`] (event scheduler + statistics), [`telemetry`]
//! (zero-dependency metrics registry), [`engine`] (deterministic parallel
//! experiment engine), [`lsn`] (ISL topology/routing/access + epoch-scoped
//! routing caches), [`terra`] (cities/fibre/CDN/PoPs), [`content`]
//! (catalogs/caches), [`core`] (SpaceCDN itself), and [`measure`] (the
//! synthetic measurement campaigns). See `DESIGN.md` for the full
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use spacecdn_content as content;
pub use spacecdn_core as core;
pub use spacecdn_des as des;
pub use spacecdn_engine as engine;
pub use spacecdn_geo as geo;
pub use spacecdn_lsn as lsn;
pub use spacecdn_measure as measure;
pub use spacecdn_orbit as orbit;
pub use spacecdn_telemetry as telemetry;
pub use spacecdn_terra as terra;
