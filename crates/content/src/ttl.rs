//! TTL expiry as a wrapper over any cache policy.
//!
//! CDN objects carry freshness lifetimes (`Cache-Control: max-age`); a
//! satellite cache must not serve stale news pages however popular they
//! are. [`TtlCache`] wraps any [`Cache`] implementation and expires entries
//! lazily against the simulation clock: an expired entry is treated as
//! absent (and dropped) on access, so no background sweeper is needed —
//! important on power-budgeted hardware.

use crate::cache::{Cache, CacheStats};
use crate::catalog::ContentId;
use spacecdn_geo::{SimDuration, SimTime};
use std::collections::HashMap;

/// A freshness-enforcing wrapper over an inner cache policy.
///
/// The wrapper owns the clock: callers advance it with [`TtlCache::set_now`]
/// (typically from the DES scheduler) and all operations evaluate expiry
/// against that instant.
pub struct TtlCache<C: Cache> {
    inner: C,
    ttl: SimDuration,
    expires: HashMap<ContentId, SimTime>,
    now: SimTime,
    expired_purges: u64,
    /// Purges that actually dropped an inner entry (a stale expiry record —
    /// the inner policy already evicted the object — purges nothing).
    expired_drops: u64,
}

impl<C: Cache> TtlCache<C> {
    /// Wrap `inner`, expiring every entry `ttl` after insertion.
    ///
    /// # Panics
    /// Panics on a zero TTL — that cache could never serve anything.
    pub fn new(inner: C, ttl: SimDuration) -> Self {
        assert!(ttl > SimDuration::ZERO, "TTL must be positive");
        TtlCache {
            inner,
            ttl,
            expires: HashMap::new(),
            now: SimTime::EPOCH,
            expired_purges: 0,
            expired_drops: 0,
        }
    }

    /// Advance the clock (monotonically; moving backwards is clamped).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    /// The current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Is the entry present but expired?
    fn expired(&self, id: ContentId) -> bool {
        self.expires.get(&id).is_some_and(|&e| self.now >= e)
    }

    /// Drop an expired entry from both layers.
    fn purge(&mut self, id: ContentId) {
        if self.inner.remove(id) {
            self.expired_drops += 1;
        }
        self.expires.remove(&id);
        self.expired_purges += 1;
    }

    /// Freshness check that reclaims: like [`Cache::contains`], but an
    /// entry found expired is purged immediately (and counted in
    /// [`TtlCache::expired_purges`]) instead of lingering as dead bytes
    /// until the next `get`/`insert` touches it. The traffic engine calls
    /// this when validating candidate copy holders so cache occupancy
    /// reflects only servable objects.
    pub fn is_fresh(&mut self, id: ContentId) -> bool {
        if self.expired(id) {
            self.purge(id);
            return false;
        }
        self.inner.contains(id)
    }

    /// Entries dropped because their TTL lapsed (from any purge path:
    /// `get`, `insert`, or [`TtlCache::is_fresh`]).
    ///
    /// This counts every purge *attempt*, including stale expiry records
    /// whose entry the inner policy had already evicted; it can therefore
    /// exceed [`CacheStats::expirations`] in [`TtlCache::stats`], which
    /// counts only purges that dropped a live entry.
    pub fn expired_purges(&self) -> u64 {
        self.expired_purges
    }

    /// Access the wrapped cache (e.g. for policy-specific diagnostics).
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Cache> Cache for TtlCache<C> {
    fn get(&mut self, id: ContentId) -> bool {
        if self.expired(id) {
            self.purge(id);
            // The inner miss counter didn't see this lookup; forward it so
            // stats stay truthful.
            return self.inner.get(id);
        }
        self.inner.get(id)
    }

    fn contains(&self, id: ContentId) -> bool {
        !self.expired(id) && self.inner.contains(id)
    }

    fn insert(&mut self, id: ContentId, size_bytes: u64) -> bool {
        if self.expired(id) {
            self.purge(id);
        }
        if self.inner.insert(id, size_bytes) {
            self.expires.insert(id, self.now + self.ttl);
            true
        } else {
            false
        }
    }

    fn remove(&mut self, id: ContentId) -> bool {
        self.expires.remove(&id);
        self.inner.remove(id)
    }

    fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn stats(&self) -> CacheStats {
        // The inner policy saw each TTL purge as a plain `remove` and booked
        // it under `invalidations`; reclassify those drops as expirations so
        // the unified taxonomy (evicted / expired / invalidated) holds and
        // per-policy stats surface TTL churn instead of hiding it.
        let mut s = self.inner.stats();
        s.expirations += self.expired_drops;
        s.invalidations = s.invalidations.saturating_sub(self.expired_drops);
        s
    }

    fn clear(&mut self) {
        self.expires.clear();
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;

    fn cache() -> TtlCache<LruCache> {
        TtlCache::new(LruCache::new(10_000), SimDuration::from_secs(60))
    }

    #[test]
    fn fresh_entries_serve() {
        let mut c = cache();
        c.insert(ContentId(1), 100);
        assert!(c.get(ContentId(1)));
        c.set_now(SimTime::from_secs(59));
        assert!(c.get(ContentId(1)));
    }

    #[test]
    fn entries_expire_at_ttl() {
        let mut c = cache();
        c.insert(ContentId(1), 100);
        c.set_now(SimTime::from_secs(60));
        assert!(!c.contains(ContentId(1)));
        assert!(!c.get(ContentId(1)));
        assert_eq!(c.len(), 0, "expired entry purged");
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_after_expiry_restarts_ttl() {
        let mut c = cache();
        c.insert(ContentId(1), 100);
        c.set_now(SimTime::from_secs(120));
        assert!(!c.contains(ContentId(1)));
        assert!(c.insert(ContentId(1), 100));
        c.set_now(SimTime::from_secs(179));
        assert!(c.contains(ContentId(1)));
        c.set_now(SimTime::from_secs(180));
        assert!(!c.contains(ContentId(1)));
    }

    #[test]
    fn refresh_insert_extends_ttl() {
        let mut c = cache();
        c.insert(ContentId(1), 100);
        c.set_now(SimTime::from_secs(30));
        c.insert(ContentId(1), 100); // revalidated
        c.set_now(SimTime::from_secs(80)); // 50s after refresh, 80 after first
        assert!(c.contains(ContentId(1)));
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut c = cache();
        c.set_now(SimTime::from_secs(100));
        c.set_now(SimTime::from_secs(50));
        assert_eq!(c.now(), SimTime::from_secs(100));
    }

    #[test]
    fn stats_count_expired_lookups_as_misses() {
        let mut c = cache();
        c.insert(ContentId(1), 100);
        c.set_now(SimTime::from_secs(61));
        assert!(!c.get(ContentId(1)));
        let s = c.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn eviction_and_expiry_compose() {
        // Small inner cache: LRU eviction still works under the wrapper.
        let mut c = TtlCache::new(LruCache::new(250), SimDuration::from_secs(60));
        c.insert(ContentId(1), 100);
        c.insert(ContentId(2), 100);
        c.insert(ContentId(3), 100); // evicts 1 (LRU)
        assert!(!c.contains(ContentId(1)));
        assert!(c.contains(ContentId(2)) && c.contains(ContentId(3)));
        c.set_now(SimTime::from_secs(61));
        assert!(!c.contains(ContentId(2)) && !c.contains(ContentId(3)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ttl_panics() {
        let _ = TtlCache::new(LruCache::new(100), SimDuration::ZERO);
    }

    #[test]
    fn is_fresh_reclaims_and_counts_expired_entries() {
        let mut c = cache();
        c.insert(ContentId(1), 100);
        c.insert(ContentId(2), 100);
        assert!(c.is_fresh(ContentId(1)));
        assert_eq!(c.expired_purges(), 0);

        c.set_now(SimTime::from_secs(60));
        // Plain `contains` reports absence but leaves the dead bytes.
        assert!(!c.contains(ContentId(1)));
        assert_eq!(c.used_bytes(), 200);
        // `is_fresh` reclaims on the spot.
        assert!(!c.is_fresh(ContentId(1)));
        assert_eq!(c.used_bytes(), 100);
        assert_eq!(c.len(), 1);
        assert_eq!(c.expired_purges(), 1);
        // Absent id is simply not fresh, no purge counted.
        assert!(!c.is_fresh(ContentId(99)));
        assert_eq!(c.expired_purges(), 1);
    }

    #[test]
    fn stats_surface_expirations_not_invalidations() {
        // Regression: expired purges used to vanish from `stats()` — the
        // inner policy booked them as plain removes and the wrapper exposed
        // inner stats untouched, so METRICS consumers reading per-policy
        // `CacheStats` never saw TTL churn.
        let mut c = cache();
        c.insert(ContentId(1), 100);
        c.insert(ContentId(2), 100);
        c.insert(ContentId(3), 100);
        c.set_now(SimTime::from_secs(60));
        assert!(!c.get(ContentId(1))); // purge via get
        assert!(!c.is_fresh(ContentId(2))); // purge via is_fresh
        assert!(c.remove(ContentId(3))); // explicit invalidation (expired or not)
        let s = c.stats();
        assert_eq!(s.expirations, 2, "both TTL purges surfaced");
        assert_eq!(s.invalidations, 1, "explicit remove stays an invalidation");
        assert_eq!(s.inserts, 3);
        assert_eq!(s.hits + s.misses, s.gets);
        // Books balance: everything that entered has left.
        assert_eq!(s.departures(), s.inserts - c.len() as u64);
        assert_eq!(c.expired_purges(), 2);
    }

    #[test]
    fn stale_expiry_record_purge_is_not_an_expiration() {
        // Tight inner cache: the inner LRU evicts id 1, but the wrapper's
        // expiry record lingers. The later purge attempt counts in
        // `expired_purges` (legacy semantics, pinned) yet must NOT surface
        // as a stats expiration — nothing was dropped.
        let mut c = TtlCache::new(LruCache::new(200), SimDuration::from_secs(60));
        c.insert(ContentId(1), 100);
        c.insert(ContentId(2), 100);
        c.insert(ContentId(3), 100); // evicts 1; stale record for 1 remains
        c.set_now(SimTime::from_secs(60));
        assert!(!c.get(ContentId(1))); // stale purge: drops nothing
        let s = c.stats();
        assert_eq!(c.expired_purges(), 1);
        assert_eq!(s.expirations, 0);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.departures(), s.inserts - c.len() as u64);
    }

    #[test]
    fn expired_purges_counts_every_purge_path() {
        let mut c = cache();
        c.insert(ContentId(1), 100);
        c.insert(ContentId(2), 100);
        c.set_now(SimTime::from_secs(60));
        assert!(!c.get(ContentId(1))); // purge via get
        assert!(c.insert(ContentId(2), 100)); // purge via insert, then re-add
        assert_eq!(c.expired_purges(), 2);
    }
}
