//! The classical terrestrial CDN cache hierarchy.
//!
//! §2: "a content delivery network is a hierarchy of geo-distributed
//! servers designed to cache and serve content as close to the end-users as
//! possible … Most internal CDN operations assume a static tree-like
//! topology and user request influx from leaves of the hierarchy." This
//! module is that tree: edge caches over regional caches over an origin,
//! with per-tier latency costs. It is the ground-side system SpaceCDN
//! competes with *and* falls back to, and the substrate for cache-miss
//! WAN-cost accounting (§2: "cache miss rates and content fetches over WANs
//! are high for these \[LSN\] users").

use crate::cache::{Cache, CacheStats, LruCache};
use crate::catalog::{Catalog, ContentId};
use serde::Serialize;
use spacecdn_geo::Latency;

/// Which tier ultimately served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ServedBy {
    /// The edge cache closest to the client.
    Edge,
    /// The regional parent cache.
    Regional,
    /// The origin server (a WAN fetch).
    Origin,
}

/// Latency cost of reaching each tier from the client's egress, RTT.
#[derive(Debug, Clone, Copy)]
pub struct TierLatencies {
    /// Client ↔ edge cache.
    pub to_edge: Latency,
    /// Edge ↔ regional cache (added on edge miss).
    pub edge_to_regional: Latency,
    /// Regional ↔ origin (added on regional miss).
    pub regional_to_origin: Latency,
}

impl TierLatencies {
    /// A typical well-provisioned deployment: edge in the metro, regional
    /// in-continent, origin across a WAN.
    pub fn typical() -> Self {
        TierLatencies {
            to_edge: Latency::from_ms(8.0),
            edge_to_regional: Latency::from_ms(25.0),
            regional_to_origin: Latency::from_ms(90.0),
        }
    }

    /// Builder starting from [`typical`](Self::typical); every setter
    /// validates its latency, so an accidental negative (e.g. a subtraction
    /// gone wrong in a campaign sweep) fails at construction instead of
    /// silently producing time-travelling fetches.
    pub fn builder() -> TierLatenciesBuilder {
        TierLatenciesBuilder(Self::typical())
    }
}

/// Validating builder for [`TierLatencies`].
#[derive(Debug, Clone, Copy)]
pub struct TierLatenciesBuilder(TierLatencies);

impl TierLatenciesBuilder {
    fn checked(name: &str, l: Latency) -> Latency {
        assert!(
            l.ms().is_finite() && l.ms() >= 0.0,
            "{name} must be a finite non-negative latency, got {} ms",
            l.ms()
        );
        l
    }

    /// Client ↔ edge RTT.
    #[must_use]
    pub fn to_edge(mut self, l: Latency) -> Self {
        self.0.to_edge = Self::checked("to_edge", l);
        self
    }

    /// Edge ↔ regional RTT.
    #[must_use]
    pub fn edge_to_regional(mut self, l: Latency) -> Self {
        self.0.edge_to_regional = Self::checked("edge_to_regional", l);
        self
    }

    /// Regional ↔ origin RTT.
    #[must_use]
    pub fn regional_to_origin(mut self, l: Latency) -> Self {
        self.0.regional_to_origin = Self::checked("regional_to_origin", l);
        self
    }

    /// Finish the build.
    pub fn build(self) -> TierLatencies {
        self.0
    }
}

/// One resolved request through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyOutcome {
    /// The tier that had the object.
    pub served_by: ServedBy,
    /// Full fetch RTT including misses on the way up.
    pub rtt: Latency,
}

/// A two-level cache tree with an origin: many edges per regional.
///
/// Accounting lives entirely in the per-tier [`CacheStats`] the caches
/// already keep (the same taxonomy as the satellite policy fleets): every
/// request is one `get` against an edge, so edge gets = requests, edge
/// hits = edge-served, regional hits = regional-served, and regional
/// misses = origin fetches. There are no side counters to drift.
pub struct CacheHierarchy {
    edges: Vec<LruCache>,
    regional: LruCache,
    latencies: TierLatencies,
    /// Bytes fetched over the regional↔origin WAN (the cost §2 worries
    /// about).
    wan_bytes: u64,
}

impl CacheHierarchy {
    /// Build a hierarchy with `edge_count` edges of `edge_bytes` each and a
    /// regional cache of `regional_bytes`.
    ///
    /// # Panics
    /// Panics when `edge_count == 0`: a hierarchy needs leaves.
    pub fn new(
        edge_count: usize,
        edge_bytes: u64,
        regional_bytes: u64,
        latencies: TierLatencies,
    ) -> Self {
        assert!(edge_count > 0, "hierarchy needs at least one edge");
        CacheHierarchy {
            edges: (0..edge_count).map(|_| LruCache::new(edge_bytes)).collect(),
            regional: LruCache::new(regional_bytes),
            latencies,
            wan_bytes: 0,
        }
    }

    /// Number of edge caches.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Resolve a request arriving at edge `edge_idx` (mod edge count).
    /// Misses pull the object down the tree (both regional and edge install
    /// it — standard pull-through).
    pub fn request(
        &mut self,
        edge_idx: usize,
        id: ContentId,
        catalog: &Catalog,
    ) -> HierarchyOutcome {
        let size = catalog.get(id).map(|o| o.size_bytes).unwrap_or(0);
        let idx = edge_idx % self.edges.len();
        let l = self.latencies;

        if self.edges[idx].get(id) {
            return HierarchyOutcome {
                served_by: ServedBy::Edge,
                rtt: l.to_edge,
            };
        }
        if self.regional.get(id) {
            self.edges[idx].insert(id, size);
            return HierarchyOutcome {
                served_by: ServedBy::Regional,
                rtt: l.to_edge + l.edge_to_regional,
            };
        }
        self.wan_bytes += size;
        self.regional.insert(id, size);
        self.edges[idx].insert(id, size);
        HierarchyOutcome {
            served_by: ServedBy::Origin,
            rtt: l.to_edge + l.edge_to_regional + l.regional_to_origin,
        }
    }

    /// Aggregate [`CacheStats`] over all edge caches (edge `gets` is the
    /// total request count the hierarchy has seen).
    pub fn edge_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for e in &self.edges {
            let s = e.stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.gets += s.gets;
            agg.inserts += s.inserts;
            agg.evictions += s.evictions;
            agg.expirations += s.expirations;
            agg.invalidations += s.invalidations;
        }
        agg
    }

    /// [`CacheStats`] of the regional parent (its `misses` are exactly the
    /// origin fetches).
    pub fn regional_stats(&self) -> CacheStats {
        self.regional.stats()
    }

    /// Requests ultimately served by `tier`, derived from the tier stats:
    /// edge hits, regional hits, or regional misses (origin).
    pub fn served(&self, tier: ServedBy) -> u64 {
        match tier {
            ServedBy::Edge => self.edge_stats().hits,
            ServedBy::Regional => self.regional_stats().hits,
            ServedBy::Origin => self.regional_stats().misses,
        }
    }

    /// Fraction of requests served without touching the origin.
    pub fn cdn_hit_ratio(&self) -> f64 {
        let total = self.edge_stats().gets;
        if total == 0 {
            0.0
        } else {
            (self.served(ServedBy::Edge) + self.served(ServedBy::Regional)) as f64 / total as f64
        }
    }

    /// Total bytes pulled over the WAN from the origin.
    pub fn wan_bytes(&self) -> u64 {
        self.wan_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::ZipfSampler;
    use spacecdn_geo::DetRng;

    fn catalog() -> Catalog {
        let mut rng = DetRng::new(1, "hier-cat");
        Catalog::generate(500, &[], 0.0, &mut rng)
    }

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(4, 60_000_000, 300_000_000, TierLatencies::typical())
    }

    #[test]
    fn cold_miss_goes_to_origin_then_warms() {
        let cat = catalog();
        let mut h = hierarchy();
        let id = ContentId(5);
        let first = h.request(0, id, &cat);
        assert_eq!(first.served_by, ServedBy::Origin);
        assert_eq!(first.rtt, Latency::from_ms(123.0));

        let second = h.request(0, id, &cat);
        assert_eq!(second.served_by, ServedBy::Edge);
        assert_eq!(second.rtt, Latency::from_ms(8.0));
    }

    #[test]
    fn sibling_edge_hits_regional() {
        let cat = catalog();
        let mut h = hierarchy();
        let id = ContentId(9);
        h.request(0, id, &cat); // warms edge 0 and the regional
        let sibling = h.request(1, id, &cat);
        assert_eq!(sibling.served_by, ServedBy::Regional);
        assert_eq!(sibling.rtt, Latency::from_ms(33.0));
        // And now edge 1 is warm too.
        assert_eq!(h.request(1, id, &cat).served_by, ServedBy::Edge);
    }

    #[test]
    fn edge_index_wraps() {
        let cat = catalog();
        let mut h = hierarchy();
        let id = ContentId(3);
        h.request(2, id, &cat);
        assert_eq!(h.request(6, id, &cat).served_by, ServedBy::Edge); // 6 % 4 == 2
    }

    #[test]
    fn wan_bytes_counted_once_per_origin_fetch() {
        let cat = catalog();
        let mut h = hierarchy();
        let id = ContentId(11);
        let size = cat.get(id).unwrap().size_bytes;
        h.request(0, id, &cat);
        h.request(1, id, &cat);
        h.request(0, id, &cat);
        assert_eq!(h.wan_bytes(), size);
        assert_eq!(h.served(ServedBy::Edge), 1);
        assert_eq!(h.served(ServedBy::Regional), 1);
        assert_eq!(h.served(ServedBy::Origin), 1);
    }

    #[test]
    fn tier_stats_reconcile_like_the_fleet_taxonomy() {
        let cat = catalog();
        let mut h = hierarchy();
        let zipf = ZipfSampler::new(cat.len(), 1.0);
        let mut rng = DetRng::new(7, "hier-stats");
        let n = 2000u64;
        for i in 0..n as usize {
            let id = ContentId(zipf.sample(&mut rng) as u64);
            h.request(i % 4, id, &cat);
        }
        let edge = h.edge_stats();
        let regional = h.regional_stats();
        // Every request is exactly one edge get.
        assert_eq!(edge.gets, n);
        assert_eq!(edge.hits + edge.misses, edge.gets);
        assert_eq!(regional.hits + regional.misses, regional.gets);
        // Edge misses are the only traffic the regional sees.
        assert_eq!(regional.gets, edge.misses);
        // Served-by partition covers every request.
        assert_eq!(
            h.served(ServedBy::Edge) + h.served(ServedBy::Regional) + h.served(ServedBy::Origin),
            n
        );
        // Departures reconcile: inserts - len = departures, per tier.
        assert_eq!(
            edge.departures(),
            edge.inserts - h.edges.iter().map(|e| e.len() as u64).sum::<u64>()
        );
        assert_eq!(
            regional.departures(),
            regional.inserts - h.regional.len() as u64
        );
    }

    #[test]
    fn zipf_workload_mostly_served_by_cdn() {
        let cat = catalog();
        let mut h = hierarchy();
        let zipf = ZipfSampler::new(cat.len(), 1.0);
        let mut rng = DetRng::new(2, "hier-load");
        for i in 0..5000 {
            let id = ContentId(zipf.sample(&mut rng) as u64);
            h.request(i % 4, id, &cat);
        }
        let ratio = h.cdn_hit_ratio();
        assert!(ratio > 0.65, "hit ratio {ratio}");
        let (e, r, o) = (
            h.served(ServedBy::Edge),
            h.served(ServedBy::Regional),
            h.served(ServedBy::Origin),
        );
        assert!(e > r, "edges should absorb most load: {e} vs {r}");
        assert!(o < 2000, "origin fetches {o}");
    }

    #[test]
    fn tiny_edges_push_load_to_regional() {
        let cat = catalog();
        // Edges hold almost nothing; regional holds everything.
        let mut h = CacheHierarchy::new(4, 2_000_000, 1_000_000_000, TierLatencies::typical());
        let zipf = ZipfSampler::new(cat.len(), 0.8);
        let mut rng = DetRng::new(3, "hier-tiny");
        for i in 0..5000 {
            let id = ContentId(zipf.sample(&mut rng) as u64);
            h.request(i % 4, id, &cat);
        }
        let (e, r) = (h.served(ServedBy::Edge), h.served(ServedBy::Regional));
        assert!(
            r > e / 3,
            "regional should carry real load: edge {e} regional {r}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_edges_panics() {
        let _ = CacheHierarchy::new(0, 1, 1, TierLatencies::typical());
    }

    #[test]
    fn latency_builder_defaults_and_overrides() {
        let l = TierLatencies::builder().build();
        assert_eq!(l.to_edge, Latency::from_ms(8.0));
        let l = TierLatencies::builder()
            .to_edge(Latency::from_ms(2.0))
            .edge_to_regional(Latency::from_ms(10.0))
            .regional_to_origin(Latency::from_ms(0.0))
            .build();
        assert_eq!(l.to_edge, Latency::from_ms(2.0));
        assert_eq!(l.edge_to_regional, Latency::from_ms(10.0));
        assert_eq!(l.regional_to_origin, Latency::from_ms(0.0));
    }

    #[test]
    #[should_panic(expected = "edge_to_regional must be a finite non-negative latency")]
    fn latency_builder_rejects_negative() {
        let _ = TierLatencies::builder().edge_to_regional(Latency::from_ms(-1.0));
    }
}
