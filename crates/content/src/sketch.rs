//! Count-min frequency sketch for TinyLFU admission.
//!
//! A 4-row count-min sketch with 4-bit saturating counters estimates how
//! often a key has been requested without storing per-key state — the
//! admission filter for [`crate::tinylfu::TinyLfuFleet`] compares the sketch
//! estimate of a window candidate against the main-cache victim it would
//! displace. Counters periodically halve (the TinyLFU "reset") so the
//! sketch tracks *recent* popularity: once `sample_size` increments have
//! been observed, every counter is halved (floor division) and the sample
//! counter restarts from half, aging out stale popularity instead of
//! accumulating it forever.
//!
//! Hashing is a deterministic per-row multiply-xor mix over fixed odd
//! constants — no `RandomState`, because the traffic engine's determinism
//! contract requires identical admission decisions on every run and at any
//! thread count. The exact spec below (row count, counter width, hash mix,
//! reset rule) is mirrored naively by the reference oracle in
//! `tests/policy_oracle.rs`, so any drift breaks the differential suite
//! rather than silently changing admission behaviour.

/// Rows in the sketch. Four is the classic TinyLFU depth: error ~e/width
/// per row, min across four rows.
const ROWS: usize = 4;

/// Per-row seed mixed into the key before the finalizer, so the rows are
/// independent hash functions.
const SEEDS: [u64; ROWS] = [
    0x71d6_7fff_eda6_0001,
    0xfff7_eee0_0000_0003,
    0x8ebf_d028_c43a_0005,
    0x355c_ff4d_7e4f_0007,
];

/// Counter ceiling: 4-bit counters saturate at 15, which is plenty to rank
/// recent popularity between a candidate and a victim.
pub const COUNTER_MAX: u8 = 15;

/// A deterministic count-min sketch with saturating 4-bit counters and
/// periodic halving.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    /// Row-major counters, `ROWS * width` of them, each `0..=COUNTER_MAX`.
    counters: Vec<u8>,
    /// Power-of-two row width.
    width: usize,
    /// `width - 1`, the index mask.
    mask: u64,
    /// Increments observed since the last reset.
    additions: u64,
    /// Increment count that triggers a halving reset.
    sample_size: u64,
    /// Resets performed (diagnostics and proptests).
    resets: u64,
}

impl FrequencySketch {
    /// A sketch sized for roughly `entries` tracked keys: the row width is
    /// the next power of two at or above `entries` (min 64) and the reset
    /// sample is `10 * width` increments.
    pub fn with_entries(entries: usize) -> Self {
        let width = entries.next_power_of_two().max(64);
        FrequencySketch {
            counters: vec![0; ROWS * width],
            width,
            mask: (width - 1) as u64,
            additions: 0,
            sample_size: 10 * width as u64,
            resets: 0,
        }
    }

    /// Per-row slot for `key` (deterministic multiply-xor finalizer).
    #[inline]
    fn slot(&self, key: u64, row: usize) -> usize {
        let mut h = key.wrapping_add(SEEDS[row]);
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 32;
        row * self.width + (h & self.mask) as usize
    }

    /// Record one occurrence of `key`, halving all counters once
    /// `sample_size` increments have accumulated.
    pub fn increment(&mut self, key: u64) {
        for row in 0..ROWS {
            let s = self.slot(key, row);
            if self.counters[s] < COUNTER_MAX {
                self.counters[s] += 1;
            }
        }
        self.additions += 1;
        if self.additions >= self.sample_size {
            self.reset();
        }
    }

    /// Estimated occurrences of `key` since (roughly) the last reset: the
    /// minimum across rows, so collisions can only inflate it — a count-min
    /// sketch never undercounts within a sample window.
    pub fn estimate(&self, key: u64) -> u8 {
        let mut est = COUNTER_MAX;
        for row in 0..ROWS {
            est = est.min(self.counters[self.slot(key, row)]);
        }
        est
    }

    /// Halve every counter (floor) and restart the sample from half, aging
    /// out stale popularity.
    fn reset(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
        self.additions /= 2;
        self.resets += 1;
    }

    /// Increments observed since the last reset.
    pub fn additions(&self) -> u64 {
        self.additions
    }

    /// Increments that trigger a halving reset.
    pub fn sample_size(&self) -> u64 {
        self.sample_size
    }

    /// Halving resets performed so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Row width (power of two).
    pub fn width(&self) -> usize {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn width_is_power_of_two_with_floor() {
        assert_eq!(FrequencySketch::with_entries(0).width(), 64);
        assert_eq!(FrequencySketch::with_entries(65).width(), 128);
        assert_eq!(FrequencySketch::with_entries(4096).width(), 4096);
    }

    #[test]
    fn estimates_track_and_saturate() {
        let mut s = FrequencySketch::with_entries(64);
        assert_eq!(s.estimate(7), 0);
        for _ in 0..3 {
            s.increment(7);
        }
        assert!(s.estimate(7) >= 3, "never undercounts");
        for _ in 0..100 {
            s.increment(7);
        }
        assert_eq!(s.estimate(7), COUNTER_MAX, "saturates at 15");
    }

    #[test]
    fn sample_window_triggers_reset() {
        let mut s = FrequencySketch::with_entries(64);
        let sample = s.sample_size();
        for k in 0..sample {
            s.increment(k);
        }
        assert_eq!(s.resets(), 1, "reset fires exactly at the sample size");
        assert_eq!(s.additions(), sample / 2, "sample restarts from half");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Count-min property: within a sample window (no reset) the
        /// estimate never undercounts the true count, counter saturation
        /// aside.
        #[test]
        fn never_undercounts_true_frequency(
            keys in prop::collection::vec(0..32u64, 1..300),
        ) {
            let mut s = FrequencySketch::with_entries(64);
            let mut truth = std::collections::HashMap::new();
            for &k in &keys {
                s.increment(k);
                *truth.entry(k).or_insert(0u64) += 1;
                prop_assert_eq!(s.resets(), 0, "trace fits one sample window");
            }
            for (&k, &n) in &truth {
                let capped = n.min(u64::from(COUNTER_MAX)) as u8;
                prop_assert!(
                    s.estimate(k) >= capped,
                    "key {} estimated {} < true {}",
                    k, s.estimate(k), capped
                );
            }
        }

        /// Halving commutes with the min over rows (floor of a min is the
        /// min of floors), so a reset maps every estimate to exactly
        /// `estimate >> 1` — relative order is preserved up to the 1-bit
        /// floor loss.
        #[test]
        fn halving_preserves_relative_order(
            keys in prop::collection::vec(0..48u64, 1..600),
        ) {
            let mut s = FrequencySketch::with_entries(64);
            for &k in &keys {
                s.increment(k);
            }
            let before: Vec<u8> = (0..48).map(|k| s.estimate(k)).collect();
            // Halve directly (same-module access): driving the sample window
            // shut with filler keys would collide into tracked slots and
            // blur the exactness this test pins.
            s.reset();
            for k in 0..48u64 {
                prop_assert_eq!(
                    s.estimate(k),
                    before[k as usize] >> 1,
                    "estimate after reset is exactly the floored half"
                );
            }
            // Exact halving implies order preservation within error bounds:
            // any strict order of at least 2x survives the floor.
            for a in 0..48usize {
                for b in 0..48usize {
                    if before[a] >= before[b].saturating_mul(2) && before[a] > 1 {
                        prop_assert!(s.estimate(a as u64) >= s.estimate(b as u64));
                    }
                }
            }
        }
    }
}
