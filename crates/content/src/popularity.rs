//! Popularity models: Zipf demand skew and its geographic variant.

use crate::catalog::{Catalog, ContentId, RegionTag};
use spacecdn_geo::DetRng;

/// A Zipf(α) sampler over ranks `0..n` using the inverse-CDF over
/// precomputed cumulative weights (exact, O(log n) per sample).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `alpha` (web and video
    /// demand is typically α ≈ 0.7–1.1).
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is not finite/non-negative: a demand
    /// model with no items is a configuration bug.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(alpha);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// A sampler over a *subset* of global ranks, conditioned on the
    /// request landing in that subset: position `i` of the returned
    /// sampler carries the global Zipf(α) mass of rank `ranks[i]`
    /// (`1/(ranks[i]+1)^α`), renormalised over the subset. This is how a
    /// sharded traffic stream samples its partition of the catalog so
    /// that the *union* of all streams reproduces the global Zipf demand
    /// exactly.
    ///
    /// [`ZipfSampler::sample`] then returns a position `0..ranks.len()`
    /// into the given subset.
    ///
    /// # Panics
    /// Panics if `ranks` is empty or `alpha` is not finite/non-negative.
    pub fn over_ranks(ranks: &[usize], alpha: f64) -> Self {
        assert!(!ranks.is_empty(), "Zipf needs at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(ranks.len());
        let mut acc = 0.0;
        for &rank in ranks {
            acc += 1.0 / (rank as f64 + 1.0).powf(alpha);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (construction forbids empty samplers).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.unit() * total;
        self.cumulative.partition_point(|&c| c < target)
    }

    /// Probability mass of a given rank.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        (self.cumulative[rank] - prev) / total
    }
}

/// Region-aware demand: a client's requests follow a global Zipf over the
/// catalog, but objects whose `home_region` matches the client's region are
/// boosted by `affinity` (≫ 1), and foreign-region objects are damped by the
/// same factor. This is the statistical core of "content bubbles" (§5):
/// most of a region's demand lands on its own regional content.
#[derive(Debug, Clone)]
pub struct RegionalPopularity {
    /// Per-region request ranking: region index → object ids ordered by
    /// that region's popularity.
    rankings: Vec<Vec<ContentId>>,
    zipf: ZipfSampler,
}

impl RegionalPopularity {
    /// Build per-region rankings over `catalog` for `region_count` regions.
    /// `alpha` is the Zipf exponent; `affinity` the home-region boost.
    pub fn build(
        catalog: &Catalog,
        region_count: u8,
        alpha: f64,
        affinity: f64,
        rng: &mut DetRng,
    ) -> Self {
        assert!(affinity >= 1.0, "affinity must be ≥ 1");
        let n = catalog.len();
        let zipf = ZipfSampler::new(n, alpha);
        // A global base order, shuffled once so object id ≠ global rank.
        let mut base: Vec<ContentId> = catalog.objects().iter().map(|o| o.id).collect();
        rng.shuffle(&mut base);

        let mut rankings = Vec::with_capacity(region_count as usize);
        for region in 0..region_count {
            // Score each object: its base-rank mass × affinity adjustment.
            let mut scored: Vec<(f64, ContentId)> = base
                .iter()
                .enumerate()
                .map(|(rank, &id)| {
                    let obj = catalog.get(id).expect("catalog id");
                    let base_mass = 1.0 / (rank as f64 + 1.0).powf(alpha.max(1e-9));
                    let adj = match obj.home_region {
                        Some(RegionTag(r)) if r == region => affinity,
                        Some(_) => 1.0 / affinity,
                        None => 1.0,
                    };
                    (base_mass * adj, id)
                })
                .collect();
            scored.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("scores are finite")
                    .then_with(|| a.1.cmp(&b.1))
            });
            rankings.push(scored.into_iter().map(|(_, id)| id).collect());
        }
        RegionalPopularity { rankings, zipf }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.rankings.len()
    }

    /// Sample one request from a client in `region`.
    pub fn sample(&self, region: RegionTag, rng: &mut DetRng) -> ContentId {
        let ranking = &self.rankings[region.0 as usize % self.rankings.len()];
        let rank = self.zipf.sample(rng);
        ranking[rank.min(ranking.len() - 1)]
    }

    /// The `k` hottest objects for a region — what a content bubble
    /// prefetches onto satellites approaching that region.
    pub fn hot_set(&self, region: RegionTag, k: usize) -> &[ContentId] {
        let ranking = &self.rankings[region.0 as usize % self.rankings.len()];
        &ranking[..k.min(ranking.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_head_dominates() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = DetRng::new(1, "zipf");
        let n = 50_000;
        let mut counts = vec![0u32; 1000];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should take ~1/H(1000) ≈ 13% of requests.
        let head = counts[0] as f64 / n as f64;
        assert!((0.10..0.17).contains(&head), "head mass {head}");
        // Top-10 should take ~40%.
        let top10: u32 = counts[..10].iter().sum();
        let frac = top10 as f64 / n as f64;
        assert!((0.3..0.5).contains(&frac), "top10 {frac}");
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for rank in 0..10 {
            assert!((z.probability(rank) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = ZipfSampler::new(100, 0.9);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.probability(100), 0.0);
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = ZipfSampler::new(7, 1.2);
        let mut rng = DetRng::new(2, "range");
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_empty_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_over_empty_ranks_panics() {
        let _ = ZipfSampler::over_ranks(&[], 1.0);
    }

    #[test]
    fn over_all_ranks_is_bitwise_the_full_sampler() {
        let full = ZipfSampler::new(64, 0.9);
        let ranks: Vec<usize> = (0..64).collect();
        let subset = ZipfSampler::over_ranks(&ranks, 0.9);
        for r in 0..64 {
            assert_eq!(
                full.probability(r).to_bits(),
                subset.probability(r).to_bits(),
                "rank {r}"
            );
        }
        let mut a = DetRng::new(7, "over-ranks");
        let mut b = DetRng::new(7, "over-ranks");
        for _ in 0..500 {
            assert_eq!(full.sample(&mut a), subset.sample(&mut b));
        }
    }

    #[test]
    fn sharded_samplers_reproduce_global_mass() {
        // Split 1000 ranks into 4 residue-class shards; the conditional
        // mass of a rank inside its shard times the shard's share of the
        // global mass must give back the global probability.
        let n = 1000;
        let alpha = 1.0;
        let full = ZipfSampler::new(n, alpha);
        let mut reconstructed = vec![0.0f64; n];
        for shard in 0..4usize {
            let ranks: Vec<usize> = (0..n).filter(|r| r % 4 == shard).collect();
            let cond = ZipfSampler::over_ranks(&ranks, alpha);
            let shard_mass: f64 = ranks.iter().map(|&r| full.probability(r)).sum();
            for (pos, &r) in ranks.iter().enumerate() {
                reconstructed[r] = cond.probability(pos) * shard_mass;
            }
        }
        for (r, &got) in reconstructed.iter().enumerate() {
            assert!(
                (got - full.probability(r)).abs() < 1e-12,
                "rank {r}: {got} vs {}",
                full.probability(r)
            );
        }
    }

    fn setup_regional() -> (Catalog, RegionalPopularity) {
        let mut rng = DetRng::new(3, "regional");
        let regions = [RegionTag(0), RegionTag(1), RegionTag(2)];
        let catalog = Catalog::generate(2000, &regions, 0.6, &mut rng);
        let pop = RegionalPopularity::build(&catalog, 3, 0.9, 8.0, &mut rng);
        (catalog, pop)
    }

    #[test]
    fn home_region_content_dominates_demand() {
        let (catalog, pop) = setup_regional();
        let mut rng = DetRng::new(4, "req");
        let mut home = 0;
        let mut foreign = 0;
        for _ in 0..20_000 {
            let id = pop.sample(RegionTag(0), &mut rng);
            match catalog.get(id).unwrap().home_region {
                Some(RegionTag(0)) => home += 1,
                Some(_) => foreign += 1,
                None => {}
            }
        }
        assert!(
            home > 3 * foreign,
            "home {home} should dwarf foreign {foreign}"
        );
    }

    #[test]
    fn hot_sets_differ_across_regions() {
        let (_, pop) = setup_regional();
        let a: std::collections::HashSet<_> = pop.hot_set(RegionTag(0), 50).iter().collect();
        let b: std::collections::HashSet<_> = pop.hot_set(RegionTag(1), 50).iter().collect();
        let overlap = a.intersection(&b).count();
        assert!(overlap < 30, "regional hot sets too similar ({overlap}/50)");
    }

    #[test]
    fn hot_set_prefix_property() {
        let (_, pop) = setup_regional();
        let ten = pop.hot_set(RegionTag(1), 10).to_vec();
        let fifty = pop.hot_set(RegionTag(1), 50);
        assert_eq!(&fifty[..10], &ten[..]);
        // Oversized request clamps.
        assert_eq!(pop.hot_set(RegionTag(1), 10_000).len(), 2000);
    }

    #[test]
    fn deterministic_rankings() {
        let mut r1 = DetRng::new(5, "det");
        let mut r2 = DetRng::new(5, "det");
        let regions = [RegionTag(0)];
        let c1 = Catalog::generate(200, &regions, 0.5, &mut r1);
        let c2 = Catalog::generate(200, &regions, 0.5, &mut r2);
        let p1 = RegionalPopularity::build(&c1, 1, 1.0, 5.0, &mut r1);
        let p2 = RegionalPopularity::build(&c2, 1, 1.0, 5.0, &mut r2);
        assert_eq!(p1.hot_set(RegionTag(0), 20), p2.hot_set(RegionTag(0), 20));
    }
}
