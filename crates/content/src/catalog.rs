//! The content catalog: what exists to be cached.

use serde::{Deserialize, Serialize};
use spacecdn_geo::DetRng;

/// An opaque region tag attached to regional content.
///
/// The content crate stays independent of `spacecdn-terra`, so the tag is a
/// small integer; `spacecdn-core` maps tags to real world regions. Think of
/// it as "market id" in a CDN's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionTag(pub u8);

/// A stable identifier for one cacheable object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContentId(pub u64);

/// What kind of object this is (drives size distribution and cachability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentKind {
    /// An HTML page (small, latency-critical).
    WebPage,
    /// A static asset: image, script, stylesheet.
    Asset,
    /// One DASH video segment (a few seconds of video).
    VideoSegment,
}

/// One object in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentObject {
    /// Identifier.
    pub id: ContentId,
    /// Object size in bytes.
    pub size_bytes: u64,
    /// Object kind.
    pub kind: ContentKind,
    /// Region where this object is culturally "at home" (None = global).
    pub home_region: Option<RegionTag>,
}

/// A generated catalog of content objects.
#[derive(Debug, Clone)]
pub struct Catalog {
    objects: Vec<ContentObject>,
}

impl Catalog {
    /// Generate a catalog of `n` objects with realistic size mixes:
    /// ~20 % pages (10–200 KB), ~50 % assets (5 KB–2 MB, log-normal),
    /// ~30 % video segments (1–8 MB). A fraction `regional_fraction` of
    /// objects is tagged with a home region drawn from `regions`.
    pub fn generate(
        n: usize,
        regions: &[RegionTag],
        regional_fraction: f64,
        rng: &mut DetRng,
    ) -> Self {
        let mut objects = Vec::with_capacity(n);
        for i in 0..n {
            let roll = rng.unit();
            let (kind, size_bytes) = if roll < 0.2 {
                (
                    ContentKind::WebPage,
                    rng.log_normal_median(60_000.0, 0.8)
                        .clamp(10_000.0, 200_000.0) as u64,
                )
            } else if roll < 0.7 {
                (
                    ContentKind::Asset,
                    rng.log_normal_median(80_000.0, 1.2)
                        .clamp(5_000.0, 2_000_000.0) as u64,
                )
            } else {
                (
                    ContentKind::VideoSegment,
                    rng.uniform(1_000_000.0, 8_000_000.0) as u64,
                )
            };
            let home_region = if !regions.is_empty() && rng.chance(regional_fraction) {
                rng.choose(regions).copied()
            } else {
                None
            };
            objects.push(ContentObject {
                id: ContentId(i as u64),
                size_bytes,
                kind,
                home_region,
            });
        }
        Catalog { objects }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True for an empty catalog.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Object by id (ids are dense: `0..len`).
    pub fn get(&self, id: ContentId) -> Option<&ContentObject> {
        self.objects.get(id.0 as usize)
    }

    /// All objects.
    pub fn objects(&self) -> &[ContentObject] {
        &self.objects
    }

    /// Total bytes across the catalog.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(1, "catalog")
    }

    #[test]
    fn generates_requested_count() {
        let c = Catalog::generate(1000, &[RegionTag(0), RegionTag(1)], 0.5, &mut rng());
        assert_eq!(c.len(), 1000);
        assert!(!c.is_empty());
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let c = Catalog::generate(100, &[], 0.0, &mut rng());
        for i in 0..100u64 {
            assert_eq!(c.get(ContentId(i)).unwrap().id, ContentId(i));
        }
        assert!(c.get(ContentId(100)).is_none());
    }

    #[test]
    fn sizes_respect_kind_bounds() {
        let c = Catalog::generate(5000, &[], 0.0, &mut rng());
        for o in c.objects() {
            match o.kind {
                ContentKind::WebPage => {
                    assert!((10_000..=200_000).contains(&o.size_bytes))
                }
                ContentKind::Asset => assert!((5_000..=2_000_000).contains(&o.size_bytes)),
                ContentKind::VideoSegment => {
                    assert!((1_000_000..=8_000_000).contains(&o.size_bytes))
                }
            }
        }
    }

    #[test]
    fn kind_mix_roughly_as_configured() {
        let c = Catalog::generate(10_000, &[], 0.0, &mut rng());
        let pages = c
            .objects()
            .iter()
            .filter(|o| o.kind == ContentKind::WebPage)
            .count();
        let video = c
            .objects()
            .iter()
            .filter(|o| o.kind == ContentKind::VideoSegment)
            .count();
        assert!((1500..2500).contains(&pages), "pages {pages}");
        assert!((2500..3500).contains(&video), "video {video}");
    }

    #[test]
    fn regional_fraction_respected() {
        let regions = [RegionTag(0), RegionTag(1), RegionTag(2)];
        let c = Catalog::generate(10_000, &regions, 0.4, &mut rng());
        let tagged = c
            .objects()
            .iter()
            .filter(|o| o.home_region.is_some())
            .count();
        assert!((3500..4500).contains(&tagged), "tagged {tagged}");

        let none = Catalog::generate(1000, &regions, 0.0, &mut rng());
        assert!(none.objects().iter().all(|o| o.home_region.is_none()));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Catalog::generate(100, &[RegionTag(0)], 0.5, &mut DetRng::new(7, "c"));
        let b = Catalog::generate(100, &[RegionTag(0)], 0.5, &mut DetRng::new(7, "c"));
        assert_eq!(a.objects(), b.objects());
    }

    #[test]
    fn total_bytes_sums() {
        let c = Catalog::generate(10, &[], 0.0, &mut rng());
        let manual: u64 = c.objects().iter().map(|o| o.size_bytes).sum();
        assert_eq!(c.total_bytes(), manual);
    }
}
