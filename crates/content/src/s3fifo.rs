//! S3-FIFO eviction as a flat-SoA cache fleet.
//!
//! S3-FIFO (SOSP'23) runs three queues per satellite: a **small** FIFO
//! (~10% of capacity) that absorbs one-hit wonders, a **main** FIFO for
//! objects that proved themselves, and a byte-bounded **ghost** queue of
//! recently evicted ids (no bytes stored). New objects enter the small
//! queue — unless their id is in the ghost, which means they were evicted
//! recently and deserve the main queue directly. Eviction prefers the small
//! queue while it exceeds its target: a small-tail entry with any hits
//! (`freq > 0`) is promoted to the main head, otherwise it is evicted and
//! its id pushed to the ghost. Main-tail entries with `freq > 0` are
//! reinserted at the main head with `freq - 1` (lazy promotion); `freq == 0`
//! entries leave for good (not to the ghost — they had their chance).
//! Frequency is a 2-bit saturating counter bumped on hits.
//!
//! Fleet shape, TTL handling and the unified [`CacheStats`] taxonomy match
//! [`crate::fleet::FleetCache`]. Expired and invalidated entries do *not*
//! enter the ghost: the ghost models eviction regret, not freshness or
//! duty cycling. Victim identity is reported exactly through
//! `insert_collect`/`clear_sat` so the traffic engine's holder lists stay
//! eagerly correct.

use crate::arena::{meta_set, EntryArena, List, NIL};
use crate::cache::CacheStats;
use crate::catalog::ContentId;
use crate::fleet::SlotHasher;
use crate::policy::CachePolicy;
use spacecdn_geo::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;

/// Saturation ceiling for the 2-bit per-entry hit counter.
const FREQ_MAX: u8 = 3;

type GhostIndex = HashMap<(u32, ContentId), u64, BuildHasherDefault<SlotHasher>>;

/// A whole constellation's S3-FIFO caches in flat parallel arrays.
pub struct S3FifoFleet {
    sat_capacity: u64,
    /// Byte target for the small queue (`capacity / 10`, min 1).
    small_target: u64,
    ttl: SimDuration,
    now: SimTime,
    // Per-satellite state, indexed by satellite slot.
    small: Vec<List>,
    main: Vec<List>,
    small_used: Vec<u64>,
    used: Vec<u64>,
    count: Vec<u32>,
    /// Per-satellite ghost FIFO of evicted ids (sizes live in `ghost_index`).
    ghost: Vec<VecDeque<ContentId>>,
    ghost_used: Vec<u64>,
    ghost_index: GhostIndex,
    // Entry arena + per-entry policy metadata.
    arena: EntryArena,
    in_main: Vec<bool>,
    freq: Vec<u8>,
    stats: CacheStats,
}

impl S3FifoFleet {
    /// A fleet of `sats` empty S3-FIFO caches.
    ///
    /// # Panics
    /// Panics on a zero TTL — that cache could never serve anything.
    pub fn new(sats: usize, capacity_bytes: u64, ttl: SimDuration) -> Self {
        assert!(ttl > SimDuration::ZERO, "TTL must be positive");
        S3FifoFleet {
            sat_capacity: capacity_bytes,
            small_target: (capacity_bytes / 10).max(1),
            ttl,
            now: SimTime::EPOCH,
            small: vec![List::EMPTY; sats],
            main: vec![List::EMPTY; sats],
            small_used: vec![0; sats],
            used: vec![0; sats],
            count: vec![0; sats],
            ghost: vec![VecDeque::new(); sats],
            ghost_used: vec![0; sats],
            ghost_index: GhostIndex::default(),
            arena: EntryArena::new(),
            in_main: Vec::new(),
            freq: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn lapsed(&self, e: u32) -> bool {
        self.now >= self.arena.expiry[e as usize]
    }

    /// Unlink `e` from whichever queue holds it, adjusting byte accounting.
    fn unlink_entry(&mut self, e: u32) {
        let i = e as usize;
        let sat = self.arena.sat[i] as usize;
        if self.in_main[i] {
            let mut list = self.main[sat];
            self.arena.unlink(&mut list, e);
            self.main[sat] = list;
        } else {
            let mut list = self.small[sat];
            self.arena.unlink(&mut list, e);
            self.small[sat] = list;
            self.small_used[sat] -= self.arena.size[i];
        }
        self.used[sat] -= self.arena.size[i];
        self.count[sat] -= 1;
    }

    /// Detach entry `e` entirely (no ghost record).
    fn release(&mut self, e: u32) {
        self.unlink_entry(e);
        self.arena.release(e);
    }

    /// Record an evicted id in the satellite's ghost queue, trimming the
    /// ghost to the cache's byte capacity.
    fn push_ghost(&mut self, sat: u32, content: ContentId, size: u64) {
        let prev = self.ghost_index.insert((sat, content), size);
        debug_assert!(prev.is_none(), "live entry already ghosted");
        self.ghost[sat as usize].push_back(content);
        self.ghost_used[sat as usize] += size;
        while self.ghost_used[sat as usize] > self.sat_capacity {
            let old = self.ghost[sat as usize]
                .pop_front()
                .expect("ghost bytes without ghost entries");
            let osize = self.ghost_index.remove(&(sat, old)).unwrap_or(0);
            self.ghost_used[sat as usize] -= osize;
        }
    }

    /// Drop `content` from the ghost if present; returns whether it was
    /// there (the S3-FIFO readmission signal).
    fn take_ghost(&mut self, sat: u32, content: ContentId) -> bool {
        match self.ghost_index.remove(&(sat, content)) {
            Some(size) => {
                let dq = &mut self.ghost[sat as usize];
                let pos = dq
                    .iter()
                    .position(|&c| c == content)
                    .expect("ghost index out of sync with ghost queue");
                dq.remove(pos);
                self.ghost_used[sat as usize] -= size;
                true
            }
            None => false,
        }
    }

    /// Evict exactly one entry from `sat` (promoting / reinserting along
    /// the way per the S3-FIFO rules), appending the victim to `evicted`.
    fn evict_one(&mut self, sat: u32, evicted: &mut Vec<ContentId>) {
        let s = sat as usize;
        loop {
            let from_small = !self.small[s].is_empty()
                && (self.small_used[s] > self.small_target || self.main[s].is_empty());
            if from_small {
                let v = self.small[s].tail;
                let i = v as usize;
                if self.freq[i] > 0 {
                    // Proven in small: promote to the main head, counter
                    // reset — it must re-earn protection there.
                    let size = self.arena.size[i];
                    let mut list = self.small[s];
                    self.arena.unlink(&mut list, v);
                    self.small[s] = list;
                    self.small_used[s] -= size;
                    self.freq[i] = 0;
                    self.in_main[i] = true;
                    let mut list = self.main[s];
                    self.arena.push_front(&mut list, v);
                    self.main[s] = list;
                    // Promotion freed small-queue pressure but no bytes;
                    // keep looking for a victim.
                    continue;
                }
                let content = self.arena.content[i];
                let size = self.arena.size[i];
                self.release(v);
                self.push_ghost(sat, content, size);
                evicted.push(content);
                self.stats.evictions += 1;
                return;
            }
            let v = self.main[s].tail;
            debug_assert_ne!(v, NIL, "eviction with both queues empty");
            let i = v as usize;
            if self.freq[i] > 0 {
                // Lazy second chance: decay and recycle to the main head.
                self.freq[i] -= 1;
                let mut list = self.main[s];
                self.arena.unlink(&mut list, v);
                self.arena.push_front(&mut list, v);
                self.main[s] = list;
                continue;
            }
            let content = self.arena.content[i];
            self.release(v);
            evicted.push(content);
            self.stats.evictions += 1;
            return;
        }
    }

    #[cfg(test)]
    fn ghost_len(&self, sat: u32) -> usize {
        self.ghost[sat as usize].len()
    }
}

impl CachePolicy for S3FifoFleet {
    fn name(&self) -> &'static str {
        "s3fifo"
    }

    fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn sat_count(&self) -> usize {
        self.small.len()
    }

    fn capacity_bytes_per_sat(&self) -> u64 {
        self.sat_capacity
    }

    fn ttl(&self) -> SimDuration {
        self.ttl
    }

    fn len_of(&self, sat: u32) -> usize {
        self.count[sat as usize] as usize
    }

    fn used_bytes_of(&self, sat: u32) -> u64 {
        self.used[sat as usize]
    }

    fn len(&self) -> usize {
        self.count.iter().map(|&n| n as usize).sum()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn get(&mut self, sat: u32, content: ContentId) -> bool {
        self.stats.gets += 1;
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                false
            }
            Some(e) => {
                let i = e as usize;
                self.freq[i] = (self.freq[i] + 1).min(FREQ_MAX);
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    fn contains(&self, sat: u32, content: ContentId) -> bool {
        self.arena
            .lookup(sat, content)
            .is_some_and(|e| !self.lapsed(e))
    }

    fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                true
            }
            _ => false,
        }
    }

    fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool {
        if let Some(e) = self.arena.lookup(sat, content) {
            if self.lapsed(e) {
                self.release(e);
                self.stats.expirations += 1;
            }
        }
        if size > self.sat_capacity {
            return false;
        }
        if let Some(e) = self.arena.lookup(sat, content) {
            // Refresh: bump frequency like a hit, extend expiry, no move.
            let i = e as usize;
            self.freq[i] = (self.freq[i] + 1).min(FREQ_MAX);
            self.arena.expiry[i] = self.now + self.ttl;
            return true;
        }
        // A ghost hit routes the object straight into the main queue: it
        // was evicted recently, so the small-queue probation already failed
        // it once wrongly.
        let to_main = self.take_ghost(sat, content);
        while self.used[sat as usize] + size > self.sat_capacity {
            self.evict_one(sat, evicted);
        }
        let e = self.arena.alloc(sat, content, size, self.now + self.ttl);
        meta_set(&mut self.freq, e, 0);
        meta_set(&mut self.in_main, e, to_main);
        let s = sat as usize;
        if to_main {
            let mut list = self.main[s];
            self.arena.push_front(&mut list, e);
            self.main[s] = list;
        } else {
            let mut list = self.small[s];
            self.arena.push_front(&mut list, e);
            self.small[s] = list;
            self.small_used[s] += size;
        }
        self.used[s] += size;
        self.count[s] += 1;
        self.stats.inserts += 1;
        true
    }

    fn remove(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) => {
                self.release(e);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64 {
        let s = sat as usize;
        let mut n = 0;
        while self.small[s].head != NIL {
            let e = self.small[s].head;
            dropped.push(self.arena.content[e as usize]);
            self.release(e);
            n += 1;
        }
        while self.main[s].head != NIL {
            let e = self.main[s].head;
            dropped.push(self.arena.content[e as usize]);
            self.release(e);
            n += 1;
        }
        // Duty cycling wipes the ghost too: a powered-down satellite's
        // eviction history is stale by the time it wakes.
        while let Some(old) = self.ghost[s].pop_front() {
            self.ghost_index.remove(&(sat, old));
        }
        self.ghost_used[s] = 0;
        self.stats.invalidations += n;
        n
    }

    fn occupied_into(&self, out: &mut Vec<(u32, u32, u64)>) {
        for (s, &n) in self.count.iter().enumerate() {
            if n > 0 {
                out.push((s as u32, n, self.used[s]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContentId {
        ContentId(n)
    }

    fn fleet(cap: u64) -> S3FifoFleet {
        S3FifoFleet::new(2, cap, SimDuration::from_secs(60))
    }

    #[test]
    fn one_hit_wonders_churn_through_small() {
        // cap 1000 → small target 100 → one 100-byte object keeps small at
        // its target; a scan of never-read objects evicts only from small.
        let mut f = fleet(1_000);
        let mut ev = Vec::new();
        for n in 0..12u64 {
            f.insert_collect(0, id(n), 100, &mut ev);
        }
        assert_eq!(f.len_of(0), 10, "cache fills to capacity");
        assert_eq!(ev, vec![id(0), id(1)], "oldest unread objects leave first");
    }

    #[test]
    fn ghost_hit_readmits_to_main() {
        let mut f = fleet(1_000);
        let mut ev = Vec::new();
        for n in 0..12u64 {
            f.insert_collect(0, id(n), 100, &mut ev);
        }
        assert_eq!(ev, vec![id(0), id(1)]);
        assert_eq!(f.ghost_len(0), 2);
        // Re-requesting an evicted object lands it in main directly. The
        // readmission consumes 0's ghost record; making room evicts 2 from
        // small, which ghosts it — net ghost: {1, 2}.
        f.insert_collect(0, id(0), 100, &mut ev);
        assert!(f.in_main[f.arena.lookup(0, id(0)).unwrap() as usize]);
        assert!(!f.ghost_index.contains_key(&(0, id(0))));
        assert_eq!(f.ghost_len(0), 2);
    }

    #[test]
    fn hit_in_small_promotes_at_eviction_time() {
        let mut f = fleet(1_000);
        for n in 0..10u64 {
            f.insert_collect(0, id(n), 100, &mut Vec::new());
        }
        assert!(f.get(0, id(0)), "0 still cached");
        // Scan: 0 must survive (promoted to main when the hand reaches it).
        let mut ev = Vec::new();
        for n in 100..106u64 {
            f.insert_collect(0, id(n), 100, &mut ev);
        }
        assert!(f.contains(0, id(0)), "hit object promoted, not evicted");
        assert!(!ev.contains(&id(0)));
        assert!(f.in_main[f.arena.lookup(0, id(0)).unwrap() as usize]);
    }

    #[test]
    fn main_decays_before_evicting() {
        let mut f = fleet(1_000);
        // Fill main via ghost readmission.
        for n in 0..12u64 {
            f.insert_collect(0, id(n), 100, &mut Vec::new());
        }
        f.insert_collect(0, id(0), 100, &mut Vec::new()); // main via ghost
        f.get(0, id(0)); // freq 1
                         // Drain everything else; 0's decay chance keeps it longer than a
                         // freq-0 main entry would last.
        let mut ev = Vec::new();
        for n in 200..212u64 {
            f.insert_collect(0, id(n), 100, &mut ev);
        }
        let s = f.stats();
        assert_eq!(s.departures(), s.inserts - f.len() as u64);
    }

    #[test]
    fn ghost_is_byte_bounded() {
        let mut f = fleet(1_000);
        // Churn 50 distinct 100-byte objects: ghost holds at most
        // cap/size = 10 ids.
        for n in 0..50u64 {
            f.insert_collect(0, id(n), 100, &mut Vec::new());
        }
        assert!(f.ghost_len(0) <= 10, "ghost holds {}", f.ghost_len(0));
        assert!(f.ghost_used[0] <= 1_000);
    }

    #[test]
    fn clear_sat_wipes_ghost_too() {
        let mut f = fleet(1_000);
        for n in 0..15u64 {
            f.insert_collect(0, id(n), 100, &mut Vec::new());
        }
        assert!(f.ghost_len(0) > 0);
        let mut dropped = Vec::new();
        assert_eq!(f.clear_sat(0, &mut dropped), 10);
        assert_eq!(f.ghost_len(0), 0);
        // Post-clear, a previously ghosted id is a plain newcomer (small).
        f.insert_collect(0, id(0), 100, &mut Vec::new());
        assert!(!f.in_main[f.arena.lookup(0, id(0)).unwrap() as usize]);
    }

    #[test]
    fn expired_entries_skip_the_ghost() {
        let mut f = fleet(1_000);
        f.insert_collect(0, id(1), 100, &mut Vec::new());
        f.set_now(SimTime::from_secs(60));
        assert!(!f.get(0, id(1)));
        assert_eq!(f.ghost_len(0), 0, "expiry is not eviction regret");
        assert_eq!(f.stats().expirations, 1);
    }
}
