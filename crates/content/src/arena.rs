//! Shared flat-SoA entry arena for the fleet cache policies.
//!
//! [`crate::fleet::FleetCache`] proved the layout on the traffic hot path:
//! entries live in parallel vectors (satellite, content id, size, expiry,
//! intrusive links) with a free list and a single fleet-wide
//! `(satellite, content) → entry` hash index. The policies in
//! [`crate::policy`] share that substrate through [`EntryArena`] instead of
//! re-growing six vectors each — the only per-policy additions are small
//! metadata arrays (a visited bit, a queue tag, a segment tag) kept in
//! lockstep with the arena, and however many intrusive [`List`] heads the
//! policy needs per satellite.
//!
//! Lists are doubly linked with `head` = front (most recent / most recently
//! admitted) and `tail` = back (the eviction end); `prev` points toward the
//! head. All link storage lives in the arena so a policy can run several
//! lists (window/probation/protected, small/main) over one entry pool — an
//! entry is on at most one list at a time.

use crate::catalog::ContentId;
use crate::fleet::SlotHasher;
use spacecdn_geo::SimTime;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// Null link/slot marker for the intrusive lists and the free list.
pub(crate) const NIL: u32 = u32::MAX;

type SlotIndex = HashMap<(u32, ContentId), u32, BuildHasherDefault<SlotHasher>>;

/// One intrusive doubly-linked list: `head` = front, `tail` = back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct List {
    pub head: u32,
    pub tail: u32,
}

impl List {
    /// An empty list.
    pub const EMPTY: List = List {
        head: NIL,
        tail: NIL,
    };

    /// True when the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.head == NIL
    }
}

impl Default for List {
    fn default() -> Self {
        List::EMPTY
    }
}

/// Entry pool: parallel vectors + free list + fleet-wide slot index.
#[derive(Default)]
pub(crate) struct EntryArena {
    pub sat: Vec<u32>,
    pub content: Vec<ContentId>,
    pub size: Vec<u64>,
    pub expiry: Vec<SimTime>,
    pub prev: Vec<u32>,
    pub next: Vec<u32>,
    free: Vec<u32>,
    index: SlotIndex,
}

impl EntryArena {
    pub fn new() -> Self {
        EntryArena::default()
    }

    /// The arena slot holding `(sat, content)`, if any.
    #[inline]
    pub fn lookup(&self, sat: u32, content: ContentId) -> Option<u32> {
        self.index.get(&(sat, content)).copied()
    }

    /// Allocate an unlinked entry and index it. The caller links it into a
    /// list and maintains byte/count accounting.
    pub fn alloc(&mut self, sat: u32, content: ContentId, size: u64, expiry: SimTime) -> u32 {
        let e = if let Some(e) = self.free.pop() {
            let i = e as usize;
            self.sat[i] = sat;
            self.content[i] = content;
            self.size[i] = size;
            self.expiry[i] = expiry;
            self.prev[i] = NIL;
            self.next[i] = NIL;
            e
        } else {
            let e = self.sat.len() as u32;
            self.sat.push(sat);
            self.content.push(content);
            self.size.push(size);
            self.expiry.push(expiry);
            self.prev.push(NIL);
            self.next.push(NIL);
            e
        };
        self.index.insert((sat, content), e);
        e
    }

    /// Return an already-unlinked entry to the free list and drop its index
    /// record. The caller must have unlinked it from its list first.
    pub fn release(&mut self, e: u32) {
        let i = e as usize;
        self.index.remove(&(self.sat[i], self.content[i]));
        self.free.push(e);
    }

    /// Arena slots ever allocated (capacity watermark, for growth tests).
    #[cfg(test)]
    pub fn slots(&self) -> usize {
        self.sat.len()
    }

    // -- intrusive-list plumbing -------------------------------------------

    pub fn unlink(&mut self, list: &mut List, e: u32) {
        let (prev, next) = (self.prev[e as usize], self.next[e as usize]);
        if prev == NIL {
            list.head = next;
        } else {
            self.next[prev as usize] = next;
        }
        if next == NIL {
            list.tail = prev;
        } else {
            self.prev[next as usize] = prev;
        }
    }

    pub fn push_front(&mut self, list: &mut List, e: u32) {
        let old = list.head;
        self.prev[e as usize] = NIL;
        self.next[e as usize] = old;
        if old == NIL {
            list.tail = e;
        } else {
            self.prev[old as usize] = e;
        }
        list.head = e;
    }
}

/// Grow-on-demand helper for per-entry metadata kept parallel to the arena.
#[inline]
pub(crate) fn meta_set<T: Copy + Default>(meta: &mut Vec<T>, e: u32, value: T) {
    let i = e as usize;
    if i >= meta.len() {
        meta.resize(i + 1, T::default());
    }
    meta[i] = value;
}
