//! Content substrate: catalogs, popularity models and caches.
//!
//! A CDN is, mechanically, a set of caches fed by skewed demand. This crate
//! provides the demand side of the reproduction:
//!
//! - a synthetic **catalog** of web objects and video segments
//!   ([`catalog`]),
//! - **Zipf** and **region-weighted** popularity ([`popularity`]) — the
//!   paper's "content bubbles" observation (§5) is that demand skew is
//!   *geographic*: a Boca Juniors match is hot in Argentina and cold in
//!   Finland;
//! - **cache policies** ([`cache`]): LRU, LFU, FIFO and TTL-wrapped
//!   variants behind one trait, byte-capacity-accurate, with hit/miss
//!   accounting;
//! - the **fleet policy zoo** ([`policy`]): constellation-scale flat-SoA
//!   cache fleets — LRU+TTL ([`fleet`]), SIEVE ([`sieve`]), S3-FIFO
//!   ([`s3fifo`]) and W-TinyLFU with count-min admission ([`tinylfu`],
//!   [`sketch`]) — behind the [`policy::CachePolicy`] trait, sharing one
//!   entry arena and a unified evicted/expired/invalidated taxonomy;
//! - **video objects** ([`video`]): DASH-style segment groups ("stripes")
//!   that §4's striping design schedules across successive satellites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod cache;
pub mod catalog;
pub mod fleet;
pub mod hierarchy;
pub mod policy;
pub mod popularity;
pub mod s3fifo;
pub mod sieve;
pub mod sketch;
pub mod tinylfu;
pub mod ttl;
pub mod video;

pub use cache::{Cache, CacheStats, FifoCache, LfuCache, LruCache, SlruCache};
pub use catalog::{Catalog, ContentId, ContentKind, ContentObject, RegionTag};
pub use fleet::FleetCache;
pub use hierarchy::{
    CacheHierarchy, HierarchyOutcome, ServedBy, TierLatencies, TierLatenciesBuilder,
};
pub use policy::{CachePolicy, PolicyFleet, PolicyKind};
pub use popularity::{RegionalPopularity, ZipfSampler};
pub use s3fifo::S3FifoFleet;
pub use sieve::SieveFleet;
pub use sketch::FrequencySketch;
pub use tinylfu::TinyLfuFleet;
pub use ttl::TtlCache;
pub use video::{StripePlanInput, VideoObject};
