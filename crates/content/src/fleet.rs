//! Flat structure-of-arrays cache fleet: every satellite's LRU+TTL cache
//! in parallel vectors.
//!
//! The traffic engine used to keep a `HashMap<SatIndex, TtlCache<LruCache>>`
//! per shard — thousands of small heap-allocated maps and B-trees, two
//! hash lookups and a `BTreeMap` rebalance per touch. [`FleetCache`] is
//! the same semantics laid out flat, mirroring what the CSR rebuild did
//! for routing: per-satellite list heads and byte counters are plain
//! vectors indexed by satellite slot, entries live in one shared arena of
//! parallel vectors (content id, size, expiry, intrusive LRU links), and
//! a single `(satellite, content) → entry` hash index serves the whole
//! fleet. One allocation-free doubly linked list per satellite replaces
//! one `BTreeMap` per satellite.
//!
//! Behaviour is pinned to the wrapped policy it replaces
//! (`TtlCache<LruCache>`): the same hit/miss/evict/expire decisions and
//! the same counter movements on every operation, proven by the
//! differential proptests below. One deliberate divergence: the legacy
//! stack leaks an expiry record when LRU pressure evicts an entry (the
//! wrapper never learns about inner evictions), so a later touch of that
//! id can count a spurious `expired_purges`. The fleet stores the expiry
//! *in* the entry, so eviction drops it atomically and the counter only
//! ever counts real TTL lapses. The tight-capacity proptest encodes
//! exactly this relaxation (`fleet ≤ legacy`); with no evictions the
//! counters are equal.

use crate::cache::CacheStats;
use crate::catalog::ContentId;
use spacecdn_geo::{SimDuration, SimTime};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Null link/slot marker for the intrusive lists and the free list.
const NIL: u32 = u32::MAX;

/// Minimal multiply-rotate hasher for the fleet's `(satellite, content)`
/// index — the single hot hash table on the traffic fast path, where
/// SipHash's per-lookup cost is measurable. Not DoS-resistant, which is
/// fine for deterministic simulation keys we generate ourselves.
#[derive(Default)]
pub struct SlotHasher {
    state: u64,
}

impl SlotHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for SlotHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

type SlotIndex = HashMap<(u32, ContentId), u32, BuildHasherDefault<SlotHasher>>;

/// A whole constellation's LRU+TTL caches in flat parallel arrays.
///
/// Satellites are addressed by a dense `u32` slot (the traffic engine
/// uses shell-offset global indices); all satellites share one byte
/// capacity and one TTL. The clock is fleet-global and monotone
/// ([`FleetCache::set_now`]), which is equivalent to the per-cache clocks
/// it replaces because simulation event times never decrease.
pub struct FleetCache {
    sat_capacity: u64,
    ttl: SimDuration,
    now: SimTime,
    // Per-satellite state, indexed by satellite slot.
    head: Vec<u32>,
    tail: Vec<u32>,
    used: Vec<u64>,
    count: Vec<u32>,
    // Entry arena: parallel vectors linked into per-satellite LRU lists
    // (head = most recent, tail = eviction victim) with a free list.
    e_sat: Vec<u32>,
    e_content: Vec<ContentId>,
    e_size: Vec<u64>,
    e_expiry: Vec<SimTime>,
    e_prev: Vec<u32>,
    e_next: Vec<u32>,
    free: Vec<u32>,
    index: SlotIndex,
    stats: CacheStats,
}

impl FleetCache {
    /// A fleet of `sats` empty caches, each with `capacity_bytes` and
    /// entries expiring `ttl` after insertion.
    ///
    /// # Panics
    /// Panics on a zero TTL — that cache could never serve anything.
    pub fn new(sats: usize, capacity_bytes: u64, ttl: SimDuration) -> Self {
        assert!(ttl > SimDuration::ZERO, "TTL must be positive");
        FleetCache {
            sat_capacity: capacity_bytes,
            ttl,
            now: SimTime::EPOCH,
            head: vec![NIL; sats],
            tail: vec![NIL; sats],
            used: vec![0; sats],
            count: vec![0; sats],
            e_sat: Vec::new(),
            e_content: Vec::new(),
            e_size: Vec::new(),
            e_expiry: Vec::new(),
            e_prev: Vec::new(),
            e_next: Vec::new(),
            free: Vec::new(),
            index: SlotIndex::default(),
            stats: CacheStats::default(),
        }
    }

    /// Advance the clock (monotonically; moving backwards is clamped).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    /// The current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of satellite slots.
    pub fn sat_count(&self) -> usize {
        self.head.len()
    }

    /// Per-satellite byte capacity.
    pub fn capacity_bytes_per_sat(&self) -> u64 {
        self.sat_capacity
    }

    /// The freshness lifetime applied to every insert.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Objects cached on one satellite.
    pub fn len_of(&self, sat: u32) -> usize {
        self.count[sat as usize] as usize
    }

    /// Bytes cached on one satellite.
    pub fn used_bytes_of(&self, sat: u32) -> u64 {
        self.used[sat as usize]
    }

    /// Fleet-wide counters under the unified taxonomy: hits/misses/gets,
    /// inserts, and the three departure classes (evicted under pressure,
    /// expired on TTL lapse, invalidated by `remove`/`clear_sat`).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries dropped because their TTL lapsed (from any purge path).
    /// Alias for `stats().expirations`: fleet purges always drop a live
    /// entry (expiry lives in the entry, so there are no stale records).
    pub fn expired_purges(&self) -> u64 {
        self.stats.expirations
    }

    /// Objects cached fleet-wide (expired-but-untouched entries included).
    pub fn len(&self) -> usize {
        self.count.iter().map(|&n| n as usize).sum()
    }

    /// True when no satellite caches anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Satellites currently holding at least one object, as
    /// `(sat, entries, bytes)` in slot order.
    pub fn occupied(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.count
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(s, &n)| (s as u32, n, self.used[s]))
    }

    // -- intrusive-list plumbing -------------------------------------------

    fn unlink(&mut self, e: u32) {
        let (sat, prev, next) = (
            self.e_sat[e as usize] as usize,
            self.e_prev[e as usize],
            self.e_next[e as usize],
        );
        if prev == NIL {
            self.head[sat] = next;
        } else {
            self.e_next[prev as usize] = next;
        }
        if next == NIL {
            self.tail[sat] = prev;
        } else {
            self.e_prev[next as usize] = prev;
        }
    }

    fn push_front(&mut self, e: u32) {
        let sat = self.e_sat[e as usize] as usize;
        let old = self.head[sat];
        self.e_prev[e as usize] = NIL;
        self.e_next[e as usize] = old;
        if old == NIL {
            self.tail[sat] = e;
        } else {
            self.e_prev[old as usize] = e;
        }
        self.head[sat] = e;
    }

    /// Detach entry `e` entirely: index, list, byte accounting, arena.
    fn release(&mut self, e: u32) {
        let i = e as usize;
        self.index.remove(&(self.e_sat[i], self.e_content[i]));
        self.unlink(e);
        let sat = self.e_sat[i] as usize;
        self.used[sat] -= self.e_size[i];
        self.count[sat] -= 1;
        self.free.push(e);
    }

    fn alloc(&mut self, sat: u32, content: ContentId, size: u64) -> u32 {
        let expiry = self.now + self.ttl;
        if let Some(e) = self.free.pop() {
            let i = e as usize;
            self.e_sat[i] = sat;
            self.e_content[i] = content;
            self.e_size[i] = size;
            self.e_expiry[i] = expiry;
            e
        } else {
            let e = self.e_sat.len() as u32;
            self.e_sat.push(sat);
            self.e_content.push(content);
            self.e_size.push(size);
            self.e_expiry.push(expiry);
            self.e_prev.push(NIL);
            self.e_next.push(NIL);
            e
        }
    }

    #[inline]
    fn slot(&self, sat: u32, content: ContentId) -> Option<u32> {
        self.index.get(&(sat, content)).copied()
    }

    #[inline]
    fn lapsed(&self, e: u32) -> bool {
        self.now >= self.e_expiry[e as usize]
    }

    // -- cache operations (TtlCache<LruCache>-equivalent) ------------------

    /// Freshness check that reclaims: an entry found expired is purged and
    /// counted; a live entry is left untouched (no recency bump, no
    /// hit/miss accounting).
    pub fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool {
        match self.slot(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    /// Presence without side effects (counters and recency untouched).
    pub fn contains(&self, sat: u32, content: ContentId) -> bool {
        self.slot(sat, content).is_some_and(|e| !self.lapsed(e))
    }

    /// Drop `(sat, content)` if present *and* its TTL has lapsed, counting
    /// an expired purge. Supports eager expiry sweeps (the traffic
    /// engine's timer queue); a live or absent entry is untouched.
    pub fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool {
        match self.slot(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                true
            }
            _ => false,
        }
    }

    /// Look up an object: a fresh hit bumps recency and the hit counter;
    /// an expired entry is purged and counted as a miss.
    pub fn get(&mut self, sat: u32, content: ContentId) -> bool {
        self.stats.gets += 1;
        match self.slot(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                false
            }
            Some(e) => {
                // Zipf-hot entries are usually already most-recent; the
                // relink (six scattered link writes) is pure overhead then.
                if self.head[sat as usize] != e {
                    self.unlink(e);
                    self.push_front(e);
                }
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Insert an object, evicting LRU victims as needed; returns false
    /// (caching nothing) when the object exceeds the satellite capacity.
    /// Re-inserting a live object refreshes recency and expiry but keeps
    /// the originally stored size (objects are immutable). Victims are
    /// appended to `evicted` so callers maintaining external holder
    /// indices can prune them eagerly.
    pub fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool {
        if let Some(e) = self.slot(sat, content) {
            if self.lapsed(e) {
                self.release(e);
                self.stats.expirations += 1;
            }
        }
        if size > self.sat_capacity {
            // Mirrors LruCache: the oversize check precedes the refresh
            // path, so an oversized re-insert rejects without refreshing.
            return false;
        }
        if let Some(e) = self.slot(sat, content) {
            self.unlink(e);
            self.push_front(e);
            self.e_expiry[e as usize] = self.now + self.ttl;
            return true;
        }
        while self.used[sat as usize] + size > self.sat_capacity {
            let victim = self.tail[sat as usize];
            debug_assert_ne!(victim, NIL, "eviction loop with an empty list");
            evicted.push(self.e_content[victim as usize]);
            self.release(victim);
            self.stats.evictions += 1;
        }
        let e = self.alloc(sat, content, size);
        self.index.insert((sat, content), e);
        self.push_front(e);
        self.used[sat as usize] += size;
        self.count[sat as usize] += 1;
        self.stats.inserts += 1;
        true
    }

    /// [`FleetCache::insert_collect`] without victim reporting.
    pub fn insert(&mut self, sat: u32, content: ContentId, size: u64) -> bool {
        let mut sink = Vec::new();
        self.insert_collect(sat, content, size, &mut sink)
    }

    /// Remove an object if present (fresh or expired), booking an
    /// invalidation; returns whether it was there. Hit/miss counters and
    /// recency are untouched.
    pub fn remove(&mut self, sat: u32, content: ContentId) -> bool {
        match self.slot(sat, content) {
            Some(e) => {
                self.release(e);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    /// Wipe one satellite's cache (hit/miss counters preserved; each drop
    /// books an invalidation), appending every dropped content id to
    /// `dropped`; returns how many were dropped.
    pub fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64 {
        let mut n = 0;
        while self.head[sat as usize] != NIL {
            let e = self.head[sat as usize];
            dropped.push(self.e_content[e as usize]);
            self.release(e);
            n += 1;
        }
        self.stats.invalidations += n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, LruCache};
    use crate::ttl::TtlCache;
    use proptest::prelude::*;

    fn id(n: u64) -> ContentId {
        ContentId(n)
    }

    fn fleet(cap: u64) -> FleetCache {
        FleetCache::new(4, cap, SimDuration::from_secs(60))
    }

    #[test]
    fn satellites_are_isolated() {
        let mut f = fleet(1_000);
        assert!(f.insert(0, id(1), 100));
        assert!(f.insert(1, id(1), 100));
        assert!(f.get(0, id(1)));
        assert!(!f.get(2, id(1)));
        assert_eq!(f.len_of(0), 1);
        assert_eq!(f.len_of(2), 0);
        assert_eq!(f.used_bytes_of(1), 100);
    }

    #[test]
    fn lru_evicts_least_recent_per_satellite() {
        let mut f = fleet(300);
        f.insert(0, id(1), 100);
        f.insert(0, id(2), 100);
        f.insert(0, id(3), 100);
        assert!(f.get(0, id(1))); // 1 most recent; 2 now LRU
        let mut evicted = Vec::new();
        assert!(f.insert_collect(0, id(4), 100, &mut evicted));
        assert_eq!(evicted, vec![id(2)]);
        assert!(f.contains(0, id(1)) && f.contains(0, id(3)) && f.contains(0, id(4)));
        assert_eq!(f.stats().evictions, 1);
    }

    #[test]
    fn entries_expire_at_ttl_and_count_purges() {
        let mut f = fleet(1_000);
        f.insert(0, id(1), 100);
        f.set_now(SimTime::from_secs(60));
        assert!(!f.contains(0, id(1)));
        assert_eq!(f.used_bytes_of(0), 100, "lazy: bytes linger until touched");
        assert!(!f.is_fresh(0, id(1)));
        assert_eq!(f.used_bytes_of(0), 0);
        assert_eq!(f.expired_purges(), 1);
        assert!(!f.is_fresh(0, id(99)), "absent id is not a purge");
        assert_eq!(f.expired_purges(), 1);
    }

    #[test]
    fn expire_if_due_sweeps_only_lapsed_entries() {
        let mut f = fleet(1_000);
        f.insert(0, id(1), 100);
        assert!(!f.expire_if_due(0, id(1)), "fresh entry stays");
        f.set_now(SimTime::from_secs(60));
        assert!(f.expire_if_due(0, id(1)));
        assert!(!f.expire_if_due(0, id(1)), "already gone");
        assert_eq!(f.expired_purges(), 1);
        assert_eq!(f.stats().misses, 0, "sweeps are not lookups");
    }

    #[test]
    fn refresh_insert_extends_ttl_and_keeps_size() {
        let mut f = fleet(1_000);
        f.insert(0, id(1), 100);
        f.set_now(SimTime::from_secs(30));
        assert!(f.insert(0, id(1), 999)); // refresh ignores the new size
        assert_eq!(f.used_bytes_of(0), 100);
        f.set_now(SimTime::from_secs(89));
        assert!(f.contains(0, id(1)));
        f.set_now(SimTime::from_secs(90));
        assert!(!f.contains(0, id(1)));
    }

    #[test]
    fn oversized_insert_rejected() {
        let mut f = fleet(100);
        assert!(!f.insert(0, id(1), 101));
        assert_eq!(f.len_of(0), 0);
        assert!(f.insert(0, id(2), 100));
    }

    #[test]
    fn clear_sat_drains_and_reports() {
        let mut f = fleet(1_000);
        f.insert(0, id(1), 100);
        f.insert(0, id(2), 100);
        f.insert(1, id(3), 100);
        let mut dropped = Vec::new();
        assert_eq!(f.clear_sat(0, &mut dropped), 2);
        dropped.sort();
        assert_eq!(dropped, vec![id(1), id(2)]);
        assert_eq!(f.len_of(0), 0);
        assert_eq!(f.used_bytes_of(0), 0);
        assert_eq!(f.len_of(1), 1, "other satellites untouched");
        assert_eq!(f.clear_sat(0, &mut Vec::new()), 0);
    }

    #[test]
    fn arena_recycles_released_entries() {
        let mut f = fleet(200);
        for round in 0..50u64 {
            f.insert(0, id(round), 100);
            f.insert(0, id(round + 1000), 100);
        }
        // Churn of 100 inserts at 2-entry capacity must not grow the arena
        // past the live maximum.
        assert!(f.e_sat.len() <= 3, "arena grew to {}", f.e_sat.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ttl_panics() {
        let _ = FleetCache::new(1, 100, SimDuration::ZERO);
    }

    // -- differential proptests vs. the legacy map-of-wrappers stack -------

    /// One randomized operation against both stacks.
    #[derive(Debug, Clone)]
    enum Op {
        Get(u32, u64),
        Insert(u32, u64, u64),
        IsFresh(u32, u64),
        Remove(u32, u64),
        Clear(u32),
        Advance(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let sat = 0..4u32;
        let obj = 0..12u64;
        prop_oneof![
            (sat.clone(), obj.clone()).prop_map(|(s, o)| Op::Get(s, o)),
            (sat.clone(), obj.clone(), 1..400u64).prop_map(|(s, o, z)| Op::Insert(s, o, z)),
            (sat.clone(), obj.clone()).prop_map(|(s, o)| Op::IsFresh(s, o)),
            (sat.clone(), obj.clone()).prop_map(|(s, o)| Op::Remove(s, o)),
            sat.prop_map(Op::Clear),
            (1..40u64).prop_map(Op::Advance),
        ]
    }

    /// Drive the same op sequence through [`FleetCache`] and the legacy
    /// `HashMap<sat, TtlCache<LruCache>>`, asserting identical returns and
    /// identical state after every step. With ample capacity (no
    /// evictions) every counter matches exactly, `expired_purges`
    /// included; under eviction pressure the legacy stack's stale expiry
    /// records make its purge counter an overcount, so there the fleet
    /// must only never exceed it.
    fn run_differential(ops: Vec<Op>, cap: u64, exact_purges: bool) {
        let ttl = SimDuration::from_secs(60);
        let mut f = FleetCache::new(4, cap, ttl);
        let mut legacy: HashMap<u32, TtlCache<LruCache>> = HashMap::new();
        let mut now = SimTime::EPOCH;
        fn reference(
            legacy: &mut HashMap<u32, TtlCache<LruCache>>,
            s: u32,
            cap: u64,
            ttl: SimDuration,
        ) -> &mut TtlCache<LruCache> {
            legacy
                .entry(s)
                .or_insert_with(|| TtlCache::new(LruCache::new(cap), ttl))
        }

        for op in ops {
            match op {
                Op::Advance(secs) => {
                    now += SimDuration::from_secs(secs);
                    f.set_now(now);
                    for c in legacy.values_mut() {
                        c.set_now(now);
                    }
                }
                Op::Get(s, o) => {
                    let r = reference(&mut legacy, s, cap, ttl);
                    r.set_now(now);
                    assert_eq!(f.get(s, ContentId(o)), r.get(ContentId(o)), "get {s}/{o}");
                }
                Op::Insert(s, o, z) => {
                    let r = reference(&mut legacy, s, cap, ttl);
                    r.set_now(now);
                    assert_eq!(
                        f.insert(s, ContentId(o), z),
                        r.insert(ContentId(o), z),
                        "insert {s}/{o}/{z}"
                    );
                }
                Op::IsFresh(s, o) => {
                    let r = reference(&mut legacy, s, cap, ttl);
                    r.set_now(now);
                    assert_eq!(
                        f.is_fresh(s, ContentId(o)),
                        r.is_fresh(ContentId(o)),
                        "is_fresh {s}/{o}"
                    );
                }
                Op::Remove(s, o) => {
                    let r = reference(&mut legacy, s, cap, ttl);
                    r.set_now(now);
                    assert_eq!(
                        f.remove(s, ContentId(o)),
                        r.remove(ContentId(o)),
                        "remove {s}/{o}"
                    );
                }
                Op::Clear(s) => {
                    let r = reference(&mut legacy, s, cap, ttl);
                    r.set_now(now);
                    let n = f.clear_sat(s, &mut Vec::new());
                    assert_eq!(n as usize, r.len(), "clear {s}");
                    r.clear();
                }
            }
            // Per-satellite state must agree after every operation.
            for s in 0..4u32 {
                let (len, used) = legacy.get(&s).map_or((0, 0), |c| (c.len(), c.used_bytes()));
                assert_eq!(f.len_of(s), len, "len of sat {s}");
                assert_eq!(f.used_bytes_of(s), used, "bytes of sat {s}");
                for o in 0..12u64 {
                    assert_eq!(
                        f.contains(s, ContentId(o)),
                        legacy.get(&s).is_some_and(|c| c.contains(ContentId(o))),
                        "contains {s}/{o}"
                    );
                }
            }
            // Aggregate counters must agree — every field of the unified
            // taxonomy, not just hits/misses/evictions. The legacy stack's
            // `stats()` reclassifies only purges that really dropped an
            // entry, so its expirations match the fleet's even when stale
            // expiry records inflate its `expired_purges` attempt counter.
            let mut want = CacheStats::default();
            for c in legacy.values() {
                let s = c.stats();
                want.hits += s.hits;
                want.misses += s.misses;
                want.gets += s.gets;
                want.inserts += s.inserts;
                want.evictions += s.evictions;
                want.expirations += s.expirations;
                want.invalidations += s.invalidations;
            }
            assert_eq!(f.stats(), want, "aggregate stats");
            // Books balance on the fleet side after every step.
            assert_eq!(
                f.stats().departures(),
                f.stats().inserts - f.len() as u64,
                "taxonomy reconciliation"
            );
            let legacy_purges: u64 = legacy.values().map(|c| c.expired_purges()).sum();
            if exact_purges {
                assert_eq!(f.expired_purges(), legacy_purges, "purge counter");
            } else {
                assert!(
                    f.expired_purges() <= legacy_purges,
                    "fleet over-counts purges: {} > {legacy_purges}",
                    f.expired_purges()
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn differential_ample_capacity(ops in prop::collection::vec(op_strategy(), 1..120)) {
            // No evictions possible: full trace equality, purges included.
            run_differential(ops, 1 << 30, true);
        }

        #[test]
        fn differential_tight_capacity(ops in prop::collection::vec(op_strategy(), 1..120)) {
            // ~2 median objects per satellite: heavy eviction churn.
            run_differential(ops, 500, false);
        }
    }
}
