//! Window-TinyLFU eviction as a flat-SoA cache fleet.
//!
//! W-TinyLFU (Einziger et al.) splits each satellite's capacity into a tiny
//! LRU **window** (~1%) where every new object lands, and an SLRU **main**
//! region — **probation** plus **protected** (~80% of main) segments. When
//! the window overflows, its LRU tail becomes an admission *candidate*: a
//! count-min [`FrequencySketch`] (shared fleet-wide, keyed by
//! `(satellite, content)`) compares the candidate's recent request
//! frequency against the main-region victim it would displace, and the
//! loser is evicted. A probation hit promotes to protected (demoting
//! protected's LRU tail back to probation when full); sketch counters are
//! bumped once per `get` and once per `insert`, whatever the outcome, and
//! halve periodically so stale popularity ages out.
//!
//! Determinism: the sketch hashes with fixed constants and admission breaks
//! ties in favour of the incumbent (strict `>` admits), so identical
//! request sequences make identical decisions on every run and at any
//! thread count. The exact decision procedure is mirrored naively by the
//! oracle in `tests/policy_oracle.rs`.
//!
//! Fleet shape, TTL handling and the unified [`CacheStats`] taxonomy match
//! [`crate::fleet::FleetCache`]. Every departure — main victims *and*
//! rejected candidates (which may be the object just inserted) — is
//! reported through `insert_collect`'s `evicted` vector so the traffic
//! engine's holder lists stay eagerly correct.

use crate::arena::{meta_set, EntryArena, List, NIL};
use crate::cache::CacheStats;
use crate::catalog::ContentId;
use crate::policy::CachePolicy;
use crate::sketch::FrequencySketch;
use spacecdn_geo::{SimDuration, SimTime};

/// Segment tags.
const SEG_WINDOW: u8 = 0;
const SEG_PROBATION: u8 = 1;
const SEG_PROTECTED: u8 = 2;

/// Sketch key: satellites live far below bit 40 of any real content id
/// space, so this xor-fold keeps per-satellite streams distinct.
#[inline]
fn sketch_key(sat: u32, content: ContentId) -> u64 {
    (u64::from(sat) << 40) ^ content.0
}

/// A whole constellation's W-TinyLFU caches in flat parallel arrays.
pub struct TinyLfuFleet {
    sat_capacity: u64,
    /// Window byte budget: `capacity / 100`, min 1.
    window_cap: u64,
    /// Main-region byte budget: `capacity - window_cap`.
    main_cap: u64,
    /// Protected-segment byte budget: `4/5` of main.
    protected_cap: u64,
    ttl: SimDuration,
    now: SimTime,
    // Per-satellite state, indexed by satellite slot.
    window: Vec<List>,
    probation: Vec<List>,
    protected: Vec<List>,
    w_used: Vec<u64>,
    prob_used: Vec<u64>,
    prot_used: Vec<u64>,
    count: Vec<u32>,
    // Entry arena + per-entry policy metadata.
    arena: EntryArena,
    seg: Vec<u8>,
    sketch: FrequencySketch,
    stats: CacheStats,
}

impl TinyLfuFleet {
    /// A fleet of `sats` empty W-TinyLFU caches.
    ///
    /// # Panics
    /// Panics on a zero TTL — that cache could never serve anything.
    pub fn new(sats: usize, capacity_bytes: u64, ttl: SimDuration) -> Self {
        assert!(ttl > SimDuration::ZERO, "TTL must be positive");
        let window_cap = (capacity_bytes / 100).max(1);
        let main_cap = capacity_bytes.saturating_sub(window_cap);
        TinyLfuFleet {
            sat_capacity: capacity_bytes,
            window_cap,
            main_cap,
            protected_cap: main_cap * 4 / 5,
            ttl,
            now: SimTime::EPOCH,
            window: vec![List::EMPTY; sats],
            probation: vec![List::EMPTY; sats],
            protected: vec![List::EMPTY; sats],
            w_used: vec![0; sats],
            prob_used: vec![0; sats],
            prot_used: vec![0; sats],
            count: vec![0; sats],
            arena: EntryArena::new(),
            seg: Vec::new(),
            sketch: FrequencySketch::with_entries(sats.max(1) * 64),
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn lapsed(&self, e: u32) -> bool {
        self.now >= self.arena.expiry[e as usize]
    }

    /// Unlink `e` from its segment, adjusting that segment's byte count.
    fn unlink_entry(&mut self, e: u32) {
        let i = e as usize;
        let sat = self.arena.sat[i] as usize;
        let size = self.arena.size[i];
        match self.seg[i] {
            SEG_WINDOW => {
                let mut list = self.window[sat];
                self.arena.unlink(&mut list, e);
                self.window[sat] = list;
                self.w_used[sat] -= size;
            }
            SEG_PROBATION => {
                let mut list = self.probation[sat];
                self.arena.unlink(&mut list, e);
                self.probation[sat] = list;
                self.prob_used[sat] -= size;
            }
            _ => {
                let mut list = self.protected[sat];
                self.arena.unlink(&mut list, e);
                self.protected[sat] = list;
                self.prot_used[sat] -= size;
            }
        }
        self.count[sat] -= 1;
    }

    /// Detach entry `e` entirely.
    fn release(&mut self, e: u32) {
        self.unlink_entry(e);
        self.arena.release(e);
    }

    /// Drop an entry already unlinked from every list.
    fn drop_unlinked(&mut self, e: u32) {
        let sat = self.arena.sat[e as usize] as usize;
        self.count[sat] -= 1;
        self.arena.release(e);
    }

    /// Hit-path segment movement: window/protected entries bump to their
    /// list head; probation entries promote to protected, demoting
    /// protected tails back to probation as needed.
    fn touch_hit(&mut self, e: u32) {
        let i = e as usize;
        let sat = self.arena.sat[i] as usize;
        let size = self.arena.size[i];
        match self.seg[i] {
            SEG_WINDOW => {
                let mut list = self.window[sat];
                if list.head != e {
                    self.arena.unlink(&mut list, e);
                    self.arena.push_front(&mut list, e);
                    self.window[sat] = list;
                }
            }
            SEG_PROTECTED => {
                let mut list = self.protected[sat];
                if list.head != e {
                    self.arena.unlink(&mut list, e);
                    self.arena.push_front(&mut list, e);
                    self.protected[sat] = list;
                }
            }
            _ => {
                if size > self.protected_cap {
                    // Too big to ever protect: bump within probation.
                    let mut list = self.probation[sat];
                    if list.head != e {
                        self.arena.unlink(&mut list, e);
                        self.arena.push_front(&mut list, e);
                        self.probation[sat] = list;
                    }
                    return;
                }
                let mut list = self.probation[sat];
                self.arena.unlink(&mut list, e);
                self.probation[sat] = list;
                self.prob_used[sat] -= size;
                while self.prot_used[sat] + size > self.protected_cap {
                    let demote = self.protected[sat].tail;
                    debug_assert_ne!(demote, NIL, "protected bytes without entries");
                    let dsize = self.arena.size[demote as usize];
                    let mut list = self.protected[sat];
                    self.arena.unlink(&mut list, demote);
                    self.protected[sat] = list;
                    self.prot_used[sat] -= dsize;
                    let mut list = self.probation[sat];
                    self.arena.push_front(&mut list, demote);
                    self.probation[sat] = list;
                    self.prob_used[sat] += dsize;
                    self.seg[demote as usize] = SEG_PROBATION;
                }
                let mut list = self.protected[sat];
                self.arena.push_front(&mut list, e);
                self.protected[sat] = list;
                self.prot_used[sat] += size;
                self.seg[i] = SEG_PROTECTED;
            }
        }
    }

    /// Run the admission filter for window-overflow candidate `cand`
    /// (already unlinked from the window): evict sketch-colder main
    /// victims until it fits, or evict the candidate itself the moment an
    /// incumbent matches it. Ties favour the incumbent.
    fn admit_to_main(&mut self, cand: u32, evicted: &mut Vec<ContentId>) {
        let i = cand as usize;
        let sat = self.arena.sat[i];
        let s = sat as usize;
        let csize = self.arena.size[i];
        if csize > self.main_cap {
            evicted.push(self.arena.content[i]);
            self.drop_unlinked(cand);
            self.stats.evictions += 1;
            return;
        }
        let cand_est = self.sketch.estimate(sketch_key(sat, self.arena.content[i]));
        while self.prob_used[s] + self.prot_used[s] + csize > self.main_cap {
            let victim = if self.probation[s].tail != NIL {
                self.probation[s].tail
            } else {
                self.protected[s].tail
            };
            debug_assert_ne!(victim, NIL, "main bytes without entries");
            let vkey = sketch_key(sat, self.arena.content[victim as usize]);
            if cand_est > self.sketch.estimate(vkey) {
                evicted.push(self.arena.content[victim as usize]);
                self.release(victim);
                self.stats.evictions += 1;
            } else {
                evicted.push(self.arena.content[i]);
                self.drop_unlinked(cand);
                self.stats.evictions += 1;
                return;
            }
        }
        let mut list = self.probation[s];
        self.arena.push_front(&mut list, cand);
        self.probation[s] = list;
        self.prob_used[s] += csize;
        self.seg[i] = SEG_PROBATION;
    }

    /// Shed window overflow through the admission filter.
    fn rebalance_window(&mut self, sat: u32, evicted: &mut Vec<ContentId>) {
        let s = sat as usize;
        while self.w_used[s] > self.window_cap {
            let cand = self.window[s].tail;
            debug_assert_ne!(cand, NIL, "window bytes without entries");
            let mut list = self.window[s];
            self.arena.unlink(&mut list, cand);
            self.window[s] = list;
            self.w_used[s] -= self.arena.size[cand as usize];
            self.admit_to_main(cand, evicted);
        }
    }

    /// The admission sketch (diagnostics and tests).
    pub fn sketch(&self) -> &FrequencySketch {
        &self.sketch
    }
}

impl CachePolicy for TinyLfuFleet {
    fn name(&self) -> &'static str {
        "tinylfu"
    }

    fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn sat_count(&self) -> usize {
        self.window.len()
    }

    fn capacity_bytes_per_sat(&self) -> u64 {
        self.sat_capacity
    }

    fn ttl(&self) -> SimDuration {
        self.ttl
    }

    fn len_of(&self, sat: u32) -> usize {
        self.count[sat as usize] as usize
    }

    fn used_bytes_of(&self, sat: u32) -> u64 {
        let s = sat as usize;
        self.w_used[s] + self.prob_used[s] + self.prot_used[s]
    }

    fn len(&self) -> usize {
        self.count.iter().map(|&n| n as usize).sum()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn get(&mut self, sat: u32, content: ContentId) -> bool {
        self.sketch.increment(sketch_key(sat, content));
        self.stats.gets += 1;
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                false
            }
            Some(e) => {
                self.touch_hit(e);
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    fn contains(&self, sat: u32, content: ContentId) -> bool {
        self.arena
            .lookup(sat, content)
            .is_some_and(|e| !self.lapsed(e))
    }

    fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                true
            }
            _ => false,
        }
    }

    fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool {
        self.sketch.increment(sketch_key(sat, content));
        if let Some(e) = self.arena.lookup(sat, content) {
            if self.lapsed(e) {
                self.release(e);
                self.stats.expirations += 1;
            }
        }
        if size > self.sat_capacity {
            return false;
        }
        if let Some(e) = self.arena.lookup(sat, content) {
            // Refresh: same segment movement as a hit, expiry extended.
            self.touch_hit(e);
            self.arena.expiry[e as usize] = self.now + self.ttl;
            return true;
        }
        let e = self.arena.alloc(sat, content, size, self.now + self.ttl);
        meta_set(&mut self.seg, e, SEG_WINDOW);
        let s = sat as usize;
        let mut list = self.window[s];
        self.arena.push_front(&mut list, e);
        self.window[s] = list;
        self.w_used[s] += size;
        self.count[s] += 1;
        self.stats.inserts += 1;
        self.rebalance_window(sat, evicted);
        true
    }

    fn remove(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) => {
                self.release(e);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64 {
        let s = sat as usize;
        let mut n = 0;
        for seg in [SEG_WINDOW, SEG_PROBATION, SEG_PROTECTED] {
            loop {
                let head = match seg {
                    SEG_WINDOW => self.window[s].head,
                    SEG_PROBATION => self.probation[s].head,
                    _ => self.protected[s].head,
                };
                if head == NIL {
                    break;
                }
                dropped.push(self.arena.content[head as usize]);
                self.release(head);
                n += 1;
            }
        }
        self.stats.invalidations += n;
        n
    }

    fn occupied_into(&self, out: &mut Vec<(u32, u32, u64)>) {
        for (s, &n) in self.count.iter().enumerate() {
            if n > 0 {
                out.push((s as u32, n, self.used_bytes_of(s as u32)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContentId {
        ContentId(n)
    }

    #[test]
    fn segment_budgets_partition_capacity() {
        let f = TinyLfuFleet::new(1, 10_000, SimDuration::from_secs(60));
        assert_eq!(f.window_cap, 100);
        assert_eq!(f.main_cap, 9_900);
        assert_eq!(f.protected_cap, 7_920);
        let tiny = TinyLfuFleet::new(1, 1, SimDuration::from_secs(60));
        assert_eq!(tiny.window_cap, 1);
        assert_eq!(tiny.main_cap, 0);
    }

    #[test]
    fn new_objects_enter_the_window_and_graduate_to_probation() {
        let f_cap = 10_000u64; // window 100
        let mut f = TinyLfuFleet::new(1, f_cap, SimDuration::from_secs(60));
        f.insert_collect(0, id(1), 100, &mut Vec::new());
        let e = f.arena.lookup(0, id(1)).unwrap();
        assert_eq!(f.seg[e as usize], SEG_WINDOW);
        // Next insert overflows the window; 1 becomes the candidate and is
        // admitted to empty main (nothing to displace).
        f.insert_collect(0, id(2), 100, &mut Vec::new());
        let e = f.arena.lookup(0, id(1)).unwrap();
        assert_eq!(f.seg[e as usize], SEG_PROBATION);
        assert_eq!(f.used_bytes_of(0), 200);
    }

    #[test]
    fn probation_hit_promotes_to_protected() {
        let mut f = TinyLfuFleet::new(1, 10_000, SimDuration::from_secs(60));
        f.insert_collect(0, id(1), 100, &mut Vec::new());
        f.insert_collect(0, id(2), 100, &mut Vec::new()); // 1 → probation
        assert!(f.get(0, id(1)));
        let e = f.arena.lookup(0, id(1)).unwrap();
        assert_eq!(f.seg[e as usize], SEG_PROTECTED);
    }

    #[test]
    fn admission_filter_rejects_cold_candidates() {
        // Fill main with objects that each got several hits (hot), then
        // push a never-requested candidate through: the sketch must reject
        // it rather than displace a hot incumbent.
        let mut f = TinyLfuFleet::new(1, 1_000, SimDuration::from_secs(600));
        // window 10, main 990 → 9 objects of 100 fill main + 1 in window.
        for n in 0..10u64 {
            f.insert_collect(0, id(n), 100, &mut Vec::new());
            for _ in 0..4 {
                f.get(0, id(n));
            }
        }
        // Cold newcomer displaces the window occupant (candidate), which
        // then faces a hot probation tail and loses.
        let mut ev = Vec::new();
        f.insert_collect(0, id(99), 100, &mut ev);
        assert!(
            !ev.is_empty(),
            "window overflow must resolve through admission"
        );
        // The hot set survives in full.
        for n in 0..9u64 {
            assert!(f.contains(0, id(n)), "hot object {n} displaced");
        }
        let s = f.stats();
        assert_eq!(s.departures(), s.inserts - f.len() as u64);
    }

    #[test]
    fn candidate_self_eviction_is_reported() {
        // main_cap 0 (capacity 1): every graduation candidate self-evicts,
        // and the reported victim can be the object just inserted.
        let mut f = TinyLfuFleet::new(1, 1, SimDuration::from_secs(60));
        assert!(f.insert_collect(0, id(1), 1, &mut Vec::new()));
        let mut ev = Vec::new();
        assert!(f.insert_collect(0, id(2), 1, &mut ev));
        assert_eq!(ev, vec![id(1)], "window tail rejected by empty main");
        assert!(f.contains(0, id(2)));
        assert_eq!(f.len_of(0), 1);
    }

    #[test]
    fn protected_overflow_demotes_not_drops() {
        let mut f = TinyLfuFleet::new(1, 1_000, SimDuration::from_secs(600));
        // protected_cap = 990*4/5 = 792 → 7 objects of 100 fit.
        for n in 0..9u64 {
            f.insert_collect(0, id(n), 100, &mut Vec::new());
        }
        // Promote 8 of them; the 8th promotion must demote the coldest
        // back to probation rather than dropping it.
        let before = f.len_of(0);
        for n in 0..8u64 {
            if f.contains(0, id(n)) {
                f.get(0, id(n));
            }
        }
        assert_eq!(f.len_of(0), before, "promotion churn never drops entries");
        let s = f.stats();
        assert_eq!(s.departures(), s.inserts - f.len() as u64);
    }

    #[test]
    fn arena_recycles_under_churn() {
        let mut f = TinyLfuFleet::new(1, 200, SimDuration::from_secs(600));
        for round in 0..60u64 {
            f.insert_collect(0, id(round % 7), 100, &mut Vec::new());
        }
        assert!(f.arena.slots() <= 8, "arena grew to {}", f.arena.slots());
    }
}
