//! The cache-policy zoo: eviction/admission lifted out of
//! [`crate::fleet::FleetCache`] behind one trait.
//!
//! Satellite caches are tiny, duty-cycled, and expensive to refill from the
//! ground, so *what* a satellite admits and evicts matters far more than on
//! terrestrial CDNs. This module defines:
//!
//! - [`CachePolicy`] — the fleet-shaped trait every policy implements:
//!   lookups, TTL purges, exact eviction reporting (the traffic engine
//!   maintains eager per-content holder lists, so every departure must be
//!   surfaced), per-policy [`CacheStats`] under the unified
//!   evicted/expired/invalidated taxonomy;
//! - [`PolicyKind`] — the selector wired through `TrafficConfig`,
//!   `Scenario`, and the serve protocol's `cache` mutation op;
//! - [`PolicyFleet`] — an enum over the four concrete fleets. The traffic
//!   hot path dispatches through a `match` (static dispatch per arm, no
//!   vtable), which keeps the PR 6 throughput contract; the trait object
//!   path exists for generic callers.
//!
//! All four implementations are flat-SoA intrusive structures over the
//! shared `EntryArena` and are pinned decision-for-decision
//! to naive map/VecDeque references in `tests/policy_oracle.rs`.

use crate::cache::CacheStats;
use crate::catalog::ContentId;
use crate::fleet::FleetCache;
use crate::s3fifo::S3FifoFleet;
use crate::sieve::SieveFleet;
use crate::tinylfu::TinyLfuFleet;
use spacecdn_geo::{SimDuration, SimTime};

/// Which eviction/admission policy a cache fleet runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// LRU with TTL expiry — the PR 6 baseline ([`FleetCache`]).
    #[default]
    LruTtl,
    /// SIEVE: FIFO queue with a visited bit and a lazily sweeping hand.
    Sieve,
    /// S3-FIFO: small probationary FIFO + main FIFO + ghost queue.
    S3Fifo,
    /// Window-TinyLFU: tiny LRU window + SLRU main, admission decided by a
    /// count-min frequency sketch.
    TinyLfu,
}

impl PolicyKind {
    /// Every policy, in canonical (report/sweep) order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::LruTtl,
        PolicyKind::Sieve,
        PolicyKind::S3Fifo,
        PolicyKind::TinyLfu,
    ];

    /// Canonical wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::LruTtl => "lru",
            PolicyKind::Sieve => "sieve",
            PolicyKind::S3Fifo => "s3fifo",
            PolicyKind::TinyLfu => "tinylfu",
        }
    }

    /// Parse a wire name (canonical names plus common aliases).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lru" | "lru+ttl" | "lru_ttl" | "lruttl" => Some(PolicyKind::LruTtl),
            "sieve" => Some(PolicyKind::Sieve),
            "s3fifo" | "s3-fifo" => Some(PolicyKind::S3Fifo),
            "tinylfu" | "w-tinylfu" | "wtinylfu" | "tiny-lfu" => Some(PolicyKind::TinyLfu),
            _ => None,
        }
    }

    /// The `SPACECDN_POLICY` environment knob (default: `lru`).
    ///
    /// # Panics
    /// Panics on an unrecognized policy name — a silently ignored knob
    /// would un-pin every downstream report.
    pub fn from_env() -> PolicyKind {
        match std::env::var("SPACECDN_POLICY") {
            Ok(s) if !s.is_empty() => PolicyKind::parse(&s)
                .unwrap_or_else(|| panic!("SPACECDN_POLICY: unknown policy {s:?}")),
            _ => PolicyKind::default(),
        }
    }
}

/// A whole constellation's caches behind one eviction/admission policy.
///
/// The shape mirrors [`FleetCache`]: satellites are dense `u32` slots, one
/// byte capacity and one TTL fleet-wide, a monotone fleet-global clock.
/// Implementations must report **every** departure — eviction victims
/// through `insert_collect`'s `evicted` vector, duty-cycle drops through
/// `clear_sat`'s `dropped` vector — because the traffic engine prunes its
/// per-content holder lists eagerly and a silent drop would desynchronize
/// them (caught by a `debug_assert` on the serve path).
pub trait CachePolicy {
    /// Canonical policy name (matches [`PolicyKind::name`]).
    fn name(&self) -> &'static str;

    /// Advance the clock (monotonically; moving backwards is clamped).
    fn set_now(&mut self, now: SimTime);

    /// The current clock.
    fn now(&self) -> SimTime;

    /// Number of satellite slots.
    fn sat_count(&self) -> usize;

    /// Per-satellite byte capacity.
    fn capacity_bytes_per_sat(&self) -> u64;

    /// The freshness lifetime applied to every insert.
    fn ttl(&self) -> SimDuration;

    /// Objects cached on one satellite (expired-but-untouched included).
    fn len_of(&self, sat: u32) -> usize;

    /// Bytes cached on one satellite.
    fn used_bytes_of(&self, sat: u32) -> u64;

    /// Objects cached fleet-wide.
    fn len(&self) -> usize;

    /// True when no satellite caches anything.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fleet-wide counters under the unified taxonomy.
    fn stats(&self) -> CacheStats;

    /// Look up an object: a fresh hit updates the policy's recency or
    /// frequency state; an expired entry is purged and counted as a miss.
    fn get(&mut self, sat: u32, content: ContentId) -> bool;

    /// Presence without side effects (counters and policy state untouched).
    fn contains(&self, sat: u32, content: ContentId) -> bool;

    /// Freshness check that reclaims: an entry found expired is purged and
    /// counted; a live entry is left untouched.
    fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool;

    /// Drop `(sat, content)` if present *and* its TTL has lapsed, counting
    /// an expiration; a live or absent entry is untouched.
    fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool;

    /// Insert an object, evicting per policy as needed; returns false
    /// (caching nothing) when the object exceeds the satellite capacity.
    /// Re-inserting a live object refreshes policy state and expiry but
    /// keeps the originally stored size. Every entry dropped by the
    /// operation — victims, and under admission policies possibly the
    /// inserted object itself — is appended to `evicted`.
    fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool;

    /// Remove an object if present (fresh or expired), booking an
    /// invalidation; returns whether it was there.
    fn remove(&mut self, sat: u32, content: ContentId) -> bool;

    /// Wipe one satellite's cache (each drop books an invalidation),
    /// appending every dropped content id to `dropped`; returns how many.
    fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64;

    /// Satellites currently holding at least one object, as
    /// `(sat, entries, bytes)` in slot order, appended to `out`.
    fn occupied_into(&self, out: &mut Vec<(u32, u32, u64)>);
}

impl CachePolicy for FleetCache {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn set_now(&mut self, now: SimTime) {
        FleetCache::set_now(self, now)
    }
    fn now(&self) -> SimTime {
        FleetCache::now(self)
    }
    fn sat_count(&self) -> usize {
        FleetCache::sat_count(self)
    }
    fn capacity_bytes_per_sat(&self) -> u64 {
        FleetCache::capacity_bytes_per_sat(self)
    }
    fn ttl(&self) -> SimDuration {
        FleetCache::ttl(self)
    }
    fn len_of(&self, sat: u32) -> usize {
        FleetCache::len_of(self, sat)
    }
    fn used_bytes_of(&self, sat: u32) -> u64 {
        FleetCache::used_bytes_of(self, sat)
    }
    fn len(&self) -> usize {
        FleetCache::len(self)
    }
    fn stats(&self) -> CacheStats {
        FleetCache::stats(self)
    }
    fn get(&mut self, sat: u32, content: ContentId) -> bool {
        FleetCache::get(self, sat, content)
    }
    fn contains(&self, sat: u32, content: ContentId) -> bool {
        FleetCache::contains(self, sat, content)
    }
    fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool {
        FleetCache::is_fresh(self, sat, content)
    }
    fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool {
        FleetCache::expire_if_due(self, sat, content)
    }
    fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool {
        FleetCache::insert_collect(self, sat, content, size, evicted)
    }
    fn remove(&mut self, sat: u32, content: ContentId) -> bool {
        FleetCache::remove(self, sat, content)
    }
    fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64 {
        FleetCache::clear_sat(self, sat, dropped)
    }
    fn occupied_into(&self, out: &mut Vec<(u32, u32, u64)>) {
        out.extend(self.occupied());
    }
}

/// Static-dispatch wrapper over the four concrete policy fleets.
///
/// The traffic engine stores one of these per shard; every hot-path call
/// goes through a four-arm `match` that monomorphizes per policy instead of
/// an indirect call. `PolicyFleet` itself also implements [`CachePolicy`]
/// for generic callers.
pub enum PolicyFleet {
    /// LRU+TTL baseline.
    LruTtl(FleetCache),
    /// SIEVE.
    Sieve(SieveFleet),
    /// S3-FIFO.
    S3Fifo(S3FifoFleet),
    /// Window-TinyLFU.
    TinyLfu(TinyLfuFleet),
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            PolicyFleet::LruTtl($p) => $body,
            PolicyFleet::Sieve($p) => $body,
            PolicyFleet::S3Fifo($p) => $body,
            PolicyFleet::TinyLfu($p) => $body,
        }
    };
}

impl PolicyFleet {
    /// Build a fleet of `sats` empty caches running `kind`, each with
    /// `capacity_bytes` and entries expiring `ttl` after insertion.
    ///
    /// # Panics
    /// Panics on a zero TTL — that cache could never serve anything.
    pub fn new(kind: PolicyKind, sats: usize, capacity_bytes: u64, ttl: SimDuration) -> Self {
        match kind {
            PolicyKind::LruTtl => PolicyFleet::LruTtl(FleetCache::new(sats, capacity_bytes, ttl)),
            PolicyKind::Sieve => PolicyFleet::Sieve(SieveFleet::new(sats, capacity_bytes, ttl)),
            PolicyKind::S3Fifo => PolicyFleet::S3Fifo(S3FifoFleet::new(sats, capacity_bytes, ttl)),
            PolicyKind::TinyLfu => {
                PolicyFleet::TinyLfu(TinyLfuFleet::new(sats, capacity_bytes, ttl))
            }
        }
    }

    /// Which policy this fleet runs.
    pub fn kind(&self) -> PolicyKind {
        match self {
            PolicyFleet::LruTtl(_) => PolicyKind::LruTtl,
            PolicyFleet::Sieve(_) => PolicyKind::Sieve,
            PolicyFleet::S3Fifo(_) => PolicyKind::S3Fifo,
            PolicyFleet::TinyLfu(_) => PolicyKind::TinyLfu,
        }
    }

    /// See [`CachePolicy::set_now`].
    #[inline]
    pub fn set_now(&mut self, now: SimTime) {
        dispatch!(self, p => p.set_now(now))
    }

    /// See [`CachePolicy::now`].
    #[inline]
    pub fn now(&self) -> SimTime {
        dispatch!(self, p => p.now())
    }

    /// See [`CachePolicy::sat_count`].
    pub fn sat_count(&self) -> usize {
        dispatch!(self, p => p.sat_count())
    }

    /// See [`CachePolicy::capacity_bytes_per_sat`].
    pub fn capacity_bytes_per_sat(&self) -> u64 {
        dispatch!(self, p => p.capacity_bytes_per_sat())
    }

    /// See [`CachePolicy::ttl`].
    pub fn ttl(&self) -> SimDuration {
        dispatch!(self, p => p.ttl())
    }

    /// See [`CachePolicy::len_of`].
    #[inline]
    pub fn len_of(&self, sat: u32) -> usize {
        dispatch!(self, p => p.len_of(sat))
    }

    /// See [`CachePolicy::used_bytes_of`].
    #[inline]
    pub fn used_bytes_of(&self, sat: u32) -> u64 {
        dispatch!(self, p => p.used_bytes_of(sat))
    }

    /// See [`CachePolicy::len`].
    pub fn len(&self) -> usize {
        dispatch!(self, p => p.len())
    }

    /// True when no satellite caches anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`CachePolicy::stats`].
    pub fn stats(&self) -> CacheStats {
        dispatch!(self, p => p.stats())
    }

    /// Entries dropped because their TTL lapsed — `stats().expirations`.
    pub fn expired_purges(&self) -> u64 {
        self.stats().expirations
    }

    /// See [`CachePolicy::get`].
    #[inline]
    pub fn get(&mut self, sat: u32, content: ContentId) -> bool {
        dispatch!(self, p => p.get(sat, content))
    }

    /// See [`CachePolicy::contains`].
    #[inline]
    pub fn contains(&self, sat: u32, content: ContentId) -> bool {
        dispatch!(self, p => p.contains(sat, content))
    }

    /// See [`CachePolicy::is_fresh`].
    #[inline]
    pub fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool {
        dispatch!(self, p => p.is_fresh(sat, content))
    }

    /// See [`CachePolicy::expire_if_due`].
    #[inline]
    pub fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool {
        dispatch!(self, p => p.expire_if_due(sat, content))
    }

    /// See [`CachePolicy::insert_collect`].
    #[inline]
    pub fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool {
        dispatch!(self, p => p.insert_collect(sat, content, size, evicted))
    }

    /// [`CachePolicy::insert_collect`] without victim reporting.
    pub fn insert(&mut self, sat: u32, content: ContentId, size: u64) -> bool {
        let mut sink = Vec::new();
        self.insert_collect(sat, content, size, &mut sink)
    }

    /// See [`CachePolicy::remove`].
    pub fn remove(&mut self, sat: u32, content: ContentId) -> bool {
        dispatch!(self, p => p.remove(sat, content))
    }

    /// See [`CachePolicy::clear_sat`].
    pub fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64 {
        dispatch!(self, p => p.clear_sat(sat, dropped))
    }

    /// See [`CachePolicy::occupied_into`].
    pub fn occupied_into(&self, out: &mut Vec<(u32, u32, u64)>) {
        dispatch!(self, p => p.occupied_into(out))
    }
}

impl CachePolicy for PolicyFleet {
    fn name(&self) -> &'static str {
        self.kind().name()
    }
    fn set_now(&mut self, now: SimTime) {
        PolicyFleet::set_now(self, now)
    }
    fn now(&self) -> SimTime {
        PolicyFleet::now(self)
    }
    fn sat_count(&self) -> usize {
        PolicyFleet::sat_count(self)
    }
    fn capacity_bytes_per_sat(&self) -> u64 {
        PolicyFleet::capacity_bytes_per_sat(self)
    }
    fn ttl(&self) -> SimDuration {
        PolicyFleet::ttl(self)
    }
    fn len_of(&self, sat: u32) -> usize {
        PolicyFleet::len_of(self, sat)
    }
    fn used_bytes_of(&self, sat: u32) -> u64 {
        PolicyFleet::used_bytes_of(self, sat)
    }
    fn len(&self) -> usize {
        PolicyFleet::len(self)
    }
    fn stats(&self) -> CacheStats {
        PolicyFleet::stats(self)
    }
    fn get(&mut self, sat: u32, content: ContentId) -> bool {
        PolicyFleet::get(self, sat, content)
    }
    fn contains(&self, sat: u32, content: ContentId) -> bool {
        PolicyFleet::contains(self, sat, content)
    }
    fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool {
        PolicyFleet::is_fresh(self, sat, content)
    }
    fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool {
        PolicyFleet::expire_if_due(self, sat, content)
    }
    fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool {
        PolicyFleet::insert_collect(self, sat, content, size, evicted)
    }
    fn remove(&mut self, sat: u32, content: ContentId) -> bool {
        PolicyFleet::remove(self, sat, content)
    }
    fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64 {
        PolicyFleet::clear_sat(self, sat, dropped)
    }
    fn occupied_into(&self, out: &mut Vec<(u32, u32, u64)>) {
        dispatch!(self, p => p.occupied_into(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("W-TinyLFU"), Some(PolicyKind::TinyLfu));
        assert_eq!(PolicyKind::parse("lru+ttl"), Some(PolicyKind::LruTtl));
        assert_eq!(PolicyKind::parse("nope"), None);
        assert_eq!(PolicyKind::default(), PolicyKind::LruTtl);
    }

    #[test]
    fn fleet_constructs_and_reports_every_kind() {
        for kind in PolicyKind::ALL {
            let mut f = PolicyFleet::new(kind, 2, 1_000, SimDuration::from_secs(60));
            assert_eq!(f.kind(), kind);
            assert_eq!(CachePolicy::name(&f), kind.name());
            assert_eq!(f.sat_count(), 2);
            assert_eq!(f.capacity_bytes_per_sat(), 1_000);
            assert!(f.is_empty());
            assert!(f.insert(0, ContentId(1), 100));
            assert!(f.get(0, ContentId(1)), "{}: fresh hit", kind.name());
            assert!(
                !f.get(1, ContentId(1)),
                "{}: satellite isolation",
                kind.name()
            );
            assert_eq!(f.len_of(0), 1);
            assert_eq!(f.used_bytes_of(0), 100);
            assert_eq!(f.len(), 1);
            let s = f.stats();
            assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
            assert_eq!(s.gets, s.hits + s.misses);
            let mut occ = Vec::new();
            f.occupied_into(&mut occ);
            assert_eq!(occ, vec![(0, 1, 100)]);
            assert!(f.remove(0, ContentId(1)));
            assert_eq!(f.stats().invalidations, 1);
            assert!(f.is_empty());
        }
    }

    #[test]
    fn ttl_expiry_is_uniform_across_policies() {
        for kind in PolicyKind::ALL {
            let mut f = PolicyFleet::new(kind, 1, 1_000, SimDuration::from_secs(60));
            f.insert(0, ContentId(1), 100);
            f.insert(0, ContentId(2), 100);
            f.set_now(SimTime::from_secs(60));
            assert!(!f.contains(0, ContentId(1)), "{}", kind.name());
            assert!(!f.is_fresh(0, ContentId(1)), "{}", kind.name());
            assert!(f.expire_if_due(0, ContentId(2)), "{}", kind.name());
            assert_eq!(f.expired_purges(), 2, "{}", kind.name());
            assert_eq!(f.stats().expirations, 2);
            assert_eq!(f.len_of(0), 0);
            // Books balance after expiry.
            let s = f.stats();
            assert_eq!(s.departures(), s.inserts - f.len() as u64);
        }
    }

    #[test]
    fn clear_sat_reports_every_drop_for_every_policy() {
        for kind in PolicyKind::ALL {
            let mut f = PolicyFleet::new(kind, 2, 10_000, SimDuration::from_secs(60));
            for n in 0..8u64 {
                f.insert(0, ContentId(n), 100);
            }
            f.insert(1, ContentId(99), 100);
            let mut dropped = Vec::new();
            assert_eq!(f.clear_sat(0, &mut dropped), 8, "{}", kind.name());
            dropped.sort();
            assert_eq!(dropped, (0..8).map(ContentId).collect::<Vec<_>>());
            assert_eq!(f.len_of(0), 0);
            assert_eq!(f.len_of(1), 1, "other satellites untouched");
            assert_eq!(f.stats().invalidations, 8);
        }
    }

    #[test]
    fn eviction_reporting_is_exact_for_every_policy() {
        // Tiny caches force churn; every departure must be reported so the
        // engine's holder lists stay correct. Verify via set reconciliation:
        // inserted - (reported departures) == final contents.
        for kind in PolicyKind::ALL {
            let mut f = PolicyFleet::new(kind, 1, 300, SimDuration::from_secs(600));
            let mut live: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            let mut evicted = Vec::new();
            for n in 0..40u64 {
                evicted.clear();
                if f.insert_collect(0, ContentId(n), 100, &mut evicted) {
                    live.insert(n);
                }
                for v in &evicted {
                    assert!(live.remove(&v.0), "{}: unknown victim {v:?}", kind.name());
                }
                // Re-touch a survivor to churn recency/frequency state.
                if let Some(&keep) = live.iter().next() {
                    f.get(0, ContentId(keep));
                }
            }
            assert_eq!(f.len_of(0), live.len(), "{}", kind.name());
            for &n in &live {
                assert!(f.contains(0, ContentId(n)), "{}: {n} lost", kind.name());
            }
            let s = f.stats();
            assert_eq!(
                s.departures(),
                s.inserts - f.len() as u64,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn env_knob_rejects_garbage() {
        // Exercise the parse-failure path directly (env mutation in tests
        // races other threads, so call the parser the knob uses).
        PolicyKind::parse("warble")
            .unwrap_or_else(|| panic!("SPACECDN_POLICY: unknown policy \"warble\""));
    }
}
