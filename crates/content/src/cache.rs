//! Cache policies behind one trait.
//!
//! Capacity is tracked in bytes (objects have real sizes), admission rejects
//! objects larger than the whole cache, and every policy keeps hit/miss
//! counters so experiments can report hit ratios without wrapping.

use crate::catalog::ContentId;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Hit/miss counters shared by all policies.
///
/// The departure taxonomy is unified across every policy (including the
/// fleet policies in [`crate::policy`]): an entry leaves a cache for exactly
/// one of three reasons — **evicted** under capacity pressure (including
/// admission-filter rejections that drop a window candidate), **expired**
/// when its TTL lapsed before any probe touched it, or **invalidated** by an
/// explicit `remove`/`clear`. For policies that track all counters the books
/// balance: `hits + misses == gets` and
/// `evictions + expirations + invalidations == inserts - len`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the object.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Total lookups (incremented independently of hit/miss so the
    /// `hits + misses == gets` reconciliation is a real check).
    pub gets: u64,
    /// New entries admitted (refreshes of an existing entry excluded).
    pub inserts: u64,
    /// Objects evicted to make room.
    pub evictions: u64,
    /// Objects dropped because their TTL lapsed (any purge path).
    pub expirations: u64,
    /// Objects dropped by explicit `remove` or `clear`.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// All departures: `evictions + expirations + invalidations`.
    pub fn departures(&self) -> u64 {
        self.evictions + self.expirations + self.invalidations
    }
}

/// A byte-capacity cache of content objects.
pub trait Cache {
    /// Look up an object, updating recency/frequency metadata and counters.
    fn get(&mut self, id: ContentId) -> bool;

    /// Check for an object without touching metadata or counters.
    fn contains(&self, id: ContentId) -> bool;

    /// Insert an object of the given size, evicting as needed. Returns
    /// false (and caches nothing) when the object exceeds total capacity.
    /// Re-inserting an existing object refreshes its metadata but keeps the
    /// originally stored size: CDN objects are immutable (a new version is
    /// a new `ContentId`).
    fn insert(&mut self, id: ContentId, size_bytes: u64) -> bool;

    /// Remove an object if present; returns whether it was there.
    fn remove(&mut self, id: ContentId) -> bool;

    /// Bytes currently stored.
    fn used_bytes(&self) -> u64;

    /// Total capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Number of stored objects.
    fn len(&self) -> usize;

    /// True when nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    fn stats(&self) -> CacheStats;

    /// Drop everything (counters are preserved).
    fn clear(&mut self);
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

/// Least-recently-used eviction. O(log n) per operation via a recency-ordered
/// BTreeMap keyed by a monotonic touch counter.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    tick: u64,
    /// id → (last-touch tick, size)
    entries: HashMap<ContentId, (u64, u64)>,
    /// last-touch tick → id (unique because ticks are monotonic)
    order: BTreeMap<u64, ContentId>,
    stats: CacheStats,
}

impl LruCache {
    /// A new LRU cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity: capacity_bytes,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    fn touch(&mut self, id: ContentId) {
        if let Some(&(old_tick, size)) = self.entries.get(&id) {
            self.order.remove(&old_tick);
            self.tick += 1;
            self.order.insert(self.tick, id);
            self.entries.insert(id, (self.tick, size));
        }
    }

    fn evict_one(&mut self) {
        if let Some((&oldest, &victim)) = self.order.iter().next() {
            self.order.remove(&oldest);
            if let Some((_, size)) = self.entries.remove(&victim) {
                self.used -= size;
                self.stats.evictions += 1;
            }
        }
    }
}

impl Cache for LruCache {
    fn get(&mut self, id: ContentId) -> bool {
        self.stats.gets += 1;
        if self.entries.contains_key(&id) {
            self.touch(id);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn contains(&self, id: ContentId) -> bool {
        self.entries.contains_key(&id)
    }

    fn insert(&mut self, id: ContentId, size_bytes: u64) -> bool {
        if size_bytes > self.capacity {
            return false;
        }
        if self.entries.contains_key(&id) {
            self.touch(id);
            return true;
        }
        while self.used + size_bytes > self.capacity {
            self.evict_one();
        }
        self.tick += 1;
        self.entries.insert(id, (self.tick, size_bytes));
        self.order.insert(self.tick, id);
        self.used += size_bytes;
        self.stats.inserts += 1;
        true
    }

    fn remove(&mut self, id: ContentId) -> bool {
        if let Some((tick, size)) = self.entries.remove(&id) {
            self.order.remove(&tick);
            self.used -= size;
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.order.clear();
        self.used = 0;
    }
}

// ---------------------------------------------------------------------------
// LFU
// ---------------------------------------------------------------------------

/// Least-frequently-used eviction with LRU tie-breaking, O(log n) via a
/// (frequency, tick)-ordered BTreeMap.
#[derive(Debug, Clone)]
pub struct LfuCache {
    capacity: u64,
    used: u64,
    tick: u64,
    /// id → (frequency, last tick, size)
    entries: HashMap<ContentId, (u64, u64, u64)>,
    /// (frequency, last tick) → id
    order: BTreeMap<(u64, u64), ContentId>,
    stats: CacheStats,
}

impl LfuCache {
    /// A new LFU cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        LfuCache {
            capacity: capacity_bytes,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    fn bump(&mut self, id: ContentId) {
        if let Some(&(freq, tick, size)) = self.entries.get(&id) {
            self.order.remove(&(freq, tick));
            self.tick += 1;
            let next = (freq + 1, self.tick);
            self.order.insert(next, id);
            self.entries.insert(id, (freq + 1, self.tick, size));
        }
    }

    fn evict_one(&mut self) {
        if let Some((&key, &victim)) = self.order.iter().next() {
            self.order.remove(&key);
            if let Some((_, _, size)) = self.entries.remove(&victim) {
                self.used -= size;
                self.stats.evictions += 1;
            }
        }
    }
}

impl Cache for LfuCache {
    fn get(&mut self, id: ContentId) -> bool {
        self.stats.gets += 1;
        if self.entries.contains_key(&id) {
            self.bump(id);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn contains(&self, id: ContentId) -> bool {
        self.entries.contains_key(&id)
    }

    fn insert(&mut self, id: ContentId, size_bytes: u64) -> bool {
        if size_bytes > self.capacity {
            return false;
        }
        if self.entries.contains_key(&id) {
            self.bump(id);
            return true;
        }
        while self.used + size_bytes > self.capacity {
            self.evict_one();
        }
        self.tick += 1;
        self.entries.insert(id, (1, self.tick, size_bytes));
        self.order.insert((1, self.tick), id);
        self.used += size_bytes;
        self.stats.inserts += 1;
        true
    }

    fn remove(&mut self, id: ContentId) -> bool {
        if let Some((freq, tick, size)) = self.entries.remove(&id) {
            self.order.remove(&(freq, tick));
            self.used -= size;
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.order.clear();
        self.used = 0;
    }
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// First-in-first-out eviction — the baseline policy (and a reasonable model
/// for flash-crowd-filled satellite caches where metadata updates cost
/// power).
#[derive(Debug, Clone)]
pub struct FifoCache {
    capacity: u64,
    used: u64,
    entries: HashMap<ContentId, u64>,
    queue: VecDeque<ContentId>,
    stats: CacheStats,
}

impl FifoCache {
    /// A new FIFO cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        FifoCache {
            capacity: capacity_bytes,
            used: 0,
            entries: HashMap::new(),
            queue: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    fn evict_one(&mut self) {
        while let Some(victim) = self.queue.pop_front() {
            if let Some(size) = self.entries.remove(&victim) {
                self.used -= size;
                self.stats.evictions += 1;
                return;
            }
            // Stale queue entry for an object already removed: skip.
        }
    }
}

impl Cache for FifoCache {
    fn get(&mut self, id: ContentId) -> bool {
        self.stats.gets += 1;
        if self.entries.contains_key(&id) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn contains(&self, id: ContentId) -> bool {
        self.entries.contains_key(&id)
    }

    fn insert(&mut self, id: ContentId, size_bytes: u64) -> bool {
        if size_bytes > self.capacity {
            return false;
        }
        if self.entries.contains_key(&id) {
            return true; // FIFO: re-insert does not change position
        }
        while self.used + size_bytes > self.capacity {
            self.evict_one();
        }
        self.entries.insert(id, size_bytes);
        self.queue.push_back(id);
        self.used += size_bytes;
        self.stats.inserts += 1;
        true
    }

    fn remove(&mut self, id: ContentId) -> bool {
        if let Some(size) = self.entries.remove(&id) {
            self.used -= size;
            self.stats.invalidations += 1;
            true // stale queue entry cleaned lazily by evict_one
        } else {
            false
        }
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.queue.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContentId {
        ContentId(n)
    }

    fn exercise_common(cache: &mut dyn Cache) {
        assert!(cache.is_empty());
        assert!(cache.insert(id(1), 100));
        assert!(cache.insert(id(2), 200));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.used_bytes(), 300);
        assert!(cache.get(id(1)));
        assert!(!cache.get(id(99)));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.remove(id(1)));
        assert!(!cache.remove(id(1)));
        assert_eq!(cache.used_bytes(), 200);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        // Counters survive clear.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn common_behaviour_all_policies() {
        exercise_common(&mut LruCache::new(1000));
        exercise_common(&mut LfuCache::new(1000));
        exercise_common(&mut FifoCache::new(1000));
    }

    #[test]
    fn oversized_object_rejected_everywhere() {
        for cache in [
            &mut LruCache::new(100) as &mut dyn Cache,
            &mut LfuCache::new(100),
            &mut FifoCache::new(100),
        ] {
            assert!(!cache.insert(id(1), 101));
            assert!(cache.is_empty());
            assert!(cache.insert(id(2), 100));
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(300);
        c.insert(id(1), 100);
        c.insert(id(2), 100);
        c.insert(id(3), 100);
        assert!(c.get(id(1))); // 1 becomes most recent; 2 is now LRU
        c.insert(id(4), 100);
        assert!(!c.contains(id(2)), "2 should be evicted");
        assert!(c.contains(id(1)) && c.contains(id(3)) && c.contains(id(4)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_multi_eviction_for_large_insert() {
        let mut c = LruCache::new(300);
        c.insert(id(1), 100);
        c.insert(id(2), 100);
        c.insert(id(3), 100);
        c.insert(id(4), 250); // must evict 1 and 2 and 3
        assert_eq!(c.len(), 1);
        assert!(c.contains(id(4)));
        assert_eq!(c.stats().evictions, 3);
    }

    #[test]
    fn lru_reinsert_refreshes() {
        let mut c = LruCache::new(200);
        c.insert(id(1), 100);
        c.insert(id(2), 100);
        c.insert(id(1), 100); // refresh 1; LRU is now 2
        c.insert(id(3), 100);
        assert!(!c.contains(id(2)));
        assert!(c.contains(id(1)));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = LfuCache::new(300);
        c.insert(id(1), 100);
        c.insert(id(2), 100);
        c.insert(id(3), 100);
        c.get(id(1));
        c.get(id(1));
        c.get(id(3));
        c.insert(id(4), 100); // 2 has lowest frequency
        assert!(!c.contains(id(2)));
        assert!(c.contains(id(1)) && c.contains(id(3)) && c.contains(id(4)));
    }

    #[test]
    fn lfu_ties_break_by_recency() {
        let mut c = LfuCache::new(200);
        c.insert(id(1), 100);
        c.insert(id(2), 100);
        // Both frequency 1; id 1 is older.
        c.insert(id(3), 100);
        assert!(!c.contains(id(1)), "older of the tied pair evicts first");
        assert!(c.contains(id(2)));
    }

    #[test]
    fn fifo_evicts_in_arrival_order_regardless_of_use() {
        let mut c = FifoCache::new(300);
        c.insert(id(1), 100);
        c.insert(id(2), 100);
        c.insert(id(3), 100);
        c.get(id(1)); // heavy use does not save it
        c.get(id(1));
        c.insert(id(4), 100);
        assert!(!c.contains(id(1)));
        assert!(c.contains(id(2)));
    }

    #[test]
    fn fifo_remove_then_fill_handles_stale_queue() {
        let mut c = FifoCache::new(300);
        c.insert(id(1), 100);
        c.insert(id(2), 100);
        c.remove(id(1));
        c.insert(id(3), 100);
        c.insert(id(4), 100);
        // Capacity 300 holds 2,3,4; the stale queue entry for 1 must not
        // break eviction accounting.
        c.insert(id(5), 100);
        assert!(!c.contains(id(2)));
        assert_eq!(c.used_bytes(), 300);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn hit_ratio_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn used_never_exceeds_capacity_under_churn() {
        let mut rng = spacecdn_geo::DetRng::new(11, "churn");
        for cache in [
            &mut LruCache::new(5_000) as &mut dyn Cache,
            &mut LfuCache::new(5_000),
            &mut FifoCache::new(5_000),
        ] {
            for _ in 0..2000 {
                let oid = id(rng.index(200) as u64);
                if rng.chance(0.5) {
                    cache.insert(oid, 100 + rng.index(900) as u64);
                } else {
                    cache.get(oid);
                }
                assert!(cache.used_bytes() <= cache.capacity_bytes());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Segmented LRU
// ---------------------------------------------------------------------------

/// Segmented LRU: a probation segment absorbs one-hit wonders, a protected
/// segment keeps proven-popular objects.
///
/// New objects enter *probation*; a hit promotes them to *protected*
/// (demoting that segment's LRU victim back to probation when full). Scan
/// traffic — each object touched once — churns only the probation segment,
/// which is exactly the protection a satellite cache wants against
/// pull-through pollution (cf. the bubble experiments).
#[derive(Debug, Clone)]
pub struct SlruCache {
    probation: LruCache,
    protected: LruCache,
    stats: CacheStats,
}

impl SlruCache {
    /// Build with a total byte capacity, split `protected_fraction` /
    /// remainder between the segments.
    ///
    /// # Panics
    /// Panics unless `0 < protected_fraction < 1`.
    pub fn new(capacity_bytes: u64, protected_fraction: f64) -> Self {
        assert!(
            protected_fraction > 0.0 && protected_fraction < 1.0,
            "protected fraction must be in (0, 1)"
        );
        let protected = (capacity_bytes as f64 * protected_fraction) as u64;
        SlruCache {
            probation: LruCache::new(capacity_bytes - protected),
            protected: LruCache::new(protected),
            stats: CacheStats::default(),
        }
    }

    /// Byte size of the protected segment.
    pub fn protected_bytes(&self) -> u64 {
        self.protected.capacity_bytes()
    }

    fn promote(&mut self, id: ContentId) {
        // Move from probation to protected; overflow falls back to
        // probation as fresh entries (second chance).
        let Some(size) = self.probation.size_of(id) else {
            return;
        };
        self.probation.remove(id);
        // Capture protected victims before they are evicted for good.
        while self.protected.used_bytes() + size > self.protected.capacity_bytes() {
            let Some((victim, vsize)) = self.protected.lru_entry() else {
                break;
            };
            self.protected.remove(victim);
            self.probation.insert(victim, vsize);
        }
        if !self.protected.insert(id, size) {
            // Larger than the whole protected segment: keep it in probation.
            self.probation.insert(id, size);
        }
    }
}

impl LruCache {
    /// Size of a stored object, if present (support for segment promotion).
    pub fn size_of(&self, id: ContentId) -> Option<u64> {
        self.entries.get(&id).map(|&(_, size)| size)
    }

    /// The least-recently-used entry, if any.
    pub fn lru_entry(&self) -> Option<(ContentId, u64)> {
        self.order
            .iter()
            .next()
            .map(|(_, &id)| (id, self.entries[&id].1))
    }
}

impl Cache for SlruCache {
    fn get(&mut self, id: ContentId) -> bool {
        self.stats.gets += 1;
        if self.protected.contains(id) {
            self.protected.get(id);
            self.stats.hits += 1;
            true
        } else if self.probation.contains(id) {
            self.stats.hits += 1;
            self.promote(id);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn contains(&self, id: ContentId) -> bool {
        self.probation.contains(id) || self.protected.contains(id)
    }

    fn insert(&mut self, id: ContentId, size_bytes: u64) -> bool {
        if self.contains(id) {
            return true;
        }
        if size_bytes > self.probation.capacity_bytes() {
            // Admission through probation only; oversized objects are
            // rejected like any over-capacity insert.
            return false;
        }
        let admitted = self.probation.insert(id, size_bytes);
        if admitted {
            self.stats.inserts += 1;
        }
        admitted
    }

    fn remove(&mut self, id: ContentId) -> bool {
        if self.probation.remove(id) || self.protected.remove(id) {
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn used_bytes(&self) -> u64 {
        self.probation.used_bytes() + self.protected.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.probation.capacity_bytes() + self.protected.capacity_bytes()
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    fn stats(&self) -> CacheStats {
        // Lookups, inserts and invalidations are counted at this level
        // (segment-internal promotion/demotion churn must not leak into the
        // books); evictions happen inside the segments and are aggregated.
        CacheStats {
            hits: self.stats.hits,
            misses: self.stats.misses,
            gets: self.stats.gets,
            inserts: self.stats.inserts,
            evictions: self.probation.stats().evictions + self.protected.stats().evictions,
            expirations: 0,
            invalidations: self.stats.invalidations,
        }
    }

    fn clear(&mut self) {
        self.stats.invalidations += self.len() as u64;
        self.probation.clear();
        self.protected.clear();
    }
}

#[cfg(test)]
mod slru_tests {
    use super::*;

    fn id(n: u64) -> ContentId {
        ContentId(n)
    }

    #[test]
    fn one_hit_wonders_stay_in_probation() {
        let mut c = SlruCache::new(1000, 0.5);
        c.insert(id(1), 100);
        assert!(c.contains(id(1)));
        // Never read again: a scan of new objects evicts it from probation
        // without touching anything protected.
        c.insert(id(2), 100);
        c.get(id(2)); // promote 2
        for n in 10..20 {
            c.insert(id(n), 100);
        }
        assert!(!c.contains(id(1)), "one-hit wonder should be gone");
        assert!(c.contains(id(2)), "promoted object survives the scan");
    }

    #[test]
    fn promotion_on_hit() {
        let mut c = SlruCache::new(1000, 0.5);
        c.insert(id(1), 100);
        assert!(c.get(id(1)));
        // Now in protected: fill probation and it must survive.
        for n in 2..10 {
            c.insert(id(n), 100);
        }
        assert!(c.contains(id(1)));
        let s = c.stats();
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn protected_overflow_demotes_not_drops() {
        let mut c = SlruCache::new(600, 0.5); // 300 protected
        for n in 1..=3 {
            c.insert(id(n), 100);
            c.get(id(n)); // all promoted; protected now full
        }
        // Promote a fourth: protected LRU (1) must demote to probation,
        // not vanish.
        c.insert(id(4), 100);
        c.get(id(4));
        assert!(c.contains(id(1)), "demoted, not dropped");
        assert!(c.contains(id(4)));
    }

    #[test]
    fn scan_resistance_beats_plain_lru() {
        // Hot set of 3 objects + a long scan: SLRU keeps the hot set, LRU
        // loses it.
        let hot: Vec<ContentId> = (0..3).map(id).collect();
        let mut slru = SlruCache::new(1000, 0.5);
        let mut lru = LruCache::new(1000);
        for &h in &hot {
            slru.insert(h, 150);
            slru.get(h);
            lru.insert(h, 150);
            lru.get(h);
        }
        for n in 100..112 {
            slru.insert(id(n), 150);
            lru.insert(id(n), 150);
        }
        let slru_kept = hot.iter().filter(|&&h| slru.contains(h)).count();
        let lru_kept = hot.iter().filter(|&&h| lru.contains(h)).count();
        assert!(slru_kept > lru_kept, "slru {slru_kept} vs lru {lru_kept}");
        assert_eq!(slru_kept, 3);
    }

    #[test]
    fn common_trait_behaviour() {
        let mut c = SlruCache::new(1000, 0.3);
        assert!(c.is_empty());
        assert!(c.insert(id(1), 100));
        assert!(c.insert(id(1), 100), "re-insert is a refresh");
        assert_eq!(c.len(), 1);
        assert!(c.remove(id(1)));
        assert!(!c.remove(id(1)));
        assert!(!c.insert(id(2), 800), "larger than probation segment");
        c.insert(id(3), 100);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity_bytes(), 1000);
    }

    #[test]
    #[should_panic(expected = "protected fraction")]
    fn bad_fraction_panics() {
        let _ = SlruCache::new(100, 1.0);
    }
}
