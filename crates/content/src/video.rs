//! DASH-style video objects and stripes.
//!
//! §4: "a video object can be striped (correlating to a collection of DASH
//! segments) such that the first stripe of n minutes is cached on the first
//! satellite if it will be visible to the user for the first n minutes of
//! playback; the next few stripes can be located on the second satellite…"
//!
//! A [`VideoObject`] is an ordered list of equal-duration segments; a
//! *stripe* is the contiguous group of segments covering one satellite's
//! serving window. The striping *planner* (which satellites get which
//! stripes) lives in `spacecdn-core`; this module owns the content shape.

use crate::catalog::ContentId;
use serde::{Deserialize, Serialize};
use spacecdn_geo::SimDuration;

/// A video as an ordered list of DASH segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoObject {
    /// Identifier of the video as a whole.
    pub id: ContentId,
    /// Segment content ids, playback order.
    pub segments: Vec<ContentId>,
    /// Wall-clock playback duration of one segment.
    pub segment_duration: SimDuration,
    /// Size of each segment in bytes (constant bitrate assumed).
    pub segment_bytes: u64,
}

impl VideoObject {
    /// Build a video of `total` segments with ids starting at `first_seg`.
    pub fn new(
        id: ContentId,
        first_seg: u64,
        total: usize,
        segment_duration: SimDuration,
        segment_bytes: u64,
    ) -> Self {
        VideoObject {
            id,
            segments: (0..total as u64)
                .map(|i| ContentId(first_seg + i))
                .collect(),
            segment_duration,
            segment_bytes,
        }
    }

    /// Total playback duration.
    pub fn duration(&self) -> SimDuration {
        self.segment_duration.mul(self.segments.len() as u64)
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.segment_bytes * self.segments.len() as u64
    }

    /// Split the segment list into stripes of `stripe_duration` each (the
    /// last stripe may be shorter). Returns the segment-id slices in order.
    ///
    /// # Panics
    /// Panics if `stripe_duration` is shorter than one segment.
    pub fn stripes(&self, stripe_duration: SimDuration) -> Vec<&[ContentId]> {
        assert!(
            stripe_duration >= self.segment_duration,
            "stripe must hold at least one segment"
        );
        let per_stripe = (stripe_duration.0 / self.segment_duration.0).max(1) as usize;
        self.segments.chunks(per_stripe).collect()
    }

    /// The stripe index playing at `elapsed` time into the video.
    pub fn stripe_at(&self, stripe_duration: SimDuration, elapsed: SimDuration) -> usize {
        let per_stripe = (stripe_duration.0 / self.segment_duration.0).max(1);
        let seg = (elapsed.0 / self.segment_duration.0.max(1)) as usize;
        (seg as u64 / per_stripe) as usize
    }
}

/// Inputs to the striping planner in `spacecdn-core` (collected here so the
/// planner's API is expressible without circular dependencies).
#[derive(Debug, Clone)]
pub struct StripePlanInput {
    /// The video to stripe.
    pub video: VideoObject,
    /// Playback start time offset from the simulation epoch, seconds.
    pub start_secs: u64,
    /// Serving window per satellite (≈ the visibility window).
    pub window: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hour_video() -> VideoObject {
        // 2 h of 4-second segments: 1800 segments. (A 1080p30 stream at
        // ~5 Mbps is ~2.5 MB per segment — the §5 economics numbers.)
        VideoObject::new(
            ContentId(9000),
            10_000,
            1800,
            SimDuration::from_secs(4),
            2_500_000,
        )
    }

    #[test]
    fn duration_and_size() {
        let v = two_hour_video();
        assert_eq!(v.duration(), SimDuration::from_secs(7200));
        assert_eq!(v.total_bytes(), 1800 * 2_500_000);
    }

    #[test]
    fn stripes_cover_all_segments_in_order() {
        let v = two_hour_video();
        let stripes = v.stripes(SimDuration::from_mins(5));
        // 5 min / 4 s = 75 segments per stripe; 1800/75 = 24 stripes.
        assert_eq!(stripes.len(), 24);
        let flat: Vec<ContentId> = stripes.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(flat, v.segments);
    }

    #[test]
    fn ragged_final_stripe() {
        let v = VideoObject::new(ContentId(1), 0, 10, SimDuration::from_secs(4), 100);
        let stripes = v.stripes(SimDuration::from_secs(12)); // 3 segments each
        assert_eq!(stripes.len(), 4);
        assert_eq!(stripes[3].len(), 1);
    }

    #[test]
    fn stripe_at_maps_playback_position() {
        let v = two_hour_video();
        let d = SimDuration::from_mins(5);
        assert_eq!(v.stripe_at(d, SimDuration::ZERO), 0);
        assert_eq!(v.stripe_at(d, SimDuration::from_secs(299)), 0);
        assert_eq!(v.stripe_at(d, SimDuration::from_secs(300)), 1);
        assert_eq!(v.stripe_at(d, SimDuration::from_mins(61)), 12);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn stripe_shorter_than_segment_panics() {
        let v = two_hour_video();
        let _ = v.stripes(SimDuration::from_secs(1));
    }
}
