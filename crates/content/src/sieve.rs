//! SIEVE eviction as a flat-SoA cache fleet.
//!
//! SIEVE (NSDI'24) is a FIFO queue with one *visited* bit per entry and a
//! *hand* that sweeps from the queue tail (oldest) toward the head: a hit
//! just sets the visited bit (no list movement — cheap, scan-resistant),
//! and eviction walks the hand over visited entries, clearing each bit and
//! retaining the entry, until it finds an unvisited one to evict. Retained
//! entries get exactly one "second chance" per sweep: once the hand clears
//! a bit it moves strictly headward, so it cannot probe the same retained
//! entry again until the sweep wraps — a property pinned by the proptest
//! below.
//!
//! Fleet shape, TTL handling and the unified [`CacheStats`] taxonomy match
//! [`crate::fleet::FleetCache`]; entries live in the shared
//! `EntryArena`. Victim identity is reported exactly through
//! `insert_collect`/`clear_sat` so the traffic engine's holder lists stay
//! eagerly correct.

use crate::arena::{meta_set, EntryArena, List, NIL};
use crate::cache::CacheStats;
use crate::catalog::ContentId;
use crate::policy::CachePolicy;
use spacecdn_geo::{SimDuration, SimTime};

/// A whole constellation's SIEVE caches in flat parallel arrays.
pub struct SieveFleet {
    sat_capacity: u64,
    ttl: SimDuration,
    now: SimTime,
    // Per-satellite state, indexed by satellite slot.
    queue: Vec<List>,
    /// Per-satellite hand: next sweep position, `NIL` = restart from tail.
    hand: Vec<u32>,
    used: Vec<u64>,
    count: Vec<u32>,
    // Entry arena + per-entry policy metadata.
    arena: EntryArena,
    visited: Vec<bool>,
    stats: CacheStats,
    /// Entries probed (visited bit cleared) during the most recent victim
    /// selection, for the sweep proptest.
    probe_trail: Vec<u32>,
}

impl SieveFleet {
    /// A fleet of `sats` empty SIEVE caches.
    ///
    /// # Panics
    /// Panics on a zero TTL — that cache could never serve anything.
    pub fn new(sats: usize, capacity_bytes: u64, ttl: SimDuration) -> Self {
        assert!(ttl > SimDuration::ZERO, "TTL must be positive");
        SieveFleet {
            sat_capacity: capacity_bytes,
            ttl,
            now: SimTime::EPOCH,
            queue: vec![List::EMPTY; sats],
            hand: vec![NIL; sats],
            used: vec![0; sats],
            count: vec![0; sats],
            arena: EntryArena::new(),
            visited: Vec::new(),
            stats: CacheStats::default(),
            probe_trail: Vec::new(),
        }
    }

    #[inline]
    fn lapsed(&self, e: u32) -> bool {
        self.now >= self.arena.expiry[e as usize]
    }

    /// Detach entry `e` entirely, stepping the hand off it first.
    fn release(&mut self, e: u32) {
        let i = e as usize;
        let sat = self.arena.sat[i] as usize;
        if self.hand[sat] == e {
            // The hand must keep sweeping headward from the survivor next
            // to the departing entry.
            self.hand[sat] = self.arena.prev[i];
        }
        let mut list = self.queue[sat];
        self.arena.unlink(&mut list, e);
        self.queue[sat] = list;
        self.used[sat] -= self.arena.size[i];
        self.count[sat] -= 1;
        self.arena.release(e);
    }

    /// Select the eviction victim on `sat`: sweep the hand headward over
    /// visited entries (clearing their bit — the second chance), stopping
    /// at the first unvisited entry. The caller releases the victim.
    fn select_victim(&mut self, sat: u32) -> u32 {
        self.probe_trail.clear();
        let s = sat as usize;
        let mut h = self.hand[s];
        if h == NIL {
            h = self.queue[s].tail;
        }
        debug_assert_ne!(h, NIL, "victim selection on an empty queue");
        while self.visited[h as usize] {
            self.visited[h as usize] = false;
            self.probe_trail.push(h);
            h = self.arena.prev[h as usize];
            if h == NIL {
                h = self.queue[s].tail;
            }
        }
        // Advance the hand past the victim before it disappears.
        self.hand[s] = self.arena.prev[h as usize];
        h
    }

    #[cfg(test)]
    fn last_probe_trail(&self) -> &[u32] {
        &self.probe_trail
    }
}

impl CachePolicy for SieveFleet {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn sat_count(&self) -> usize {
        self.queue.len()
    }

    fn capacity_bytes_per_sat(&self) -> u64 {
        self.sat_capacity
    }

    fn ttl(&self) -> SimDuration {
        self.ttl
    }

    fn len_of(&self, sat: u32) -> usize {
        self.count[sat as usize] as usize
    }

    fn used_bytes_of(&self, sat: u32) -> u64 {
        self.used[sat as usize]
    }

    fn len(&self) -> usize {
        self.count.iter().map(|&n| n as usize).sum()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn get(&mut self, sat: u32, content: ContentId) -> bool {
        self.stats.gets += 1;
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                false
            }
            Some(e) => {
                self.visited[e as usize] = true;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    fn contains(&self, sat: u32, content: ContentId) -> bool {
        self.arena
            .lookup(sat, content)
            .is_some_and(|e| !self.lapsed(e))
    }

    fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) if self.lapsed(e) => {
                self.release(e);
                self.stats.expirations += 1;
                true
            }
            _ => false,
        }
    }

    fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool {
        if let Some(e) = self.arena.lookup(sat, content) {
            if self.lapsed(e) {
                self.release(e);
                self.stats.expirations += 1;
            }
        }
        if size > self.sat_capacity {
            // The oversize check precedes the refresh path (FleetCache
            // convention): an oversized re-insert rejects without refresh.
            return false;
        }
        if let Some(e) = self.arena.lookup(sat, content) {
            // Refresh: SIEVE never moves entries; mark visited like a hit.
            self.visited[e as usize] = true;
            self.arena.expiry[e as usize] = self.now + self.ttl;
            return true;
        }
        while self.used[sat as usize] + size > self.sat_capacity {
            let victim = self.select_victim(sat);
            evicted.push(self.arena.content[victim as usize]);
            self.release(victim);
            self.stats.evictions += 1;
        }
        let e = self.arena.alloc(sat, content, size, self.now + self.ttl);
        meta_set(&mut self.visited, e, false);
        let mut list = self.queue[sat as usize];
        self.arena.push_front(&mut list, e);
        self.queue[sat as usize] = list;
        self.used[sat as usize] += size;
        self.count[sat as usize] += 1;
        self.stats.inserts += 1;
        true
    }

    fn remove(&mut self, sat: u32, content: ContentId) -> bool {
        match self.arena.lookup(sat, content) {
            Some(e) => {
                self.release(e);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64 {
        let mut n = 0;
        while self.queue[sat as usize].head != NIL {
            let e = self.queue[sat as usize].head;
            dropped.push(self.arena.content[e as usize]);
            self.release(e);
            n += 1;
        }
        self.hand[sat as usize] = NIL;
        self.stats.invalidations += n;
        n
    }

    fn occupied_into(&self, out: &mut Vec<(u32, u32, u64)>) {
        for (s, &n) in self.count.iter().enumerate() {
            if n > 0 {
                out.push((s as u32, n, self.used[s]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn id(n: u64) -> ContentId {
        ContentId(n)
    }

    fn fleet(cap: u64) -> SieveFleet {
        SieveFleet::new(2, cap, SimDuration::from_secs(60))
    }

    #[test]
    fn unvisited_entries_evict_in_fifo_order() {
        let mut f = fleet(300);
        f.insert_collect(0, id(1), 100, &mut Vec::new());
        f.insert_collect(0, id(2), 100, &mut Vec::new());
        f.insert_collect(0, id(3), 100, &mut Vec::new());
        let mut ev = Vec::new();
        f.insert_collect(0, id(4), 100, &mut ev);
        assert_eq!(ev, vec![id(1)], "oldest unvisited entry goes first");
    }

    #[test]
    fn visited_entries_get_a_second_chance() {
        let mut f = fleet(300);
        f.insert_collect(0, id(1), 100, &mut Vec::new());
        f.insert_collect(0, id(2), 100, &mut Vec::new());
        f.insert_collect(0, id(3), 100, &mut Vec::new());
        assert!(f.get(0, id(1))); // visited: survives one sweep
        let mut ev = Vec::new();
        f.insert_collect(0, id(4), 100, &mut ev);
        assert_eq!(ev, vec![id(2)], "hand skips visited 1, evicts 2");
        assert!(f.contains(0, id(1)));
        // The hand rests headward of the evicted slot (on 3) and continues
        // from there: 3 is unvisited, so it goes next — 1's consumed bit
        // does not get re-examined until the sweep wraps.
        let mut ev = Vec::new();
        f.insert_collect(0, id(5), 100, &mut ev);
        assert_eq!(ev, vec![id(3)]);
        assert!(f.contains(0, id(1)), "1 still riding its second chance");
    }

    #[test]
    fn hand_survives_removal_of_its_entry() {
        let mut f = fleet(300);
        f.insert_collect(0, id(1), 100, &mut Vec::new());
        f.insert_collect(0, id(2), 100, &mut Vec::new());
        f.insert_collect(0, id(3), 100, &mut Vec::new());
        f.get(0, id(1));
        f.get(0, id(2));
        // Evicting for 4 sweeps hand over 1 and 2 (clearing bits), evicts 3?
        // No: tail is 1 (oldest). Sweep clears 1, moves to 2, clears 2,
        // moves to 3, 3 unvisited → victim. Hand now at 3's prev... = NIL
        // (3 was head... actually head is 3). After 3 evicts, hand = prev of
        // 3 headward = NIL → next sweep restarts at tail.
        let mut ev = Vec::new();
        f.insert_collect(0, id(4), 100, &mut ev);
        assert_eq!(ev, vec![id(3)]);
        // Remove the entry the hand would examine next; accounting and
        // later evictions must stay exact.
        assert!(f.remove(0, id(1)));
        let mut ev = Vec::new();
        f.insert_collect(0, id(5), 100, &mut ev);
        f.insert_collect(0, id(6), 100, &mut ev);
        assert_eq!(ev, vec![id(2)], "cleared bit on 2 was consumed");
        assert_eq!(f.len_of(0), 3);
    }

    #[test]
    fn arena_recycles_under_churn() {
        let mut f = fleet(200);
        for round in 0..50u64 {
            f.insert_collect(0, id(round), 100, &mut Vec::new());
            f.insert_collect(0, id(round + 1000), 100, &mut Vec::new());
        }
        assert!(f.arena.slots() <= 3, "arena grew to {}", f.arena.slots());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The SIEVE second-chance contract: during one victim selection
        /// the hand never probes (clears) the same retained entry twice,
        /// and never probes more entries than were live at sweep start.
        #[test]
        fn hand_never_probes_a_retained_entry_twice_per_sweep(
            ops in prop::collection::vec((0..30u64, 0..2u8), 1..300),
        ) {
            let mut f = SieveFleet::new(1, 500, SimDuration::from_secs(600));
            for (o, flag) in ops {
                if flag == 1 {
                    f.get(0, id(o));
                } else {
                    let live_before = f.len_of(0);
                    let mut ev = Vec::new();
                    f.insert_collect(0, id(o), 100, &mut ev);
                    let trail = f.last_probe_trail();
                    let mut seen = std::collections::HashSet::new();
                    for &e in trail {
                        prop_assert!(seen.insert(e), "hand probed slot {e} twice");
                    }
                    prop_assert!(
                        trail.len() <= live_before,
                        "probed {} entries with only {live_before} live",
                        trail.len()
                    );
                }
            }
        }
    }
}
