//! Differential cache oracle: every fleet policy pinned
//! decision-for-decision against a textbook reference.
//!
//! The flat-SoA fleets in `spacecdn-content` (LRU+TTL, SIEVE, S3-FIFO,
//! W-TinyLFU) buy their speed with intrusive lists, slot arenas and shared
//! sketches — exactly the machinery that can drift subtly from the policy
//! each one claims to implement. This suite replays randomized traces
//! through each fleet *and* a deliberately naive reference built from
//! `Vec`/`VecDeque`/linear scans, and asserts that every observable agrees
//! at every step:
//!
//! - hit/miss verdicts from `get`, freshness verdicts from
//!   `is_fresh`/`expire_if_due`, admission verdicts from `insert_collect`,
//! - **victim identity and order** in the `evicted`/`dropped` vectors (the
//!   traffic engine prunes holder lists eagerly, so a wrong or missing
//!   victim is an engine-state corruption, not a cosmetic bug),
//! - per-satellite `len_of`/`used_bytes_of`, `contains`, and the full
//!   [`CacheStats`] under the unified evicted/expired/invalidated taxonomy.
//!
//! Traces sweep capacity 1..=64 bytes (forcing degenerate shapes like a
//! zero-byte TinyLFU main region), TTL expiry, duty-cycle `clear_sat`, and
//! explicit invalidation, driven by the repo's [`DetRng`] so failures are
//! reproducible from the printed seed. Each policy runs 130 traces of
//! 80..=200 operations (520 traces across the suite), and the suite
//! self-asserts that the interesting machinery actually fired: evictions,
//! expirations, S3-FIFO ghost readmissions, TinyLFU admission rejections,
//! and segment promotions all have to occur, so a generator regression
//! cannot quietly turn the oracle into a vacuous pass.

use spacecdn_content::{CacheStats, ContentId, PolicyFleet, PolicyKind};
use spacecdn_geo::{DetRng, SimDuration, SimTime};
use std::collections::VecDeque;

const TRACES_PER_POLICY: u64 = 130;

// ---------------------------------------------------------------------------
// Reference entry + coverage bookkeeping
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RefEntry {
    content: ContentId,
    size: u64,
    expiry: SimTime,
    /// SIEVE visited bit / S3-FIFO 2-bit frequency (unused elsewhere).
    meta: u8,
}

/// Events the suite requires to have happened at least once per policy, so
/// the trace generator cannot silently stop exercising the machinery.
#[derive(Debug, Default)]
struct Coverage {
    evictions: u64,
    expirations: u64,
    invalidations: u64,
    hits: u64,
    oversize_rejects: u64,
    clears: u64,
    /// S3-FIFO: ghost hits routing a readmission straight to main.
    ghost_hits: u64,
    /// S3-FIFO: small-queue entries promoted to main at eviction time.
    small_promotions: u64,
    /// TinyLFU: window candidates rejected by the admission filter.
    admission_rejections: u64,
    /// TinyLFU: candidates admitted by displacing a colder victim.
    admission_wins: u64,
    /// TinyLFU: probation entries promoted to protected on a hit.
    protected_promotions: u64,
}

// ---------------------------------------------------------------------------
// Naive count-min sketch (mirrors the spec in `spacecdn-content/src/sketch.rs`)
// ---------------------------------------------------------------------------

/// Reference TinyLFU sketch: per-row `Vec<u8>` counters and a transcription
/// of the documented hash spec. Any drift in the production sketch (rows,
/// seeds, finalizer, width rule, halving rule) changes admission decisions
/// and breaks the differential run.
struct RefSketch {
    rows: Vec<Vec<u8>>,
    width: u64,
    additions: u64,
    sample_size: u64,
}

const REF_SEEDS: [u64; 4] = [
    0x71d6_7fff_eda6_0001,
    0xfff7_eee0_0000_0003,
    0x8ebf_d028_c43a_0005,
    0x355c_ff4d_7e4f_0007,
];

impl RefSketch {
    fn with_entries(entries: usize) -> Self {
        let width = entries.next_power_of_two().max(64) as u64;
        RefSketch {
            rows: vec![vec![0u8; width as usize]; 4],
            width,
            additions: 0,
            sample_size: 10 * width,
        }
    }

    fn slot(&self, key: u64, row: usize) -> usize {
        let mut h = key.wrapping_add(REF_SEEDS[row]);
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 32;
        (h % self.width) as usize
    }

    fn increment(&mut self, key: u64) {
        for row in 0..4 {
            let s = self.slot(key, row);
            if self.rows[row][s] < 15 {
                self.rows[row][s] += 1;
            }
        }
        self.additions += 1;
        if self.additions >= self.sample_size {
            for row in &mut self.rows {
                for c in row.iter_mut() {
                    *c >>= 1;
                }
            }
            self.additions /= 2;
        }
    }

    fn estimate(&self, key: u64) -> u8 {
        (0..4)
            .map(|row| self.rows[row][self.slot(key, row)])
            .min()
            .unwrap()
    }
}

fn sketch_key(sat: u32, content: ContentId) -> u64 {
    (u64::from(sat) << 40) ^ content.0
}

// ---------------------------------------------------------------------------
// The reference policies. Each satellite's queue is a `Vec<RefEntry>` with
// index 0 = list head (front) and the last index = tail (eviction end);
// every operation is a linear scan.
// ---------------------------------------------------------------------------

struct RefFleet {
    kind: PolicyKind,
    cap: u64,
    ttl: SimDuration,
    now: SimTime,
    stats: CacheStats,
    /// LRU / SIEVE: the single per-sat queue. S3-FIFO: the small queue.
    /// TinyLFU: the window.
    q1: Vec<Vec<RefEntry>>,
    /// S3-FIFO: the main queue. TinyLFU: probation.
    q2: Vec<Vec<RefEntry>>,
    /// TinyLFU: protected.
    q3: Vec<Vec<RefEntry>>,
    /// SIEVE: per-sat hand (content id; None = restart from the tail).
    hand: Vec<Option<ContentId>>,
    /// S3-FIFO: per-sat ghost FIFO of `(content, size)`, front = oldest.
    ghost: Vec<VecDeque<(ContentId, u64)>>,
    sketch: RefSketch,
    cov: Coverage,
}

impl RefFleet {
    fn new(kind: PolicyKind, sats: usize, cap: u64, ttl: SimDuration) -> Self {
        RefFleet {
            kind,
            cap,
            ttl,
            now: SimTime::EPOCH,
            stats: CacheStats::default(),
            q1: vec![Vec::new(); sats],
            q2: vec![Vec::new(); sats],
            q3: vec![Vec::new(); sats],
            hand: vec![None; sats],
            ghost: vec![VecDeque::new(); sats],
            sketch: RefSketch::with_entries(sats.max(1) * 64),
            cov: Coverage::default(),
        }
    }

    // -- derived capacities -------------------------------------------------

    fn small_target(&self) -> u64 {
        (self.cap / 10).max(1)
    }

    fn window_cap(&self) -> u64 {
        (self.cap / 100).max(1)
    }

    fn main_cap(&self) -> u64 {
        self.cap.saturating_sub(self.window_cap())
    }

    fn protected_cap(&self) -> u64 {
        self.main_cap() * 4 / 5
    }

    // -- scans --------------------------------------------------------------

    fn queues(&self, sat: u32) -> [&Vec<RefEntry>; 3] {
        let s = sat as usize;
        [&self.q1[s], &self.q2[s], &self.q3[s]]
    }

    /// Which queue (0/1/2) and index holds `content` on `sat`.
    fn locate(&self, sat: u32, content: ContentId) -> Option<(usize, usize)> {
        for (qi, q) in self.queues(sat).into_iter().enumerate() {
            if let Some(i) = q.iter().position(|e| e.content == content) {
                return Some((qi, i));
            }
        }
        None
    }

    fn queue_mut(&mut self, sat: u32, qi: usize) -> &mut Vec<RefEntry> {
        let s = sat as usize;
        match qi {
            0 => &mut self.q1[s],
            1 => &mut self.q2[s],
            _ => &mut self.q3[s],
        }
    }

    fn bytes_in(q: &[RefEntry]) -> u64 {
        q.iter().map(|e| e.size).sum()
    }

    fn len_of(&self, sat: u32) -> usize {
        self.queues(sat).into_iter().map(Vec::len).sum()
    }

    fn used_bytes_of(&self, sat: u32) -> u64 {
        self.queues(sat)
            .into_iter()
            .map(|q| Self::bytes_in(q))
            .sum()
    }

    fn len(&self) -> u64 {
        (0..self.q1.len())
            .map(|s| self.len_of(s as u32) as u64)
            .sum()
    }

    fn lapsed(&self, e: &RefEntry) -> bool {
        self.now >= e.expiry
    }

    // -- departure plumbing -------------------------------------------------

    /// Detach `(qi, i)` from `sat` with SIEVE hand stepping (the hand moves
    /// to the departing entry's headward neighbour, as in the fleet).
    fn detach(&mut self, sat: u32, qi: usize, i: usize) -> RefEntry {
        if self.kind == PolicyKind::Sieve
            && self.hand[sat as usize] == Some(self.q1[sat as usize][i].content)
        {
            self.hand[sat as usize] = if i == 0 {
                None
            } else {
                Some(self.q1[sat as usize][i - 1].content)
            };
        }
        self.queue_mut(sat, qi).remove(i)
    }

    /// Purge `(sat, content)` if it is present and its TTL has lapsed,
    /// booking an expiration. Expired entries never enter the ghost.
    fn purge_if_lapsed(&mut self, sat: u32, content: ContentId) -> bool {
        if let Some((qi, i)) = self.locate(sat, content) {
            let s = sat as usize;
            let lapsed = match qi {
                0 => self.now >= self.q1[s][i].expiry,
                1 => self.now >= self.q2[s][i].expiry,
                _ => self.now >= self.q3[s][i].expiry,
            };
            if lapsed {
                self.detach(sat, qi, i);
                self.stats.expirations += 1;
                self.cov.expirations += 1;
                return true;
            }
        }
        false
    }

    // -- SIEVE victim selection --------------------------------------------

    /// Sweep the hand headward (toward index 0) over visited entries,
    /// clearing each bit, wrapping to the tail; returns the victim index
    /// and leaves the hand on the victim's headward neighbour.
    fn sieve_select_victim(&mut self, sat: u32) -> usize {
        let s = sat as usize;
        let q = &mut self.q1[s];
        let mut pos = match self.hand[s] {
            Some(c) => q.iter().position(|e| e.content == c).expect("hand entry"),
            None => q.len() - 1,
        };
        while q[pos].meta != 0 {
            q[pos].meta = 0;
            pos = if pos == 0 { q.len() - 1 } else { pos - 1 };
        }
        self.hand[s] = if pos == 0 {
            None
        } else {
            Some(q[pos - 1].content)
        };
        pos
    }

    // -- S3-FIFO eviction ---------------------------------------------------

    fn s3_push_ghost(&mut self, sat: u32, content: ContentId, size: u64) {
        let s = sat as usize;
        self.ghost[s].push_back((content, size));
        let mut used: u64 = self.ghost[s].iter().map(|&(_, sz)| sz).sum();
        while used > self.cap {
            let (_, osize) = self.ghost[s].pop_front().expect("ghost entry");
            used -= osize;
        }
    }

    fn s3_evict_one(&mut self, sat: u32, evicted: &mut Vec<ContentId>) {
        let s = sat as usize;
        loop {
            let small_used = Self::bytes_in(&self.q1[s]);
            let from_small = !self.q1[s].is_empty()
                && (small_used > self.small_target() || self.q2[s].is_empty());
            if from_small {
                let v = self.q1[s].pop().expect("small tail");
                if v.meta > 0 {
                    // Proven in small: promote to the main head, counter reset.
                    self.cov.small_promotions += 1;
                    self.q2[s].insert(0, RefEntry { meta: 0, ..v });
                    continue;
                }
                self.s3_push_ghost(sat, v.content, v.size);
                evicted.push(v.content);
                self.stats.evictions += 1;
                self.cov.evictions += 1;
                return;
            }
            let v = self.q2[s].pop().expect("main tail");
            if v.meta > 0 {
                self.q2[s].insert(
                    0,
                    RefEntry {
                        meta: v.meta - 1,
                        ..v
                    },
                );
                continue;
            }
            evicted.push(v.content);
            self.stats.evictions += 1;
            self.cov.evictions += 1;
            return;
        }
    }

    // -- TinyLFU segment movement ------------------------------------------

    /// Hit-path movement: window/protected bump to their head; probation
    /// promotes to protected, demoting protected tails while over budget.
    fn tlfu_touch(&mut self, sat: u32, qi: usize, i: usize) {
        let s = sat as usize;
        match qi {
            0 | 2 => {
                let q = self.queue_mut(sat, qi);
                let e = q.remove(i);
                q.insert(0, e);
            }
            _ => {
                let size = self.q2[s][i].size;
                if size > self.protected_cap() {
                    let e = self.q2[s].remove(i);
                    self.q2[s].insert(0, e);
                    return;
                }
                let e = self.q2[s].remove(i);
                while Self::bytes_in(&self.q3[s]) + size > self.protected_cap() {
                    let demoted = self.q3[s].pop().expect("protected tail");
                    self.q2[s].insert(0, demoted);
                }
                self.q3[s].insert(0, e);
                self.cov.protected_promotions += 1;
            }
        }
    }

    /// Admission filter for a window-overflow candidate (already detached
    /// from the window): evict sketch-colder main victims until the
    /// candidate fits, or evict the candidate on the first tie/loss.
    fn tlfu_admit(&mut self, sat: u32, cand: RefEntry, evicted: &mut Vec<ContentId>) {
        let s = sat as usize;
        if cand.size > self.main_cap() {
            evicted.push(cand.content);
            self.stats.evictions += 1;
            self.cov.evictions += 1;
            self.cov.admission_rejections += 1;
            return;
        }
        let cand_est = self.sketch.estimate(sketch_key(sat, cand.content));
        while Self::bytes_in(&self.q2[s]) + Self::bytes_in(&self.q3[s]) + cand.size
            > self.main_cap()
        {
            let (vq, vi) = if !self.q2[s].is_empty() {
                (1, self.q2[s].len() - 1)
            } else {
                (2, self.q3[s].len() - 1)
            };
            let victim = self.queue_mut(sat, vq)[vi].clone();
            if cand_est > self.sketch.estimate(sketch_key(sat, victim.content)) {
                self.queue_mut(sat, vq).remove(vi);
                evicted.push(victim.content);
                self.stats.evictions += 1;
                self.cov.evictions += 1;
                self.cov.admission_wins += 1;
            } else {
                evicted.push(cand.content);
                self.stats.evictions += 1;
                self.cov.evictions += 1;
                self.cov.admission_rejections += 1;
                return;
            }
        }
        self.q2[s].insert(0, cand);
    }

    fn tlfu_rebalance_window(&mut self, sat: u32, evicted: &mut Vec<ContentId>) {
        let s = sat as usize;
        while Self::bytes_in(&self.q1[s]) > self.window_cap() {
            let cand = self.q1[s].pop().expect("window tail");
            self.tlfu_admit(sat, cand, evicted);
        }
    }

    // -- the mirrored operation set ----------------------------------------

    fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    fn get(&mut self, sat: u32, content: ContentId) -> bool {
        if self.kind == PolicyKind::TinyLfu {
            self.sketch.increment(sketch_key(sat, content));
        }
        self.stats.gets += 1;
        if self.purge_if_lapsed(sat, content) {
            self.stats.misses += 1;
            return false;
        }
        let Some((qi, i)) = self.locate(sat, content) else {
            self.stats.misses += 1;
            return false;
        };
        match self.kind {
            PolicyKind::LruTtl => {
                let q = self.queue_mut(sat, qi);
                let e = q.remove(i);
                q.insert(0, e);
            }
            PolicyKind::Sieve => self.queue_mut(sat, qi)[i].meta = 1,
            PolicyKind::S3Fifo => {
                let e = &mut self.queue_mut(sat, qi)[i];
                e.meta = (e.meta + 1).min(3);
            }
            PolicyKind::TinyLfu => self.tlfu_touch(sat, qi, i),
        }
        self.stats.hits += 1;
        self.cov.hits += 1;
        true
    }

    fn contains(&self, sat: u32, content: ContentId) -> bool {
        self.locate(sat, content).is_some_and(|(qi, i)| {
            let s = sat as usize;
            let e = match qi {
                0 => &self.q1[s][i],
                1 => &self.q2[s][i],
                _ => &self.q3[s][i],
            };
            !self.lapsed(e)
        })
    }

    fn is_fresh(&mut self, sat: u32, content: ContentId) -> bool {
        if self.purge_if_lapsed(sat, content) {
            return false;
        }
        self.locate(sat, content).is_some()
    }

    fn expire_if_due(&mut self, sat: u32, content: ContentId) -> bool {
        self.purge_if_lapsed(sat, content)
    }

    fn insert_collect(
        &mut self,
        sat: u32,
        content: ContentId,
        size: u64,
        evicted: &mut Vec<ContentId>,
    ) -> bool {
        if self.kind == PolicyKind::TinyLfu {
            self.sketch.increment(sketch_key(sat, content));
        }
        self.purge_if_lapsed(sat, content);
        if size > self.cap {
            self.cov.oversize_rejects += 1;
            return false;
        }
        if let Some((qi, i)) = self.locate(sat, content) {
            // Refresh: policy touch + expiry extension, original size kept.
            let expiry = self.now + self.ttl;
            match self.kind {
                PolicyKind::LruTtl => {
                    let q = self.queue_mut(sat, qi);
                    let mut e = q.remove(i);
                    e.expiry = expiry;
                    q.insert(0, e);
                }
                PolicyKind::Sieve => {
                    let e = &mut self.queue_mut(sat, qi)[i];
                    e.meta = 1;
                    e.expiry = expiry;
                }
                PolicyKind::S3Fifo => {
                    let e = &mut self.queue_mut(sat, qi)[i];
                    e.meta = (e.meta + 1).min(3);
                    e.expiry = expiry;
                }
                PolicyKind::TinyLfu => {
                    self.tlfu_touch(sat, qi, i);
                    let (qi, i) = self.locate(sat, content).expect("touched entry");
                    self.queue_mut(sat, qi)[i].expiry = expiry;
                }
            }
            return true;
        }
        let s = sat as usize;
        let entry = RefEntry {
            content,
            size,
            expiry: self.now + self.ttl,
            meta: 0,
        };
        match self.kind {
            PolicyKind::LruTtl => {
                while self.used_bytes_of(sat) + size > self.cap {
                    let v = self.q1[s].pop().expect("lru tail");
                    evicted.push(v.content);
                    self.stats.evictions += 1;
                    self.cov.evictions += 1;
                }
                self.q1[s].insert(0, entry);
            }
            PolicyKind::Sieve => {
                while self.used_bytes_of(sat) + size > self.cap {
                    let vi = self.sieve_select_victim(sat);
                    let v = self.q1[s].remove(vi);
                    evicted.push(v.content);
                    self.stats.evictions += 1;
                    self.cov.evictions += 1;
                }
                self.q1[s].insert(0, entry);
            }
            PolicyKind::S3Fifo => {
                // A ghost hit routes the readmission straight to main.
                let to_main = if let Some(i) = self.ghost[s].iter().position(|&(c, _)| c == content)
                {
                    self.ghost[s].remove(i);
                    self.cov.ghost_hits += 1;
                    true
                } else {
                    false
                };
                while self.used_bytes_of(sat) + size > self.cap {
                    self.s3_evict_one(sat, evicted);
                }
                if to_main {
                    self.q2[s].insert(0, entry);
                } else {
                    self.q1[s].insert(0, entry);
                }
            }
            PolicyKind::TinyLfu => {
                self.q1[s].insert(0, entry);
                self.stats.inserts += 1;
                self.tlfu_rebalance_window(sat, evicted);
                return true;
            }
        }
        self.stats.inserts += 1;
        true
    }

    fn remove(&mut self, sat: u32, content: ContentId) -> bool {
        match self.locate(sat, content) {
            Some((qi, i)) => {
                self.detach(sat, qi, i);
                self.stats.invalidations += 1;
                self.cov.invalidations += 1;
                true
            }
            None => false,
        }
    }

    fn clear_sat(&mut self, sat: u32, dropped: &mut Vec<ContentId>) -> u64 {
        let s = sat as usize;
        let mut n = 0;
        for qi in 0..3 {
            let drained: Vec<RefEntry> = std::mem::take(self.queue_mut(sat, qi));
            for e in drained {
                dropped.push(e.content);
                n += 1;
            }
        }
        self.hand[s] = None;
        self.ghost[s].clear();
        self.stats.invalidations += n;
        self.cov.invalidations += n;
        self.cov.clears += 1;
        n
    }
}

// ---------------------------------------------------------------------------
// Trace driver
// ---------------------------------------------------------------------------

/// Replay one randomized trace through the fleet and the reference,
/// asserting every observable after every operation.
fn run_trace(kind: PolicyKind, trace: u64, cov: &mut Coverage) {
    let mut rng = DetRng::new(trace, &format!("policy-oracle-{}", kind.name()));
    let sats = 1 + rng.index(3);
    let cap = 1 + rng.index(64) as u64;
    let ttl = SimDuration::from_secs(1 + rng.index(40) as u64);
    let universe = 1 + rng.index(24) as u64;
    let steps = 80 + rng.index(121);
    let ctx = format!("{} trace {trace} (sats {sats} cap {cap})", kind.name());

    let mut fleet = PolicyFleet::new(kind, sats, cap, ttl);
    let mut oracle = RefFleet::new(kind, sats, cap, ttl);
    let mut now_s = 0u64;

    for step in 0..steps {
        let sat = rng.index(sats) as u32;
        let content = ContentId(rng.index(universe as usize) as u64);
        let roll = rng.index(100);
        let at = format!("{ctx} step {step}");
        if roll < 40 {
            assert_eq!(
                fleet.get(sat, content),
                oracle.get(sat, content),
                "{at}: get"
            );
        } else if roll < 70 {
            // Sizes reach past small capacities so oversize rejection and
            // single-entry caches both occur.
            let size = 1 + rng.index(9) as u64;
            let mut ev_f = Vec::new();
            let mut ev_o = Vec::new();
            assert_eq!(
                fleet.insert_collect(sat, content, size, &mut ev_f),
                oracle.insert_collect(sat, content, size, &mut ev_o),
                "{at}: insert verdict"
            );
            assert_eq!(ev_f, ev_o, "{at}: victim identity/order");
        } else if roll < 78 {
            assert_eq!(
                fleet.is_fresh(sat, content),
                oracle.is_fresh(sat, content),
                "{at}: is_fresh"
            );
        } else if roll < 84 {
            assert_eq!(
                fleet.expire_if_due(sat, content),
                oracle.expire_if_due(sat, content),
                "{at}: expire_if_due"
            );
        } else if roll < 90 {
            assert_eq!(
                fleet.remove(sat, content),
                oracle.remove(sat, content),
                "{at}: remove"
            );
        } else if roll < 93 {
            let mut d_f = Vec::new();
            let mut d_o = Vec::new();
            assert_eq!(
                fleet.clear_sat(sat, &mut d_f),
                oracle.clear_sat(sat, &mut d_o),
                "{at}: clear_sat count"
            );
            assert_eq!(d_f, d_o, "{at}: clear_sat drop order");
        } else {
            now_s += 1 + rng.index(10) as u64;
            let t = SimTime::from_secs(now_s);
            fleet.set_now(t);
            oracle.set_now(t);
        }

        // Full-state agreement after every operation.
        assert_eq!(fleet.stats(), oracle.stats, "{at}: stats");
        for s in 0..sats as u32 {
            assert_eq!(fleet.len_of(s), oracle.len_of(s), "{at}: len_of({s})");
            assert_eq!(
                fleet.used_bytes_of(s),
                oracle.used_bytes_of(s),
                "{at}: used_bytes_of({s})"
            );
            assert!(fleet.used_bytes_of(s) <= cap, "{at}: over capacity");
        }
        assert_eq!(
            fleet.contains(sat, content),
            oracle.contains(sat, content),
            "{at}: contains"
        );
        // Taxonomy invariants hold at every step.
        let st = fleet.stats();
        assert_eq!(st.gets, st.hits + st.misses, "{at}: gets reconcile");
        assert_eq!(
            st.departures(),
            st.inserts - oracle.len(),
            "{at}: departures reconcile"
        );
    }

    // Fold this trace's coverage into the per-policy aggregate.
    let c = oracle.cov;
    cov.evictions += c.evictions;
    cov.expirations += c.expirations;
    cov.invalidations += c.invalidations;
    cov.hits += c.hits;
    cov.oversize_rejects += c.oversize_rejects;
    cov.clears += c.clears;
    cov.ghost_hits += c.ghost_hits;
    cov.small_promotions += c.small_promotions;
    cov.admission_rejections += c.admission_rejections;
    cov.admission_wins += c.admission_wins;
    cov.protected_promotions += c.protected_promotions;
}

fn run_policy(kind: PolicyKind) -> Coverage {
    let mut cov = Coverage::default();
    for trace in 0..TRACES_PER_POLICY {
        run_trace(kind, trace, &mut cov);
    }
    // The generator must actually exercise the shared machinery.
    assert!(cov.hits > 0, "no hits across {} traces", TRACES_PER_POLICY);
    assert!(cov.evictions > 0, "no evictions");
    assert!(cov.expirations > 0, "no TTL expirations");
    assert!(cov.invalidations > 0, "no invalidations");
    assert!(cov.oversize_rejects > 0, "no oversize rejections");
    assert!(cov.clears > 0, "no duty-cycle clears");
    cov
}

#[test]
fn oracle_pins_lru_ttl() {
    run_policy(PolicyKind::LruTtl);
}

#[test]
fn oracle_pins_sieve() {
    run_policy(PolicyKind::Sieve);
}

#[test]
fn oracle_pins_s3fifo() {
    let cov = run_policy(PolicyKind::S3Fifo);
    assert!(cov.ghost_hits > 0, "no ghost readmissions exercised");
    assert!(
        cov.small_promotions > 0,
        "no small→main promotions exercised"
    );
}

#[test]
fn oracle_pins_tinylfu() {
    let cov = run_policy(PolicyKind::TinyLfu);
    assert!(
        cov.admission_rejections > 0,
        "no admission rejections exercised"
    );
    assert!(cov.admission_wins > 0, "no admission wins exercised");
    assert!(
        cov.protected_promotions > 0,
        "no protected promotions exercised"
    );
}
