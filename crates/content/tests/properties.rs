//! Property-based tests for cache-policy invariants.

use proptest::prelude::*;
use spacecdn_content::cache::{Cache, FifoCache, LfuCache, LruCache};
use spacecdn_content::catalog::ContentId;

/// One cache operation in a generated trace.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..60, 1u64..5_000).prop_map(|(id, size)| Op::Insert(id, size)),
        (0u64..60).prop_map(Op::Get),
        (0u64..60).prop_map(Op::Remove),
    ]
}

fn check_invariants(cache: &mut dyn Cache, ops: &[Op]) -> Result<(), TestCaseError> {
    let capacity = cache.capacity_bytes();
    for op in ops {
        match *op {
            Op::Insert(id, size) => {
                let admitted = cache.insert(ContentId(id), size);
                prop_assert_eq!(admitted, size <= capacity);
                if admitted {
                    prop_assert!(cache.contains(ContentId(id)), "inserted item present");
                }
            }
            Op::Get(id) => {
                let hit = cache.get(ContentId(id));
                prop_assert_eq!(hit, cache.contains(ContentId(id)));
            }
            Op::Remove(id) => {
                let was = cache.contains(ContentId(id));
                prop_assert_eq!(cache.remove(ContentId(id)), was);
                prop_assert!(!cache.contains(ContentId(id)));
            }
        }
        prop_assert!(
            cache.used_bytes() <= capacity,
            "over capacity: {} > {}",
            cache.used_bytes(),
            capacity
        );
        let stats = cache.stats();
        prop_assert!(stats.hits + stats.misses >= stats.hits); // no overflow
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_invariants(ops in prop::collection::vec(arb_op(), 1..300), cap in 1_000u64..40_000) {
        let mut cache = LruCache::new(cap);
        check_invariants(&mut cache, &ops)?;
    }

    #[test]
    fn lfu_invariants(ops in prop::collection::vec(arb_op(), 1..300), cap in 1_000u64..40_000) {
        let mut cache = LfuCache::new(cap);
        check_invariants(&mut cache, &ops)?;
    }

    #[test]
    fn fifo_invariants(ops in prop::collection::vec(arb_op(), 1..300), cap in 1_000u64..40_000) {
        let mut cache = FifoCache::new(cap);
        check_invariants(&mut cache, &ops)?;
    }

    #[test]
    fn used_bytes_equals_sum_of_present(ops in prop::collection::vec(arb_op(), 1..200)) {
        // Track presence externally with a model map and cross-check sizes.
        use std::collections::HashMap;
        let mut cache = LruCache::new(25_000);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(id, size) => {
                    // Objects are immutable: re-inserting an existing id
                    // refreshes metadata but keeps the original size.
                    if cache.insert(ContentId(id), size) {
                        model.entry(id).or_insert(size);
                    }
                }
                Op::Get(id) => {
                    cache.get(ContentId(id));
                }
                Op::Remove(id) => {
                    cache.remove(ContentId(id));
                    model.remove(&id);
                }
            }
            // Evictions remove model entries we can detect by contains().
            model.retain(|id, _| cache.contains(ContentId(*id)));
            let model_bytes: u64 = model.values().sum();
            prop_assert_eq!(cache.used_bytes(), model_bytes);
            prop_assert_eq!(cache.len(), model.len());
        }
    }

    #[test]
    fn clear_resets_contents_not_counters(ops in prop::collection::vec(arb_op(), 1..100)) {
        let mut cache = LfuCache::new(10_000);
        for op in &ops {
            if let Op::Insert(id, size) = *op {
                cache.insert(ContentId(id), size);
            } else if let Op::Get(id) = *op {
                cache.get(ContentId(id));
            }
        }
        let stats_before = cache.stats();
        cache.clear();
        prop_assert_eq!(cache.len(), 0);
        prop_assert_eq!(cache.used_bytes(), 0);
        prop_assert_eq!(cache.stats().hits, stats_before.hits);
        prop_assert_eq!(cache.stats().misses, stats_before.misses);
    }
}
