//! Property-based tests over the measurement harnesses.

use proptest::prelude::*;
use spacecdn_measure::aim::{AimCampaign, AimConfig, IspKind};
use spacecdn_measure::streaming::{simulate_session, PlayerConfig, StreamPath};
use spacecdn_measure::web::{browse_campaign, PageModel, WebConfig};

fn small_campaign(seed: u64, scatter: f64) -> AimCampaign {
    AimCampaign::run_for(
        &AimConfig {
            seed,
            epochs: 1,
            tests_per_epoch: 2,
            probes_per_test: 3,
            anycast_scatter: scatter,
            ..AimConfig::default()
        },
        &["ES", "MZ"],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn aim_records_well_formed(seed in 0u64..200, scatter in 0.0f64..0.9) {
        let campaign = small_campaign(seed, scatter);
        for r in campaign.records() {
            prop_assert!(r.min_rtt_ms.is_finite() && r.min_rtt_ms > 0.0);
            prop_assert!(r.idle_rtt_ms >= r.min_rtt_ms - 1e-9,
                "idle {} < min {}", r.idle_rtt_ms, r.min_rtt_ms);
            prop_assert!(r.cdn_distance_km >= 0.0);
            if !r.scattered {
                // Optimal-mapping tests go to a plausible nearest site:
                // Starlink distances can be continental, terrestrial ones
                // stay regional.
                if r.isp == IspKind::Terrestrial {
                    prop_assert!(r.cdn_distance_km < 3000.0, "{r:?}");
                }
            }
        }
    }

    #[test]
    fn aim_sampling_is_paired(seed in 0u64..200) {
        let campaign = small_campaign(seed, 0.3);
        let star = campaign.records().iter().filter(|r| r.isp == IspKind::Starlink).count();
        let terr = campaign
            .records()
            .iter()
            .filter(|r| r.isp == IspKind::Terrestrial)
            .count();
        prop_assert_eq!(star, terr);
    }

    #[test]
    fn starlink_mozambique_always_slower_than_spain(seed in 0u64..100) {
        let campaign = small_campaign(seed, 0.0);
        let es = campaign.country_stats_for("ES", IspKind::Starlink).unwrap();
        let mz = campaign.country_stats_for("MZ", IspKind::Starlink).unwrap();
        prop_assert!(mz.median_min_rtt_ms > es.median_min_rtt_ms * 2.0,
            "MZ {} vs ES {}", mz.median_min_rtt_ms, es.median_min_rtt_ms);
    }

    #[test]
    fn web_fetch_components_ordered(seed in 0u64..200) {
        let recs = browse_campaign(
            &["DE"],
            &PageModel::typical_landing_page(),
            &WebConfig { seed, epochs: 1, fetches_per_epoch: 2, ..WebConfig::default() },
        );
        prop_assert!(!recs.is_empty());
        for r in &recs {
            prop_assert!(r.dns_ms > 0.0);
            prop_assert!(r.hrt_ms > r.connect_ms, "{r:?}");
            prop_assert!(r.fcp_ms > r.hrt_ms + 100.0, "{r:?}");
        }
    }

    #[test]
    fn streaming_session_invariants(
        rtt in 10.0f64..400.0,
        mbps in 3.0f64..200.0,
        seed in 0u64..100,
    ) {
        let path = StreamPath { rtt_ms: rtt, throughput_mbps: mbps, throughput_sigma: 0.3 };
        let report = simulate_session(path, PlayerConfig::default(), seed);
        // The session always plays out all content.
        prop_assert!(report.session_s >= 600.0 - 1e-6);
        prop_assert!(report.startup_delay_s.is_finite());
        prop_assert!(report.startup_delay_s > 0.0);
        prop_assert!(report.rebuffer_total_s >= 0.0);
        prop_assert!(report.mean_buffer_s >= 0.0);
        // Stalls only exist if there were stall events.
        if report.rebuffer_events == 0 {
            prop_assert!(report.rebuffer_total_s < 1e-6);
        }
    }
}
