//! AIM-style speed-test campaigns (the Cloudflare dataset substitute).
//!
//! For every covered city the campaign simulates speed tests over both
//! access networks:
//!
//! - **terrestrial**: client → anycast-nearest CDN site from the client's
//!   city, with sampled last-mile noise;
//! - **Starlink**: client → PoP (space segment over the live constellation,
//!   sampled per epoch) → anycast-nearest CDN site *from the PoP* — the
//!   paper's central mechanism.
//!
//! Each "test" reports the median idle latency of a handful of probes
//! (what the Cloudflare speed test reports), and per-city statistics take
//! medians over tests spread across constellation epochs — matching how
//! the paper computes its "median minRTT" to the best site.

use serde::Serialize;
use spacecdn_core::network::{LsnNetwork, LsnSnapshot};
use spacecdn_des::Percentiles;
use spacecdn_engine::par_map;
use spacecdn_geo::{DetRng, Latency, SimTime};
use spacecdn_lsn::FaultPlan;
use spacecdn_telemetry::LazyCounter;
use spacecdn_terra::cdn::{cdn_sites, rank_sites, CdnSite};
use spacecdn_terra::city::{cities, City};
use spacecdn_terra::fiber::FiberModel;
use spacecdn_terra::region::country_last_mile_factor;
use spacecdn_terra::starlink::{covered_countries, home_pop};

/// Campaign volume counters (stable: the test/probe schedule is a pure
/// function of the config and city list).
static AIM_TESTS: LazyCounter = LazyCounter::stable("measure.aim.tests");
static AIM_PROBES: LazyCounter = LazyCounter::stable("measure.aim.probes");

/// Which access network a measurement used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum IspKind {
    /// The LEO satellite network.
    Starlink,
    /// A terrestrial ISP in the same city.
    Terrestrial,
}

/// One speed-test record (one row of the synthetic AIM dataset).
#[derive(Debug, Clone, Serialize)]
pub struct AimRecord {
    /// Client city name.
    pub city: &'static str,
    /// Client country code.
    pub cc: &'static str,
    /// Access network.
    pub isp: IspKind,
    /// Minimum RTT across this test's probes, ms (Table 1's "minRTT").
    pub min_rtt_ms: f64,
    /// Idle latency of this test (median of its probes), ms — what the
    /// speed-test UI reports and what the Figure 7 CDFs are built from.
    pub idle_rtt_ms: f64,
    /// CDN city the test was served from.
    pub cdn_city: &'static str,
    /// Great-circle distance from the client to that CDN site, km.
    pub cdn_distance_km: f64,
    /// True when anycast landed this test on a non-optimal site.
    pub scattered: bool,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct AimConfig {
    /// Experiment seed.
    pub seed: u64,
    /// Number of constellation epochs to sample (tests spread over time).
    pub epochs: usize,
    /// Seconds between epochs.
    pub epoch_spacing_s: u64,
    /// Base tests per city per ISP per epoch; each city's actual count is
    /// scaled by its population weight (crowdsourced datasets sample in
    /// proportion to users).
    pub tests_per_epoch: usize,
    /// Probes per test. The test's reported idle latency is the *median*
    /// of its probes, matching how the Cloudflare speed test reports
    /// latency (Table 1's "minRTT" is then the median over tests to the
    /// best site).
    pub probes_per_test: usize,
    /// Probability that BGP anycast lands a test on the 2nd–4th nearest
    /// site instead of the nearest — the paper observes that "clients from
    /// the same city often target several CDN servers across different
    /// neighboring countries". Scattered records carry `scattered = true`
    /// and are excluded from the optimal-mapping aggregates (Table 1) but
    /// included in the raw CDFs (Fig 7), giving terrestrial access its
    /// long tail.
    pub anycast_scatter: f64,
}

/// Population weight of a city: big metros contribute proportionally more
/// measurements, clamped to [0.5, 3] so small cities still appear.
fn population_weight(city: &City) -> f64 {
    (city.population_k as f64 / 2000.0).clamp(0.5, 3.0)
}

impl Default for AimConfig {
    fn default() -> Self {
        AimConfig {
            seed: 42,
            epochs: 6,
            epoch_spacing_s: 173,
            tests_per_epoch: 4,
            probes_per_test: 5,
            anycast_scatter: 0.3,
        }
    }
}

/// Per-country aggregate — one row of Table 1 / one point of Figure 2.
#[derive(Debug, Clone, Serialize)]
pub struct CountryStats {
    /// Country code.
    pub cc: &'static str,
    /// Country name.
    pub country: &'static str,
    /// Mean distance to the chosen CDN site, km.
    pub mean_cdn_distance_km: f64,
    /// Median of per-test min RTTs, ms.
    pub median_min_rtt_ms: f64,
}

/// A completed campaign: records plus lazily computed aggregates.
pub struct AimCampaign {
    records: Vec<AimRecord>,
}

/// One (city, epoch) task of the campaign: both ISPs' tests for `city` at
/// the epoch `snap` was frozen at. RNG stream and record order are
/// self-contained, so tasks can run on any thread in any order.
fn city_epoch_records(
    config: &AimConfig,
    net: &LsnNetwork,
    snap: &LsnSnapshot<'_>,
    sites: &[CdnSite],
    fiber: &FiberModel,
    city: &City,
    epoch: usize,
) -> Vec<AimRecord> {
    let mut records = Vec::new();
    let mut rng = DetRng::new(config.seed, &format!("aim/{}/{}", city.name, epoch));
    // Terrestrial egress = the city; Starlink egress = the PoP.
    // Anycast usually lands on the nearest site but scatters to
    // the next few with probability `anycast_scatter`.
    let terr_ranked = rank_sites(city.position(), city.region, sites, fiber);
    let pop = home_pop(city.cc, city.position());
    let star_ranked = rank_sites(pop.position(), pop.city.region, sites, fiber);

    let lm_factor = country_last_mile_factor(city.cc);
    // The space path is fixed within an epoch; only the
    // user-link scheduling jitter varies per probe. Resolve the
    // median path once and re-jitter it per probe (equivalent
    // distributionally, ~20× cheaper than re-routing).
    let star_pop_rtt = snap
        .starlink_rtt_to_pop(city.position(), &pop, None)
        .map(|p| p.rtt.ms());
    let access = net.access();
    let tests = ((config.tests_per_epoch as f64) * population_weight(city)).round() as usize;
    let pick = |rng: &mut DetRng| -> usize {
        if rng.chance(config.anycast_scatter) {
            1 + rng.index(3.min(terr_ranked.len() - 1).max(1))
        } else {
            0
        }
    };
    for _ in 0..tests.max(1) {
        // Terrestrial test: min over probes of WAN + last mile.
        let rank = pick(&mut rng).min(terr_ranked.len() - 1);
        let (terr_site, terr_wan) = terr_ranked[rank];
        let mut probes: Vec<f64> = (0..config.probes_per_test.max(1))
            .map(|_| {
                let lm = rng.log_normal_median(
                    city.region.profile().last_mile_median_ms * lm_factor,
                    city.region.profile().last_mile_sigma,
                );
                terr_wan.ms() + lm
            })
            .collect();
        probes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        AIM_TESTS.incr();
        AIM_PROBES.add(probes.len() as u64);
        let t_min = probes[0];
        let t_idle = probes[probes.len() / 2];
        records.push(AimRecord {
            city: city.name,
            cc: city.cc,
            isp: IspKind::Terrestrial,
            min_rtt_ms: t_min,
            idle_rtt_ms: t_idle,
            cdn_city: terr_site.city.name,
            cdn_distance_km: city
                .position()
                .great_circle_distance(terr_site.position())
                .0,
            scattered: rank > 0,
        });

        // Starlink test: min over probes of space path + PoP→CDN.
        if let Some(base) = star_pop_rtt {
            let rank = pick(&mut rng).min(star_ranked.len() - 1);
            let (star_site, pop_to_site) = star_ranked[rank];
            let mut probes: Vec<f64> = (0..config.probes_per_test.max(1))
                .map(|_| {
                    let sched =
                        rng.log_normal_median(access.ka_sched_median_ms, access.ka_sched_sigma);
                    base + pop_to_site.ms() - access.ka_sched_median_ms + sched
                })
                .collect();
            probes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            AIM_TESTS.incr();
            AIM_PROBES.add(probes.len() as u64);
            let s_min = probes[0];
            let s_idle = probes[probes.len() / 2];
            records.push(AimRecord {
                city: city.name,
                cc: city.cc,
                isp: IspKind::Starlink,
                min_rtt_ms: s_min,
                idle_rtt_ms: s_idle,
                cdn_city: star_site.city.name,
                cdn_distance_km: city
                    .position()
                    .great_circle_distance(star_site.position())
                    .0,
                scattered: rank > 0,
            });
        }
    }
    records
}

impl AimCampaign {
    /// Run the campaign over every Starlink-covered country in the dataset.
    pub fn run(config: &AimConfig) -> Self {
        Self::run_for(config, &covered_countries())
    }

    /// Run for an explicit set of country codes.
    ///
    /// The (epoch × city) fan-out runs on the experiment engine's thread
    /// pool. Every task derives its own RNG stream from
    /// `(seed, "aim/{city}/{epoch}")` and tasks are flattened in the same
    /// (epoch-major, city-minor) order the sequential loop used, so the
    /// record stream is byte-identical at any thread count.
    pub fn run_for(config: &AimConfig, country_codes: &[&str]) -> Self {
        let net = LsnNetwork::starlink();
        let sites = cdn_sites();
        let fiber = *net.fiber();

        // One snapshot per epoch, shared (read-only) by every city task of
        // that epoch — its routing cache also warms across tasks.
        let snapshots: Vec<LsnSnapshot<'_>> = (0..config.epochs)
            .map(|epoch| {
                let t = SimTime::from_secs(epoch as u64 * config.epoch_spacing_s);
                net.snapshot(t, &FaultPlan::none())
            })
            .collect();

        let mut tasks: Vec<(usize, &City)> = Vec::new();
        for epoch in 0..config.epochs {
            for city in cities() {
                if country_codes.contains(&city.cc) {
                    tasks.push((epoch, city));
                }
            }
        }

        let per_task = par_map(&tasks, |_, &(epoch, city)| {
            city_epoch_records(config, &net, &snapshots[epoch], &sites, &fiber, city, epoch)
        });
        AimCampaign {
            records: per_task.into_iter().flatten().collect(),
        }
    }

    /// All raw records.
    pub fn records(&self) -> &[AimRecord] {
        &self.records
    }

    /// Per-country stats for one ISP (a Table 1 column pair).
    pub fn country_stats(&self, isp: IspKind) -> Vec<CountryStats> {
        let mut ccs: Vec<&'static str> = self
            .records
            .iter()
            .filter(|r| r.isp == isp)
            .map(|r| r.cc)
            .collect();
        ccs.sort_unstable();
        ccs.dedup();
        ccs.into_iter()
            .filter_map(|cc| self.country_stats_for(cc, isp))
            .collect()
    }

    /// Stats for one (country, ISP) pair.
    pub fn country_stats_for(&self, cc: &str, isp: IspKind) -> Option<CountryStats> {
        // The optimal-mapping analysis (Table 1) uses only tests that
        // anycast routed to the nearest site.
        let rows: Vec<&AimRecord> = self
            .records
            .iter()
            .filter(|r| r.cc == cc && r.isp == isp && !r.scattered)
            .collect();
        if rows.is_empty() {
            return None;
        }
        let mut p = Percentiles::new();
        let mut dist = 0.0;
        for r in &rows {
            p.add(r.min_rtt_ms);
            dist += r.cdn_distance_km;
        }
        let country = cities()
            .iter()
            .find(|c| c.cc == rows[0].cc)
            .map(|c| c.country)
            .unwrap_or("?");
        Some(CountryStats {
            cc: rows[0].cc,
            country,
            mean_cdn_distance_km: dist / rows.len() as f64,
            median_min_rtt_ms: p.median().expect("non-empty"),
        })
    }

    /// Figure 2's series: per-country Δ median min-RTT
    /// (Starlink − terrestrial), for countries with both ISPs measured.
    pub fn delta_by_country(&self) -> Vec<(&'static str, f64)> {
        let star = self.country_stats(IspKind::Starlink);
        let terr = self.country_stats(IspKind::Terrestrial);
        let mut out = Vec::new();
        for s in &star {
            if let Some(t) = terr.iter().find(|t| t.cc == s.cc) {
                out.push((s.cc, s.median_min_rtt_ms - t.median_min_rtt_ms));
            }
        }
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        out
    }

    /// Full min-RTT distribution for one ISP across all records — the
    /// Figure 7 baseline CDFs.
    pub fn rtt_distribution(&self, isp: IspKind) -> Percentiles {
        let mut p = Percentiles::new();
        for r in self.records.iter().filter(|r| r.isp == isp) {
            p.add(r.idle_rtt_ms);
        }
        p
    }

    /// Country-balanced min-RTT distribution: at most `per_country_cap`
    /// records per country, so populous well-served markets don't drown the
    /// long tail. This matches the composition of the paper's AIM sample
    /// (~22 K Starlink tests spread over 55 countries, i.e. roughly equal
    /// country weights), and is what Figs 7/8 compare against.
    pub fn rtt_distribution_balanced(&self, isp: IspKind, per_country_cap: usize) -> Percentiles {
        use std::collections::HashMap;
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let mut p = Percentiles::new();
        for r in self.records.iter().filter(|r| r.isp == isp) {
            let c = counts.entry(r.cc).or_insert(0);
            if *c < per_country_cap {
                *c += 1;
                p.add(r.idle_rtt_ms);
            }
        }
        p
    }
}

/// The Figure 3 case study: from one client city, the median RTT to *every*
/// CDN site over the given ISP (not just the optimal one).
pub fn case_study_city(city: &City, isp: IspKind, config: &AimConfig) -> Vec<(CdnSite, Latency)> {
    let net = LsnNetwork::starlink();
    let sites = cdn_sites();
    let fiber = *net.fiber();
    // The old loop rebuilt the snapshot for every (site, epoch) pair;
    // topology depends only on the epoch, so build each once and share it
    // across the per-site tasks (which also share its routing cache).
    let snapshots: Vec<LsnSnapshot<'_>> = (0..config.epochs)
        .map(|epoch| {
            let t = SimTime::from_secs(epoch as u64 * config.epoch_spacing_s);
            net.snapshot(t, &FaultPlan::none())
        })
        .collect();
    let per_site = par_map(&sites, |_, site| {
        let mut p = Percentiles::new();
        for (epoch, snap) in snapshots.iter().enumerate() {
            let mut rng = DetRng::new(
                config.seed,
                &format!("case/{}/{}/{}", city.name, site.city.name, epoch),
            );
            for _ in 0..config.tests_per_epoch {
                match isp {
                    IspKind::Terrestrial => {
                        let lm = rng.log_normal_median(
                            city.region.profile().last_mile_median_ms
                                * country_last_mile_factor(city.cc),
                            city.region.profile().last_mile_sigma,
                        );
                        let base = fiber.wan_rtt(
                            city.position(),
                            city.region,
                            site.position(),
                            site.region(),
                        );
                        p.add(base.ms() + lm);
                    }
                    IspKind::Starlink => {
                        if let Some((_, total)) = snap.starlink_rtt_to_server(
                            city.position(),
                            city.cc,
                            site.position(),
                            site.region(),
                            Some(&mut rng),
                        ) {
                            p.add(total.ms());
                        }
                    }
                }
            }
        }
        p.median().map(|median| (*site, Latency::from_ms(median)))
    });
    let mut out: Vec<(CdnSite, Latency)> = per_site.into_iter().flatten().collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacecdn_terra::city::city_by_name;

    fn quick_config() -> AimConfig {
        AimConfig {
            seed: 7,
            epochs: 3,
            epoch_spacing_s: 211,
            tests_per_epoch: 2,
            probes_per_test: 3,
            anycast_scatter: 0.3,
        }
    }

    #[test]
    fn campaign_produces_both_isps() {
        let c = AimCampaign::run_for(&quick_config(), &["ES", "MZ"]);
        let star = c
            .records()
            .iter()
            .filter(|r| r.isp == IspKind::Starlink)
            .count();
        let terr = c
            .records()
            .iter()
            .filter(|r| r.isp == IspKind::Terrestrial)
            .count();
        assert!(star > 0 && terr > 0);
        assert_eq!(star, terr, "paired sampling");
    }

    #[test]
    fn table1_shape_for_key_countries() {
        let c = AimCampaign::run_for(&quick_config(), &["ES", "MZ", "KE", "GT"]);
        let get = |cc, isp| c.country_stats_for(cc, isp).expect("present");

        // Spain: local PoP — Starlink ~30-45 ms, short CDN distances both.
        let es_s = get("ES", IspKind::Starlink);
        let es_t = get("ES", IspKind::Terrestrial);
        assert!((25.0..50.0).contains(&es_s.median_min_rtt_ms), "{es_s:?}");
        assert!(es_t.median_min_rtt_ms < es_s.median_min_rtt_ms);

        // Mozambique: Starlink ~120-180 ms, terrestrial ~8-20 ms, and the
        // Starlink CDN sits thousands of km away.
        let mz_s = get("MZ", IspKind::Starlink);
        let mz_t = get("MZ", IspKind::Terrestrial);
        assert!((110.0..190.0).contains(&mz_s.median_min_rtt_ms), "{mz_s:?}");
        assert!(mz_t.median_min_rtt_ms < 40.0, "{mz_t:?}");
        assert!(mz_s.mean_cdn_distance_km > 5000.0, "{mz_s:?}");
        assert!(mz_t.mean_cdn_distance_km < 1500.0, "{mz_t:?}");
    }

    #[test]
    fn deltas_positive_for_almost_all_countries() {
        let c = AimCampaign::run_for(&quick_config(), &["ES", "DE", "MZ", "KE", "GT", "JP"]);
        let deltas = c.delta_by_country();
        assert_eq!(deltas.len(), 6);
        // Fig 2: terrestrial almost always faster; Africa worst.
        for (cc, d) in &deltas {
            assert!(*d > 0.0, "{cc} delta {d}");
        }
        let mz = deltas.iter().find(|(cc, _)| *cc == "MZ").unwrap().1;
        let de = deltas.iter().find(|(cc, _)| *cc == "DE").unwrap().1;
        assert!(mz > de + 50.0, "MZ {mz} vs DE {de}");
    }

    #[test]
    fn maputo_case_study_matches_fig3() {
        let cfg = quick_config();
        let maputo = city_by_name("Maputo").unwrap();

        // Terrestrial (Fig 3b): best site is Maputo itself at ~20 ms
        // (case-study medians carry the full last-mile sample, unlike the
        // min-of-probes AIM records); Johannesburg within ~25-80 ms.
        let terr = case_study_city(maputo, IspKind::Terrestrial, &cfg);
        assert_eq!(terr[0].0.city.name, "Maputo");
        assert!(terr[0].1.ms() < 35.0, "got {}", terr[0].1);
        let joburg = terr
            .iter()
            .find(|(s, _)| s.city.name == "Johannesburg")
            .unwrap();
        assert!((15.0..80.0).contains(&joburg.1.ms()), "got {}", joburg.1);

        // Starlink (Fig 3a): the best site is in Europe (the PoP side of
        // the world), at ~130-200 ms; African sites are *worse* despite
        // being nearer, because of the post-PoP terrestrial detour.
        let star = case_study_city(maputo, IspKind::Starlink, &cfg);
        let best = &star[0];
        let best_region_is_europe = matches!(
            best.0.city.region,
            spacecdn_terra::region::Region::WesternEurope
                | spacecdn_terra::region::Region::EasternEurope
        );
        assert!(best_region_is_europe, "best site {}", best.0.city.name);
        assert!((120.0..210.0).contains(&best.1.ms()), "got {}", best.1);
        let cpt = star
            .iter()
            .find(|(s, _)| s.city.name == "Cape Town")
            .unwrap();
        assert!(
            cpt.1.ms() > best.1.ms() + 40.0,
            "Cape Town {} vs best {}",
            cpt.1,
            best.1
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = AimCampaign::run_for(&quick_config(), &["CY"]);
        let b = AimCampaign::run_for(&quick_config(), &["CY"]);
        assert_eq!(a.records().len(), b.records().len());
        for (x, y) in a.records().iter().zip(b.records()) {
            assert_eq!(x.min_rtt_ms, y.min_rtt_ms);
        }
    }

    #[test]
    fn distribution_has_long_tail() {
        let c = AimCampaign::run_for(&quick_config(), &["ES", "MZ", "KE", "DE"]);
        let mut dist = c.rtt_distribution(IspKind::Starlink);
        let p10 = dist.quantile(0.1).unwrap();
        let p90 = dist.quantile(0.9).unwrap();
        assert!(p90 > p10 * 2.0, "p10 {p10} p90 {p90}");
    }
}
