//! Steady-state traffic campaign: request-driven cache performance per
//! duty-cycle fraction.
//!
//! Where [`crate::spacecdn`] measures one fetch at a time against
//! pre-placed copies, this campaign drives the [`spacecdn_core::traffic`]
//! engine: Zipf-distributed requests from population-weighted covered
//! cities warm per-satellite LRU+TTL caches through pull-through, and the
//! report captures what the paper's §4/§5 discussion actually cares
//! about — hit ratio, origin offload, and the latency CDF — as the
//! thermal duty-cycle fraction throttles which satellites may cache.

use spacecdn_core::network::LsnNetwork;
use spacecdn_core::placement::PlacementSpec;
use spacecdn_core::scenario::Scenario;
use spacecdn_core::traffic::{
    run_traffic_multishell, PolicyKind, TrafficConfig, TrafficReport, TrafficSource,
};
use spacecdn_des::Percentiles;
use spacecdn_geo::{Latency, SimDuration, SimTime};
use spacecdn_lsn::{AccessModel, FaultSchedule};
use spacecdn_orbit::{Constellation, MultiConstellation};
use spacecdn_telemetry::LazyCounter;
use spacecdn_terra::cdn::{anycast_select, cdn_sites};
use spacecdn_terra::city::cities;
use spacecdn_terra::fiber::FiberModel;
use spacecdn_terra::starlink::{covered_countries, home_pop};

/// Campaign points produced (stable: fixed by the sweep parameters).
static TRAFFIC_POINTS: LazyCounter = LazyCounter::stable("measure.traffic.points");

/// Parameters of a traffic campaign sweep.
#[derive(Debug, Clone)]
pub struct TrafficCampaignConfig {
    /// Duty-cycle fractions to sweep (each gets its own full run).
    pub duty_fractions: Vec<f64>,
    /// Total simulated requests per sweep point.
    pub requests: u64,
    /// Independent request streams (parallelism grain; does not change
    /// results).
    pub streams: usize,
    /// Topology epochs the run advances through.
    pub epochs: usize,
    /// Wall time between epochs.
    pub epoch_step: SimDuration,
    /// Catalog size (objects).
    pub catalog_size: usize,
    /// Zipf popularity exponent.
    pub zipf_alpha: f64,
    /// Per-satellite cache capacity in bytes.
    pub cache_bytes_per_sat: u64,
    /// Object freshness lifetime.
    pub ttl: SimDuration,
    /// Cache eviction/admission policy every satellite fleet runs.
    pub policy: PolicyKind,
    /// Pinned replica placement layered under the pull-through fleets
    /// (`None` = pure pull-through).
    pub placement: Option<PlacementSpec>,
    /// Which Starlink 2024 shells to simulate (indices into
    /// [`MultiConstellation::starlink_2024`]); the default is Shell 1
    /// only, matching the pre-multishell campaign.
    pub shells: Vec<usize>,
    /// Master seed for every stream in the campaign.
    pub seed: u64,
}

impl Default for TrafficCampaignConfig {
    fn default() -> Self {
        TrafficCampaignConfig {
            duty_fractions: vec![1.0, 0.6, 0.3],
            requests: 50_000,
            streams: 8,
            epochs: 3,
            epoch_step: SimDuration::from_secs(157),
            catalog_size: 10_000,
            zipf_alpha: 0.9,
            cache_bytes_per_sat: 8 << 30,
            ttl: SimDuration::from_mins(30),
            policy: PolicyKind::from_env(),
            placement: PlacementSpec::from_env(),
            shells: vec![0],
            seed: 42,
        }
    }
}

/// One sweep point: the traffic engine's report for a duty fraction.
#[derive(Debug)]
pub struct TrafficPoint {
    /// Active cache fraction this point ran under.
    pub fraction: f64,
    /// Cache hit ratio over all requests (overhead + ISL hits).
    pub hit_ratio: f64,
    /// Byte fraction served from space rather than origin.
    pub origin_offload: f64,
    /// Request latency samples (milliseconds).
    pub latencies: Percentiles,
    /// The engine's full report (counters, hop histogram, byte tallies).
    pub report: TrafficReport,
}

/// Population-weighted request sources over Starlink-covered cities, with
/// the per-epoch ground-fallback RTT each city would see riding the
/// regular Starlink-CDN path (PoP homing + anycast CDN selection) under
/// `schedule` at that epoch. Cities whose sky is dark at an epoch fall
/// back to a conservative 300 ms.
///
/// Deterministic: the RTT query runs without jitter (`rng = None`), so
/// the same schedule and epochs always produce the same source table.
pub fn covered_traffic_sources(
    net: &LsnNetwork,
    schedule: &FaultSchedule,
    epochs: usize,
    epoch_step: SimDuration,
) -> Vec<TrafficSource> {
    covered_traffic_sources_from(net, schedule, SimTime::EPOCH, epochs, epoch_step)
}

/// [`covered_traffic_sources`] with the epoch timeline anchored at
/// `start` instead of [`SimTime::EPOCH`] — the fallback table for a
/// traffic burst whose `TrafficConfig::start` carries a long-lived
/// session's running clock.
pub fn covered_traffic_sources_from(
    net: &LsnNetwork,
    schedule: &FaultSchedule,
    start: SimTime,
    epochs: usize,
    epoch_step: SimDuration,
) -> Vec<TrafficSource> {
    let covered = covered_countries();
    let sites = cdn_sites();
    let epoch_times: Vec<SimTime> = (0..epochs)
        .map(|e| start + epoch_step.mul(e as u64))
        .collect();
    let snapshots: Vec<_> = epoch_times
        .iter()
        .map(|&t| net.snapshot(t, &schedule.plan_at(t)))
        .collect();

    let mut sources = Vec::new();
    for city in cities() {
        if !covered.contains(&city.cc) {
            continue;
        }
        let pop = home_pop(city.cc, city.position());
        let fallback_rtt: Vec<Latency> = snapshots
            .iter()
            .map(|snap| {
                snap.starlink_rtt_to_pop(city.position(), &pop, None)
                    .map(|p| {
                        let (_, pop_to_site) =
                            anycast_select(pop.position(), pop.city.region, &sites, net.fiber())
                                .expect("sites non-empty");
                        p.rtt + pop_to_site
                    })
                    .unwrap_or(Latency::from_ms(300.0))
            })
            .collect();
        sources.push(TrafficSource {
            position: city.position(),
            // One weight unit per ~2M people, at least one — the same
            // bucketing the fig7/fig8 city sampler uses.
            weight: (city.population_k / 2000).max(1),
            fallback_rtt,
        });
    }
    sources
}

/// One retrieval scenario per requested Starlink 2024 shell, all under
/// the same fault timeline — the shell set [`run_traffic_multishell`]
/// consumes. Shell 0 of [`MultiConstellation::starlink_2024`] is exactly
/// the calibrated Shell 1 geometry, so `&[0]` reproduces the
/// single-shell campaign; gateways and models match
/// [`LsnNetwork::starlink`].
///
/// # Panics
/// Panics when a shell index is out of range for the 2024 constellation.
pub fn starlink_shell_scenarios(shells: &[usize], schedule: &FaultSchedule) -> Vec<Scenario> {
    let fleet = MultiConstellation::starlink_2024();
    shells
        .iter()
        .map(|&k| {
            assert!(
                k < fleet.shell_count(),
                "shell index {k} out of range for Starlink 2024"
            );
            Scenario::builder(LsnNetwork::new(
                Constellation::new(*fleet.shell(k).config()),
                Vec::new(),
                AccessModel::default(),
                FiberModel::default(),
            ))
            .schedule(schedule.clone())
            .build()
        })
        .collect()
}

/// Run the steady-state traffic campaign: one full engine run per duty
/// fraction across every configured shell, all under the same fault
/// timeline. Pristine campaigns pass [`FaultSchedule::none()`].
///
/// Sources and their ground-fallback RTTs come from the calibrated
/// Shell 1 network (the bent pipe rides the shell users home to), while
/// in-space serving spans every shell in `cfg.shells`.
pub fn traffic_campaign(
    cfg: &TrafficCampaignConfig,
    schedule: &FaultSchedule,
) -> Vec<TrafficPoint> {
    let net = LsnNetwork::starlink();
    let sources = covered_traffic_sources(&net, schedule, cfg.epochs, cfg.epoch_step);
    let mut scenarios = starlink_shell_scenarios(&cfg.shells, schedule);

    let mut points = Vec::new();
    for &fraction in &cfg.duty_fractions {
        let engine_cfg = TrafficConfig {
            requests: cfg.requests,
            streams: cfg.streams,
            epochs: cfg.epochs,
            epoch_step: cfg.epoch_step,
            catalog_size: cfg.catalog_size,
            zipf_alpha: cfg.zipf_alpha,
            cache_bytes_per_sat: cfg.cache_bytes_per_sat,
            ttl: cfg.ttl,
            policy: cfg.policy,
            placement: cfg.placement,
            duty_fraction: fraction,
            seed: cfg.seed,
            ..TrafficConfig::default()
        };
        let report = run_traffic_multishell(&mut scenarios, &sources, &engine_cfg);
        TRAFFIC_POINTS.incr();
        points.push(TrafficPoint {
            fraction,
            hit_ratio: report.hit_ratio(),
            origin_offload: report.origin_offload(),
            latencies: report.latencies.clone(),
            report,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> TrafficCampaignConfig {
        TrafficCampaignConfig {
            duty_fractions: vec![1.0, 0.3],
            requests: 2_000,
            streams: 4,
            epochs: 2,
            catalog_size: 400,
            cache_bytes_per_sat: 64 << 20,
            ..TrafficCampaignConfig::default()
        }
    }

    #[test]
    fn sources_cover_the_paper_geography() {
        let net = LsnNetwork::starlink();
        let sources =
            covered_traffic_sources(&net, &FaultSchedule::none(), 2, SimDuration::from_secs(157));
        assert!(sources.len() > 80, "got {}", sources.len());
        assert!(sources.iter().all(|s| s.weight >= 1));
        assert!(sources.iter().all(|s| s.fallback_rtt.len() == 2));
        // Fallbacks are real computed paths, not all the 300 ms default.
        assert!(sources
            .iter()
            .any(|s| s.fallback_rtt.iter().any(|&r| r != Latency::from_ms(300.0))));
    }

    #[test]
    fn campaign_sweeps_fractions_and_degrades_when_throttled() {
        let cfg = quick_cfg();
        let points = traffic_campaign(&cfg, &FaultSchedule::none());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.report.requests, cfg.requests);
            assert_eq!(p.latencies.len() as u64, cfg.requests);
            assert!((0.0..=1.0).contains(&p.hit_ratio));
            assert!((0.0..=1.0).contains(&p.origin_offload));
        }
        // Throttling caches to 30 % cannot improve the hit ratio.
        assert!(
            points[0].hit_ratio >= points[1].hit_ratio,
            "full {} vs throttled {}",
            points[0].hit_ratio,
            points[1].hit_ratio
        );
        // The default single-shell campaign reports one shell slice.
        assert_eq!(points[0].report.per_shell.len(), 1);
    }

    #[test]
    fn campaign_spans_all_starlink_shells() {
        let cfg = TrafficCampaignConfig {
            duty_fractions: vec![1.0],
            shells: vec![0, 1, 2, 3],
            ..quick_cfg()
        };
        let points = traffic_campaign(&cfg, &FaultSchedule::none());
        assert_eq!(points.len(), 1);
        let report = &points[0].report;
        assert_eq!(report.requests, cfg.requests);
        assert_eq!(report.per_shell.len(), 4);
        assert_eq!(
            report.per_shell.iter().map(|s| s.inserts).sum::<u64>(),
            report.inserts
        );
        assert!(
            report.per_shell.iter().filter(|s| s.inserts > 0).count() >= 2,
            "full-constellation demand must fill multiple shells: {:?}",
            report.per_shell
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_shell_index_panics() {
        starlink_shell_scenarios(&[7], &FaultSchedule::none());
    }
}
