//! The geo-blocking experiment: how much of a country's licensed content
//! becomes unreachable behind a foreign PoP — and how SpaceCDN fixes it.
//!
//! Over Starlink the enforcement point sees the PoP's IP; a SpaceCDN
//! serving from orbit knows the terminal's physical location (Starlink
//! terminals are GPS-pinned), so licensing can be enforced against the
//! user's true country.

use serde::Serialize;
use spacecdn_terra::city::cities;
use spacecdn_terra::geoblock::{check_access, AccessOutcome, LicenseScope};
use spacecdn_terra::region::Region;
use spacecdn_terra::starlink::{covered_countries, home_pop};

/// Per-country geo-blocking summary.
#[derive(Debug, Clone, Serialize)]
pub struct GeoblockStats {
    /// Country code.
    pub cc: &'static str,
    /// PoP country its subscribers egress in.
    pub pop_cc: &'static str,
    /// Whether national-scope content is unwarrantedly blocked on Starlink.
    pub national_content_blocked: bool,
    /// Whether region-scope content is unwarrantedly blocked on Starlink.
    pub regional_content_blocked: bool,
    /// Whether the user gains wrong access to the PoP country's national
    /// content (the mirror error).
    pub gains_foreign_access: bool,
}

/// Evaluate geo-blocking for every covered country: each country's users
/// request (a) their own national content and (b) their region's content,
/// over Starlink (egress = PoP) — terrestrial users trivially pass both.
pub fn geoblock_survey() -> Vec<GeoblockStats> {
    let mut out = Vec::new();
    for cc in covered_countries() {
        // Representative city: the first (typically largest) in the country.
        let Some(city) = cities().iter().find(|c| c.cc == cc) else {
            continue;
        };
        let pop = home_pop(cc, city.position());
        let national = LicenseScope::Countries(vec![cc]);
        let regional = LicenseScope::Region(city.region);
        let foreign_national = LicenseScope::Countries(vec![pop.city.cc]);

        let check = |scope: &LicenseScope| {
            check_access(scope, cc, city.region, pop.city.cc, pop.city.region)
        };
        out.push(GeoblockStats {
            cc,
            pop_cc: pop.city.cc,
            national_content_blocked: check(&national) == AccessOutcome::UnwarrantedlyBlocked,
            regional_content_blocked: check(&regional) == AccessOutcome::UnwarrantedlyBlocked,
            gains_foreign_access: check(&foreign_national) == AccessOutcome::WronglyAllowed,
        });
    }
    out
}

/// With SpaceCDN, enforcement uses the terminal's physical country: no
/// unwarranted blocks by construction. This helper expresses that check so
/// experiments and docs can assert it rather than assume it.
pub fn spacecdn_outcome(scope: &LicenseScope, user_cc: &str, user_region: Region) -> AccessOutcome {
    check_access(scope, user_cc, user_region, user_cc, user_region)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_covers_fleet() {
        let survey = geoblock_survey();
        assert!(survey.len() >= 50, "got {}", survey.len());
    }

    #[test]
    fn far_homed_countries_lose_national_content() {
        let survey = geoblock_survey();
        for cc in ["MZ", "KE", "ZM", "CY", "HT"] {
            let s = survey.iter().find(|s| s.cc == cc).expect("surveyed");
            assert!(
                s.national_content_blocked,
                "{cc} egresses in {} and should lose national content",
                s.pop_cc
            );
        }
    }

    #[test]
    fn pop_local_countries_keep_national_content() {
        let survey = geoblock_survey();
        for cc in ["ES", "JP", "US", "NG", "DE"] {
            let s = survey.iter().find(|s| s.cc == cc).expect("surveyed");
            assert!(
                !s.national_content_blocked,
                "{cc} has a domestic PoP ({})",
                s.pop_cc
            );
        }
    }

    #[test]
    fn cross_region_homing_loses_regional_content() {
        let survey = geoblock_survey();
        // Mozambique (Africa) egresses in Germany (Western Europe).
        let mz = survey.iter().find(|s| s.cc == "MZ").unwrap();
        assert!(mz.regional_content_blocked);
        assert!(mz.gains_foreign_access, "and wrongly gains German content");
        // Eswatini egresses in Lagos: same region, so regional content
        // survives even though national content does not.
        let sz = survey.iter().find(|s| s.cc == "SZ").unwrap();
        assert!(!sz.regional_content_blocked);
        assert!(sz.national_content_blocked);
    }

    #[test]
    fn spacecdn_never_unwarrantedly_blocks() {
        let survey = geoblock_survey();
        for s in &survey {
            let city = cities().iter().find(|c| c.cc == s.cc).unwrap();
            let national = LicenseScope::Countries(vec![s.cc]);
            assert_eq!(
                spacecdn_outcome(&national, s.cc, city.region),
                AccessOutcome::Allowed,
                "{}",
                s.cc
            );
        }
    }

    #[test]
    fn blocked_fraction_is_substantial() {
        // The headline number for the experiment binary: a large share of
        // covered countries lose their own national content over Starlink.
        let survey = geoblock_survey();
        let blocked = survey.iter().filter(|s| s.national_content_blocked).count();
        let frac = blocked as f64 / survey.len() as f64;
        assert!(frac > 0.5, "blocked fraction {frac}");
    }
}
