//! RTT time series: the xeoverse-style "watch a user's latency evolve"
//! view of the constellation.
//!
//! The bent-pipe RTT is not a number but a sawtooth: it drifts as serving
//! satellites move and jumps at handovers (§2's 15-second reconfiguration
//! cadence operates within passes; pass-to-pass handovers dominate the
//! shape). Traces feed jitter statistics and handover counts.

use serde::Serialize;
use spacecdn_core::network::LsnNetwork;
use spacecdn_des::Percentiles;
use spacecdn_geo::{Geodetic, SimDuration, SimTime};
use spacecdn_lsn::FaultPlan;
use spacecdn_orbit::SatIndex;
use spacecdn_terra::starlink::home_pop;

/// One point of an RTT trace.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TracePoint {
    /// Seconds since trace start.
    pub t_s: f64,
    /// Bent-pipe RTT to the PoP, ms.
    pub rtt_ms: f64,
    /// The user's serving satellite at this instant.
    pub serving_sat: u32,
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Serialize)]
pub struct TraceStats {
    /// Number of serving-satellite changes.
    pub handovers: u32,
    /// Mean seconds between handovers.
    pub mean_time_between_handovers_s: f64,
    /// Median RTT, ms.
    pub median_rtt_ms: f64,
    /// p95 − p5 RTT spread, ms (the sawtooth amplitude).
    pub rtt_spread_ms: f64,
    /// Largest single-step RTT jump, ms.
    pub max_jump_ms: f64,
}

/// Trace a user's bent-pipe RTT over `duration`, sampling every `step`.
pub fn rtt_trace(
    net: &LsnNetwork,
    user: Geodetic,
    cc: &str,
    start: SimTime,
    duration: SimDuration,
    step: SimDuration,
) -> Vec<TracePoint> {
    assert!(step > SimDuration::ZERO, "sampling step must be positive");
    let pop = home_pop(cc, user);
    let mut out = Vec::new();
    let mut t = start;
    let end = start + duration;
    while t <= end {
        let snap = net.snapshot(t, &FaultPlan::none());
        if let (Some((sat, _)), Some(path)) = (
            snap.overhead_sat(user),
            snap.starlink_rtt_to_pop(user, &pop, None),
        ) {
            out.push(TracePoint {
                t_s: (t - start).as_secs_f64(),
                rtt_ms: path.rtt.ms(),
                serving_sat: sat_id(sat),
            });
        }
        t += step;
    }
    out
}

fn sat_id(s: SatIndex) -> u32 {
    s.0
}

/// Summarise a trace.
pub fn trace_stats(trace: &[TracePoint]) -> Option<TraceStats> {
    if trace.len() < 2 {
        return None;
    }
    let mut handovers = 0u32;
    let mut max_jump: f64 = 0.0;
    let mut rtts = Percentiles::new();
    rtts.add(trace[0].rtt_ms);
    for w in trace.windows(2) {
        if w[0].serving_sat != w[1].serving_sat {
            handovers += 1;
        }
        max_jump = max_jump.max((w[1].rtt_ms - w[0].rtt_ms).abs());
        rtts.add(w[1].rtt_ms);
    }
    let span_s = trace.last().expect("non-empty").t_s - trace[0].t_s;
    Some(TraceStats {
        handovers,
        mean_time_between_handovers_s: if handovers > 0 {
            span_s / handovers as f64
        } else {
            span_s
        },
        median_rtt_ms: rtts.median().expect("samples"),
        rtt_spread_ms: rtts.quantile(0.95).expect("samples")
            - rtts.quantile(0.05).expect("samples"),
        max_jump_ms: max_jump,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_for(city: (f64, f64), cc: &str, minutes: u64) -> Vec<TracePoint> {
        let net = LsnNetwork::starlink();
        rtt_trace(
            &net,
            Geodetic::ground(city.0, city.1),
            cc,
            SimTime::EPOCH,
            SimDuration::from_mins(minutes),
            SimDuration::from_secs(15),
        )
    }

    #[test]
    fn trace_is_continuous_and_plausible() {
        let trace = trace_for((40.42, -3.70), "ES", 20);
        assert!(trace.len() >= 75, "got {} points", trace.len());
        for p in &trace {
            assert!((25.0..80.0).contains(&p.rtt_ms), "ES rtt {}", p.rtt_ms);
        }
    }

    #[test]
    fn handover_cadence_is_minutes() {
        let trace = trace_for((51.5, -0.13), "GB", 30);
        let stats = trace_stats(&trace).expect("stats");
        assert!(stats.handovers >= 2, "{stats:?}");
        assert!(
            (30.0..600.0).contains(&stats.mean_time_between_handovers_s),
            "{stats:?}"
        );
    }

    #[test]
    fn far_homed_trace_rides_higher_with_bigger_swings() {
        let es = trace_stats(&trace_for((40.42, -3.70), "ES", 20)).unwrap();
        let mz = trace_stats(&trace_for((-25.97, 32.57), "MZ", 20)).unwrap();
        assert!(
            mz.median_rtt_ms > es.median_rtt_ms * 2.5,
            "{mz:?} vs {es:?}"
        );
        assert!(mz.rtt_spread_ms >= es.rtt_spread_ms, "{mz:?} vs {es:?}");
    }

    #[test]
    fn stats_of_trivial_traces() {
        assert!(trace_stats(&[]).is_none());
        assert!(trace_stats(&[TracePoint {
            t_s: 0.0,
            rtt_ms: 30.0,
            serving_sat: 1
        }])
        .is_none());
    }
}
