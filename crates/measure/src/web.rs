//! NetMet-style web browsing measurements (Figs 4 and 5).
//!
//! The browser plugin records per-fetch timing: DNS lookup, TCP connect,
//! TLS negotiation, HTTP response time (request → first byte, "HRT"), and
//! first contentful paint (FCP). We model a landing-page fetch over either
//! access network:
//!
//! ```text
//! DNS      ≈ ½·RTT + resolver processing   (resolver sits past the PoP /
//!                                            at the ISP edge)
//! TCP      ≈ 1·RTT
//! TLS 1.3  ≈ 1·RTT
//! HRT      ≈ 1·RTT + server think time
//! HTML     ≈ slow-start rounds·RTT + bytes/bandwidth
//! FCP      ≈ DNS + TCP + TLS + HRT + HTML + critical-object fetches
//!            + render time
//! ```
//!
//! Every RTT exchange multiplies the access-latency gap, which is why the
//! paper's Figure 5 sees a ~200 ms FCP penalty on Starlink even in
//! PoP-local countries where the raw RTT gap is ~25 ms.

use crate::aim::IspKind;
use serde::Serialize;
use spacecdn_core::network::{LsnNetwork, LsnSnapshot};
use spacecdn_des::Percentiles;
use spacecdn_engine::par_map;
use spacecdn_geo::{DetRng, SimTime};
use spacecdn_lsn::{BufferbloatModel, FaultPlan};
use spacecdn_terra::cdn::{anycast_select, cdn_sites};
use spacecdn_terra::city::{cities, City};
use spacecdn_terra::region::country_last_mile_factor;
use spacecdn_terra::starlink::home_pop;

/// Structural model of a landing page.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PageModel {
    /// HTML document size, bytes.
    pub html_bytes: u64,
    /// Render-blocking objects on the critical path.
    pub critical_objects: usize,
    /// Total bytes of those objects.
    pub critical_bytes: u64,
    /// Parallel connections the browser uses.
    pub concurrency: usize,
    /// Server think time before the first byte, ms.
    pub server_think_ms: f64,
    /// Client-side parse/layout/paint time, ms.
    pub render_ms: f64,
}

impl PageModel {
    /// A Tranco-top-20-style landing page (the NetMet workload).
    pub fn typical_landing_page() -> Self {
        PageModel {
            html_bytes: 60_000,
            critical_objects: 6,
            critical_bytes: 900_000,
            concurrency: 6,
            server_think_ms: 45.0,
            render_ms: 280.0,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Experiment seed.
    pub seed: u64,
    /// Constellation epochs to sample.
    pub epochs: usize,
    /// Seconds between epochs.
    pub epoch_spacing_s: u64,
    /// Page fetches per city per ISP per epoch.
    pub fetches_per_epoch: usize,
    /// Access-link utilisation (drives bufferbloat on the Starlink side).
    pub utilization: f64,
    /// Effective downlink bandwidth per ISP, Mbps.
    pub starlink_mbps: f64,
    /// Terrestrial downlink bandwidth, Mbps.
    pub terrestrial_mbps: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            seed: 42,
            epochs: 4,
            epoch_spacing_s: 191,
            fetches_per_epoch: 6,
            utilization: 0.2,
            starlink_mbps: 80.0,
            terrestrial_mbps: 150.0,
        }
    }
}

/// One simulated page fetch (one NetMet record).
#[derive(Debug, Clone, Serialize)]
pub struct WebMeasurement {
    /// Client city.
    pub city: &'static str,
    /// Country code.
    pub cc: &'static str,
    /// Access network.
    pub isp: IspKind,
    /// DNS lookup time, ms.
    pub dns_ms: f64,
    /// TCP connect time, ms.
    pub connect_ms: f64,
    /// TLS negotiation time, ms.
    pub tls_ms: f64,
    /// HTTP response time (request → first byte), ms.
    pub hrt_ms: f64,
    /// First contentful paint, ms.
    pub fcp_ms: f64,
}

/// TCP slow-start rounds needed to move `bytes` (initcwnd 10 × MSS 1460).
fn slow_start_rounds(bytes: u64) -> f64 {
    let initial_window = 10.0 * 1460.0;
    ((bytes as f64 / initial_window) + 1.0)
        .log2()
        .ceil()
        .max(1.0)
}

/// Simulated page fetches (stable: one per deterministic campaign fetch).
static WEB_FETCHES: spacecdn_telemetry::LazyCounter =
    spacecdn_telemetry::LazyCounter::stable("measure.web.fetches");

/// Timing of one page fetch given an access RTT and bandwidth.
fn fetch_timing(page: &PageModel, rtt_ms: f64, bandwidth_mbps: f64) -> (f64, f64, f64, f64, f64) {
    WEB_FETCHES.incr();
    let bw_bytes_per_ms = bandwidth_mbps * 1e6 / 8.0 / 1e3;
    let dns = 0.5 * rtt_ms + 3.0;
    let tcp = rtt_ms;
    let tls = rtt_ms;
    let hrt = rtt_ms + page.server_think_ms;
    let html =
        slow_start_rounds(page.html_bytes) * rtt_ms + page.html_bytes as f64 / bw_bytes_per_ms;
    let critical_rounds = (page.critical_objects as f64 / page.concurrency as f64).ceil();
    let critical = critical_rounds * rtt_ms + page.critical_bytes as f64 / bw_bytes_per_ms;
    let fcp = dns + tcp + tls + hrt + html + critical + page.render_ms;
    (dns, tcp, tls, hrt, fcp)
}

/// Run the browsing campaign for the given countries; returns one record
/// per (city, ISP, epoch, fetch).
///
/// The (epoch × city) fan-out runs on the experiment engine; each task's
/// RNG stream is derived from `(seed, "web/{city}/{epoch}")` and results
/// are flattened in the sequential loop's order, so output is identical at
/// any thread count.
pub fn browse_campaign(
    country_codes: &[&str],
    page: &PageModel,
    config: &WebConfig,
) -> Vec<WebMeasurement> {
    let net = LsnNetwork::starlink();
    let sites = cdn_sites();
    let fiber = *net.fiber();
    let bloat = BufferbloatModel::default();

    let snapshots: Vec<LsnSnapshot<'_>> = (0..config.epochs)
        .map(|epoch| {
            let t = SimTime::from_secs(epoch as u64 * config.epoch_spacing_s);
            net.snapshot(t, &FaultPlan::none())
        })
        .collect();
    let mut tasks: Vec<(usize, &City)> = Vec::new();
    for epoch in 0..config.epochs {
        for city in cities() {
            if country_codes.contains(&city.cc) {
                tasks.push((epoch, city));
            }
        }
    }

    let per_task = par_map(&tasks, |_, &(epoch, city)| {
        let snap = &snapshots[epoch];
        let mut out = Vec::new();
        let mut rng = DetRng::new(config.seed, &format!("web/{}/{}", city.name, epoch));
        let (terr_site, _) = anycast_select(city.position(), city.region, &sites, &fiber)
            .expect("site list non-empty");
        let pop = home_pop(city.cc, city.position());
        let (_, pop_to_site) = anycast_select(pop.position(), pop.city.region, &sites, &fiber)
            .expect("site list non-empty");
        let star_base = snap
            .starlink_rtt_to_pop(city.position(), &pop, None)
            .map(|p| p.rtt.ms() + pop_to_site.ms());
        let terr_base = fiber
            .wan_rtt(
                city.position(),
                city.region,
                terr_site.position(),
                terr_site.region(),
            )
            .ms();
        let lm_factor = country_last_mile_factor(city.cc);
        let access = net.access();

        for _ in 0..config.fetches_per_epoch {
            // Terrestrial fetch.
            let lm = rng.log_normal_median(
                city.region.profile().last_mile_median_ms * lm_factor,
                city.region.profile().last_mile_sigma,
            );
            let t_rtt = terr_base + lm;
            let (dns, tcp, tls, hrt, fcp) = fetch_timing(page, t_rtt, config.terrestrial_mbps);
            out.push(WebMeasurement {
                city: city.name,
                cc: city.cc,
                isp: IspKind::Terrestrial,
                dns_ms: dns,
                connect_ms: tcp,
                tls_ms: tls,
                hrt_ms: hrt,
                fcp_ms: fcp,
            });

            // Starlink fetch: re-jittered scheduling + bufferbloat.
            if let Some(base) = star_base {
                let sched = rng.log_normal_median(access.ka_sched_median_ms, access.ka_sched_sigma);
                let queueing = bloat.sample_delay(config.utilization, &mut rng);
                let s_rtt = base - access.ka_sched_median_ms + sched + queueing.ms();
                let (dns, tcp, tls, hrt, fcp) = fetch_timing(page, s_rtt, config.starlink_mbps);
                out.push(WebMeasurement {
                    city: city.name,
                    cc: city.cc,
                    isp: IspKind::Starlink,
                    dns_ms: dns,
                    connect_ms: tcp,
                    tls_ms: tls,
                    hrt_ms: hrt,
                    fcp_ms: fcp,
                });
            }
        }
        out
    });
    per_task.into_iter().flatten().collect()
}

/// Figure 4's series for one country: the paired per-fetch HRT difference
/// (Starlink − terrestrial), as a sorted sample set.
pub fn hrt_difference(records: &[WebMeasurement], cc: &str) -> Percentiles {
    let star: Vec<f64> = records
        .iter()
        .filter(|r| r.cc == cc && r.isp == IspKind::Starlink)
        .map(|r| r.hrt_ms)
        .collect();
    let terr: Vec<f64> = records
        .iter()
        .filter(|r| r.cc == cc && r.isp == IspKind::Terrestrial)
        .map(|r| r.hrt_ms)
        .collect();
    let mut p = Percentiles::new();
    for (s, t) in star.iter().zip(&terr) {
        p.add(s - t);
    }
    p
}

/// Figure 5's series: FCP sample set for one (country, ISP).
pub fn fcp_distribution(records: &[WebMeasurement], cc: &str, isp: IspKind) -> Percentiles {
    let mut p = Percentiles::new();
    for r in records.iter().filter(|r| r.cc == cc && r.isp == isp) {
        p.add(r.fcp_ms);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> (Vec<WebMeasurement>, PageModel) {
        let page = PageModel::typical_landing_page();
        let cfg = WebConfig {
            epochs: 3,
            fetches_per_epoch: 4,
            ..WebConfig::default()
        };
        let recs = browse_campaign(&["NG", "KE", "DE", "GB"], &page, &cfg);
        (recs, page)
    }

    #[test]
    fn slow_start_round_counts() {
        assert_eq!(slow_start_rounds(1_000), 1.0);
        assert_eq!(slow_start_rounds(14_600), 1.0);
        assert_eq!(slow_start_rounds(29_200), 2.0);
        assert!(slow_start_rounds(1_000_000) >= 6.0);
    }

    #[test]
    fn timing_components_ordered() {
        let page = PageModel::typical_landing_page();
        let (dns, tcp, tls, hrt, fcp) = fetch_timing(&page, 30.0, 100.0);
        assert!(dns < hrt);
        assert_eq!(tcp, 30.0);
        assert_eq!(tls, 30.0);
        assert!(hrt > 70.0 && hrt < 80.0);
        assert!(fcp > hrt + page.render_ms);
    }

    #[test]
    fn fcp_decreases_with_bandwidth_and_rtt() {
        let page = PageModel::typical_landing_page();
        let (.., fcp_slow) = fetch_timing(&page, 60.0, 20.0);
        let (.., fcp_fast) = fetch_timing(&page, 10.0, 200.0);
        assert!(fcp_fast < fcp_slow);
    }

    #[test]
    fn fig4_nigeria_crossover() {
        let (recs, _) = quick();
        // Nigeria: Starlink is mostly FASTER (negative differences).
        let mut ng = hrt_difference(&recs, "NG");
        assert!(
            ng.median().unwrap() < 0.0,
            "NG median Δ {}",
            ng.median().unwrap()
        );
        // Germany and the UK: terrestrial faster by ~15-60 ms.
        for cc in ["DE", "GB"] {
            let mut d = hrt_difference(&recs, cc);
            let m = d.median().unwrap();
            assert!((10.0..70.0).contains(&m), "{cc} median Δ {m}");
        }
        // Kenya: terrestrial faster by large margins (~100+ ms).
        let mut ke = hrt_difference(&recs, "KE");
        assert!(ke.median().unwrap() > 70.0, "KE Δ {}", ke.median().unwrap());
    }

    #[test]
    fn fig5_fcp_gap_in_de_and_gb() {
        let (recs, _) = quick();
        for cc in ["DE", "GB"] {
            let mut star = fcp_distribution(&recs, cc, IspKind::Starlink);
            let mut terr = fcp_distribution(&recs, cc, IspKind::Terrestrial);
            let gap = star.median().unwrap() - terr.median().unwrap();
            // Paper: median FCP higher by ≈200 ms on Starlink.
            assert!((100.0..400.0).contains(&gap), "{cc} FCP gap {gap}");
            // Absolute medians are sub-2s (Fig 5's axis).
            assert!(terr.median().unwrap() < 1200.0);
            assert!(star.median().unwrap() < 2000.0);
        }
    }

    #[test]
    fn bufferbloat_raises_loaded_latency() {
        let page = PageModel::typical_landing_page();
        let idle_cfg = WebConfig {
            utilization: 0.0,
            epochs: 2,
            fetches_per_epoch: 6,
            ..WebConfig::default()
        };
        let loaded_cfg = WebConfig {
            utilization: 0.95,
            epochs: 2,
            fetches_per_epoch: 6,
            ..WebConfig::default()
        };
        let idle = browse_campaign(&["DE"], &page, &idle_cfg);
        let loaded = browse_campaign(&["DE"], &page, &loaded_cfg);
        let med = |recs: &[WebMeasurement]| {
            let mut p = Percentiles::new();
            for r in recs.iter().filter(|r| r.isp == IspKind::Starlink) {
                p.add(r.hrt_ms);
            }
            p.median().unwrap()
        };
        // §3.2: > 200 ms under active downloads.
        assert!(med(&loaded) > med(&idle) + 100.0);
    }

    #[test]
    fn campaign_deterministic() {
        let page = PageModel::typical_landing_page();
        let cfg = WebConfig::default();
        let a = browse_campaign(&["GB"], &page, &cfg);
        let b = browse_campaign(&["GB"], &page, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fcp_ms, y.fcp_ms);
        }
    }
}
