//! Output helpers shared by experiment binaries.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Render rows as an aligned plain-text table. `headers.len()` must match
/// every row's length.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Serialise a value as pretty JSON into `path`.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")
}

/// Render a CDF as (value, probability) rows suitable for plotting.
pub fn cdf_rows(points: &[(f64, f64)]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|(v, p)| vec![format!("{v:.2}"), format!("{p:.4}")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["country", "rtt"],
            &[
                vec!["Mozambique".into(), "138.7".into()],
                vec!["ES".into(), "33".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("country"));
        assert!(lines[2].starts_with("Mozambique"));
        // Columns align: "rtt" starts at the same offset in all rows.
        let col = lines[2].find("138.7").unwrap();
        assert_eq!(lines[3].find("33").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let _ = format_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("spacecdn-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn cdf_rows_format() {
        let rows = cdf_rows(&[(10.0, 0.0), (20.5, 1.0)]);
        assert_eq!(rows[0], vec!["10.00", "0.0000"]);
        assert_eq!(rows[1], vec!["20.50", "1.0000"]);
    }
}
