//! DASH streaming sessions as a discrete-event simulation.
//!
//! §3.2 warns that "latency-sensitive CDN-delivered web applications, such
//! as live video streaming … would suffer even further as Starlink suffers
//! from significant bufferbloat", and §4 proposes striping video across
//! satellites. This module quantifies both: a fluid-buffer DASH player
//! driven by the workspace's event scheduler downloads segments serially
//! over a parameterised network path and reports startup delay, rebuffering
//! and mean buffer level.

use serde::Serialize;
use spacecdn_des::{run_until, Scheduler};
use spacecdn_geo::{DetRng, SimDuration, SimTime};

/// The network as the player sees it.
#[derive(Debug, Clone, Copy)]
pub struct StreamPath {
    /// Request round-trip time, ms (per segment request).
    pub rtt_ms: f64,
    /// Sustained download throughput, Mbit/s.
    pub throughput_mbps: f64,
    /// Log-normal sigma of per-segment throughput variation.
    pub throughput_sigma: f64,
}

impl StreamPath {
    /// A far-homed Starlink bent-pipe under load: high RTT, bufferbloat
    /// throughput swings.
    pub fn starlink_far_homed() -> Self {
        StreamPath {
            rtt_ms: 150.0,
            throughput_mbps: 40.0,
            throughput_sigma: 0.5,
        }
    }

    /// A SpaceCDN stripe served from the overhead satellite.
    pub fn spacecdn_overhead() -> Self {
        StreamPath {
            rtt_ms: 18.0,
            throughput_mbps: 60.0,
            throughput_sigma: 0.3,
        }
    }
}

/// Player configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlayerConfig {
    /// Segment playback duration.
    pub segment_duration: SimDuration,
    /// Segment size, bytes (CBR).
    pub segment_bytes: u64,
    /// Number of segments in the session.
    pub segments: usize,
    /// Buffered seconds required before playback starts/resumes.
    pub startup_buffer_s: f64,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            segment_duration: SimDuration::from_secs(4),
            segment_bytes: 2_500_000,
            segments: 150, // a 10-minute session
            startup_buffer_s: 8.0,
        }
    }
}

/// Session quality-of-experience metrics.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SessionReport {
    /// Time from first request to first frame, seconds.
    pub startup_delay_s: f64,
    /// Number of rebuffering events after startup.
    pub rebuffer_events: u32,
    /// Total stalled time after startup, seconds.
    pub rebuffer_total_s: f64,
    /// Mean buffer level while playing, seconds.
    pub mean_buffer_s: f64,
    /// Wall-clock session length, seconds.
    pub session_s: f64,
}

/// Player state evolved by the event handler (fluid buffer model).
struct Player {
    cfg: PlayerConfig,
    path: StreamPath,
    buffer_s: f64,
    playing: bool,
    started_at: Option<f64>,
    last_event_s: f64,
    rebuffer_events: u32,
    rebuffer_total_s: f64,
    buffer_integral: f64,
    playing_time_s: f64,
    downloaded: usize,
    finished_at: f64,
}

/// Events in the streaming simulation.
enum Ev {
    /// Segment `idx` finished downloading.
    SegmentArrived(usize),
}

impl Player {
    /// Advance the fluid model from `last_event_s` to `now_s`: drain the
    /// buffer if playing, record stalls if it runs dry.
    fn advance_to(&mut self, now_s: f64) {
        let dt = (now_s - self.last_event_s).max(0.0);
        if self.playing {
            if self.buffer_s >= dt {
                self.buffer_integral += dt * (self.buffer_s - dt / 2.0);
                self.playing_time_s += dt;
                self.buffer_s -= dt;
            } else {
                // Played out the buffer partway through the interval.
                let play = self.buffer_s;
                self.buffer_integral += play * play / 2.0;
                self.playing_time_s += play;
                self.buffer_s = 0.0;
                self.playing = false;
                self.rebuffer_events += 1;
                self.rebuffer_total_s += dt - play;
            }
        } else if self.started_at.is_some() {
            // Stalled (post-startup): waiting counts as rebuffering; the
            // event counter was incremented when the stall began.
            self.rebuffer_total_s += dt;
        }
        self.last_event_s = now_s;
    }
}

/// Time to fetch one segment: a request RTT plus transfer at a sampled
/// throughput.
fn fetch_time(path: &StreamPath, bytes: u64, rng: &mut DetRng) -> SimDuration {
    let mbps = rng
        .log_normal_median(path.throughput_mbps, path.throughput_sigma)
        .max(0.5);
    let transfer_s = bytes as f64 * 8.0 / (mbps * 1e6);
    SimDuration::from_secs_f64(path.rtt_ms / 1e3 + transfer_s)
}

/// Run one streaming session and report its quality of experience.
pub fn simulate_session(path: StreamPath, cfg: PlayerConfig, seed: u64) -> SessionReport {
    let mut rng = DetRng::new(seed, "streaming");
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let mut player = Player {
        cfg,
        path,
        buffer_s: 0.0,
        playing: false,
        started_at: None,
        last_event_s: 0.0,
        rebuffer_events: 0,
        rebuffer_total_s: 0.0,
        buffer_integral: 0.0,
        playing_time_s: 0.0,
        downloaded: 0,
        finished_at: 0.0,
    };

    // Kick off the first download.
    let first = fetch_time(&path, cfg.segment_bytes, &mut rng);
    sched.schedule_at(SimTime::EPOCH + first, Ev::SegmentArrived(0));

    let horizon = SimTime::from_secs(24 * 3600); // generous upper bound
    run_until(&mut player, &mut sched, horizon, |p, sched, at, ev| {
        let Ev::SegmentArrived(idx) = ev;
        let now_s = at.as_secs_f64();
        let was_stalled = p.started_at.is_some() && !p.playing;
        p.advance_to(now_s);
        p.buffer_s += p.cfg.segment_duration.as_secs_f64();
        p.downloaded = idx + 1;

        // Start or resume playback once the buffer target is met.
        let target = p.cfg.startup_buffer_s.min(
            // Can't require more than what remains.
            (p.cfg.segments - idx) as f64 * p.cfg.segment_duration.as_secs_f64(),
        );
        if !p.playing && p.buffer_s >= target {
            p.playing = true;
            if p.started_at.is_none() {
                p.started_at = Some(now_s);
            } else if was_stalled {
                // Resumed after a stall; time was already accounted.
            }
        }

        if p.downloaded < p.cfg.segments {
            let mut local = DetRng::new(seed ^ idx as u64, "stream-seg");
            let next = fetch_time(&p.path, p.cfg.segment_bytes, &mut local);
            sched.schedule_after(next, Ev::SegmentArrived(idx + 1));
        } else {
            p.finished_at = now_s + p.buffer_s; // drain out
            p.playing_time_s += p.buffer_s;
            p.buffer_integral += p.buffer_s * p.buffer_s / 2.0;
            p.buffer_s = 0.0;
        }
    });

    SessionReport {
        startup_delay_s: player.started_at.unwrap_or(f64::INFINITY),
        rebuffer_events: player.rebuffer_events,
        rebuffer_total_s: player.rebuffer_total_s,
        mean_buffer_s: if player.playing_time_s > 0.0 {
            player.buffer_integral / player.playing_time_s
        } else {
            0.0
        },
        session_s: player.finished_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_plays_cleanly() {
        let report = simulate_session(StreamPath::spacecdn_overhead(), PlayerConfig::default(), 1);
        assert!(
            report.startup_delay_s < 4.0,
            "startup {}",
            report.startup_delay_s
        );
        assert_eq!(report.rebuffer_events, 0, "{report:?}");
        assert!(report.session_s >= 600.0, "must play the full 10 min");
    }

    #[test]
    fn starved_path_rebuffers() {
        // Throughput below the bitrate (5 Mbit/s stream over ~4 Mbit/s):
        // the player must stall repeatedly.
        let path = StreamPath {
            rtt_ms: 150.0,
            throughput_mbps: 4.0,
            throughput_sigma: 0.2,
        };
        let report = simulate_session(path, PlayerConfig::default(), 2);
        assert!(report.rebuffer_events > 3, "{report:?}");
        assert!(report.rebuffer_total_s > 30.0, "{report:?}");
        assert!(report.session_s > 700.0, "session stretches past realtime");
    }

    #[test]
    fn spacecdn_beats_far_homed_bent_pipe() {
        let cfg = PlayerConfig::default();
        let space = simulate_session(StreamPath::spacecdn_overhead(), cfg, 3);
        let bent = simulate_session(StreamPath::starlink_far_homed(), cfg, 3);
        assert!(space.startup_delay_s < bent.startup_delay_s);
        assert!(space.rebuffer_total_s <= bent.rebuffer_total_s);
    }

    #[test]
    fn startup_scales_with_rtt() {
        let slow = StreamPath {
            rtt_ms: 300.0,
            throughput_mbps: 100.0,
            throughput_sigma: 0.0,
        };
        let fast = StreamPath {
            rtt_ms: 20.0,
            throughput_mbps: 100.0,
            throughput_sigma: 0.0,
        };
        let cfg = PlayerConfig::default();
        let s = simulate_session(slow, cfg, 4);
        let f = simulate_session(fast, cfg, 4);
        assert!(s.startup_delay_s > f.startup_delay_s + 0.4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_session(StreamPath::starlink_far_homed(), PlayerConfig::default(), 9);
        let b = simulate_session(StreamPath::starlink_far_homed(), PlayerConfig::default(), 9);
        assert_eq!(a.startup_delay_s, b.startup_delay_s);
        assert_eq!(a.rebuffer_total_s, b.rebuffer_total_s);
    }

    #[test]
    fn session_covers_all_segments() {
        let report = simulate_session(StreamPath::spacecdn_overhead(), PlayerConfig::default(), 5);
        // 150 segments × 4 s = 600 s of content; the session must last at
        // least that long (plus startup).
        assert!(report.session_s >= 600.0);
        assert!(report.mean_buffer_s > 0.0);
    }
}
