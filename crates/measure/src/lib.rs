//! Measurement harnesses: synthetic substitutes for the paper's two data
//! sources, plus the §4/§5 simulation drivers.
//!
//! The paper's analysis pipeline consumes (a) Cloudflare AIM speed tests and
//! (b) NetMet browser telemetry. Neither dataset is reproducible from
//! scratch (crowdsourced clients, volunteer dishes, LEOScope probes), so
//! this crate *generates* statistically equivalent records from the
//! workspace's network models and then runs the same aggregations the paper
//! runs:
//!
//! - [`aim`] — speed-test campaigns over Starlink and terrestrial access,
//!   per-city min/median RTTs to the anycast-optimal CDN (Table 1, Fig 2,
//!   Fig 3);
//! - [`web`] — page-fetch timing (DNS/TCP/TLS/HTTP), HTTP response time
//!   and first-contentful-paint (Fig 4, Fig 5);
//! - [`spacecdn`] — the §4 simulation drivers: hop-bounded retrieval CDFs
//!   (Fig 7) and duty-cycled cache latencies (Fig 8);
//! - [`traffic`] — the steady-state traffic campaign: request-driven cache
//!   warm-up, hit ratio, origin offload and latency CDFs per duty fraction;
//! - [`report`] — plain-text/JSON emitters shared by the experiment
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aim;
pub mod geoblock;
pub mod report;
pub mod spacecdn;
pub mod streaming;
pub mod trace;
pub mod traffic;
pub mod web;

pub use aim::{AimCampaign, AimConfig, CountryStats, IspKind};
pub use report::{format_table, write_json};
pub use spacecdn::{duty_cycle_experiment, hop_bound_experiment};
pub use traffic::{
    starlink_shell_scenarios, traffic_campaign, TrafficCampaignConfig, TrafficPoint,
};
pub use web::{PageModel, WebConfig, WebMeasurement};
