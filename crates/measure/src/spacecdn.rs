//! §4 simulation drivers: hop-bounded SpaceCDN retrieval (Figure 7) and
//! duty-cycled caches (Figure 8).

use spacecdn_core::duty_cycle::DutyCycler;
use spacecdn_core::network::{LsnNetwork, LsnSnapshot};
use spacecdn_core::placement::{PlacementPlan, PlacementStrategy};
use spacecdn_core::retrieval::{RetrievalRequest, RetrievalSource};
use spacecdn_des::Percentiles;
use spacecdn_engine::par_map;
use spacecdn_geo::{DetRng, Latency, SimDuration, SimTime};
use spacecdn_lsn::FaultSchedule;
use spacecdn_orbit::SatIndex;
use spacecdn_telemetry::LazyCounter;
use spacecdn_terra::cdn::{anycast_select, cdn_sites};
use spacecdn_terra::city::{cities, City};
use spacecdn_terra::starlink::{covered_countries, home_pop};
use std::collections::HashSet;

/// Per-campaign trial counters (stable: trial counts are fixed by the
/// experiment parameters, not by scheduling).
static FIG7_TRIALS: LazyCounter = LazyCounter::stable("measure.fig7.trials");
static FIG8_TRIALS: LazyCounter = LazyCounter::stable("measure.fig8.trials");
/// Fig 8 fetches that were *relayed* over ISLs to an active cache — the
/// duty-cycling cost the figure measures (stable).
static FIG8_RELAYS: LazyCounter = LazyCounter::stable("measure.fig8.relays");

/// Result of one hop-bound sweep point.
#[derive(Debug)]
pub struct HopBoundResult {
    /// The ISL hop budget (the paper sweeps 1/3/5/10).
    pub max_hops: u32,
    /// Fetch-latency samples for requests satisfied within the budget.
    pub latencies: Percentiles,
    /// Requests that missed every in-budget copy (served from ground,
    /// excluded from `latencies` — the figure conditions on "found within
    /// n hops").
    pub ground_fallbacks: usize,
    /// Observed hop counts of satisfied requests.
    pub hop_histogram: Vec<u32>,
}

/// Result of one duty-cycle sweep point.
#[derive(Debug)]
pub struct DutyCycleResult {
    /// Active cache fraction.
    pub fraction: f64,
    /// Fetch-latency samples.
    pub latencies: Percentiles,
}

/// Population-weighted sampler over cities in Starlink-covered countries.
fn covered_city_sampler() -> Vec<&'static City> {
    let covered = covered_countries();
    let mut pool = Vec::new();
    for c in cities() {
        if covered.contains(&c.cc) {
            // Weight by population bucket: one entry per ~2M people,
            // at least one.
            let copies = (c.population_k / 2000).max(1);
            for _ in 0..copies {
                pool.push(c);
            }
        }
    }
    pool
}

/// Pre-warm one epoch snapshot's routing cache with every source its
/// trials can touch: the overhead satellites of the sampler's cities
/// (each trial routes from the requesting city's overhead satellite and
/// nowhere else). Batched through the frontier-reuse kernel so one
/// scratch working set serves the whole epoch. Warmed tables are bitwise
/// identical to on-demand ones — this moves work, never changes results —
/// and the call is a no-op when the routing cache is disabled.
fn warm_epoch_sources(snap: &LsnSnapshot<'_>, pool: &[&'static City]) {
    let mut seen_city = HashSet::new();
    let mut seen_sat = HashSet::new();
    let mut sources: Vec<SatIndex> = Vec::new();
    for city in pool {
        if !seen_city.insert(city.name) {
            continue;
        }
        if let Some((sat, _)) = snap.overhead_sat(city.position()) {
            if seen_sat.insert(sat.0) {
                sources.push(sat);
            }
        }
    }
    snap.graph().warm_routing_cache(&sources);
}

/// Figure 7: fetch-latency distributions when content is found within
/// `max_hops` ISL hops, for each budget in `hop_bounds`.
///
/// Per trial: a random covered city requests an object whose copies are
/// placed with [`PlacementStrategy::CoverRadius`] for the budget; the fetch
/// resolves via the Figure 6 logic. Ground fallbacks (the random placement
/// left a coverage hole) are counted but excluded from the latency CDF, as
/// the figure conditions on in-space hits.
///
/// The fleet is degraded by `schedule`: each epoch's snapshot is built
/// from `schedule.plan_at(t)`, so outages, flaps and GSL failures move
/// with simulated time. A city whose sky goes dark (no servable
/// satellite) counts as a ground fallback. Pristine campaigns pass
/// [`FaultSchedule::none()`] — an empty timeline lowers to the empty plan
/// at every epoch (same snapshot-pool keys, same graphs), so results are
/// byte-identical to the historical schedule-less entry point.
pub fn hop_bound_experiment(
    hop_bounds: &[u32],
    trials_per_bound: usize,
    epochs: usize,
    seed: u64,
    schedule: &FaultSchedule,
) -> Vec<HopBoundResult> {
    let net = LsnNetwork::starlink();
    let pool = covered_city_sampler();
    let sites = cdn_sites();

    // The topology depends only on the epoch, never the hop bound: build
    // each epoch's snapshot once and share it (and its routing cache)
    // across every bound's tasks. The old loop rebuilt it per (bound,
    // epoch).
    let snapshots: Vec<LsnSnapshot<'_>> = (0..epochs)
        .map(|epoch| {
            let t = SimTime::from_secs(epoch as u64 * 157);
            net.snapshot(t, &schedule.plan_at(t))
        })
        .collect();
    par_map(&snapshots, |_, snap| warm_epoch_sources(snap, &pool));

    let mut tasks: Vec<(u32, usize)> = Vec::new();
    for &max_hops in hop_bounds {
        for epoch in 0..epochs {
            tasks.push((max_hops, epoch));
        }
    }
    // One task per (bound, epoch); RNG stream "fig7/{max_hops}/{epoch}" is
    // self-contained, so any thread interleaving reproduces the sequential
    // sample stream.
    let per_task = par_map(&tasks, |_, &(max_hops, epoch)| {
        let snap = &snapshots[epoch];
        let mut samples: Vec<f64> = Vec::new();
        let mut fallbacks = 0usize;
        let mut hops_seen: Vec<u32> = Vec::new();
        let mut rng = DetRng::new(seed, &format!("fig7/{max_hops}/{epoch}"));
        for _ in 0..trials_per_bound.div_ceil(epochs) {
            let city = *rng.choose(&pool).expect("pool non-empty");
            // Per-trial plan seed drawn from the task stream, so each trial
            // samples a fresh covering placement deterministically.
            let plan_seed = rng.index(u32::MAX as usize) as u64;
            let caches = PlacementPlan::builder(PlacementStrategy::CoverRadius { hops: max_hops })
                .seed(plan_seed)
                .build_single(net.constellation())
                .materialize(net.constellation());
            // Ground fallback: the regular Starlink-CDN path.
            let pop = home_pop(city.cc, city.position());
            let fallback = snap
                .starlink_rtt_to_pop(city.position(), &pop, None)
                .map(|p| {
                    let (_, pop_to_site) =
                        anycast_select(pop.position(), pop.city.region, &sites, net.fiber())
                            .expect("sites non-empty");
                    p.rtt + pop_to_site
                })
                .unwrap_or(Latency::from_ms(300.0));
            let req = RetrievalRequest::new(city.position())
                .hop_budget(max_hops)
                .ground_fallback(fallback)
                .graceful(false);
            FIG7_TRIALS.incr();
            let Some(out) = req
                .execute(snap.graph(), net.access(), &caches, Some(&mut rng))
                .outcome
            else {
                // Dead zone under the fault schedule: no satellite serves
                // the city at all, so the request rides the ground path.
                fallbacks += 1;
                continue;
            };
            match out.source {
                RetrievalSource::Ground => fallbacks += 1,
                RetrievalSource::Overhead => {
                    samples.push(out.rtt.ms());
                    hops_seen.push(0);
                }
                RetrievalSource::Isl { hops } => {
                    samples.push(out.rtt.ms());
                    hops_seen.push(hops);
                }
            }
        }
        (samples, fallbacks, hops_seen)
    });

    // Reassemble per bound in task order (epoch-minor), matching the
    // sequential accumulation exactly.
    let mut results = Vec::new();
    for (b, &max_hops) in hop_bounds.iter().enumerate() {
        let mut latencies = Percentiles::new();
        let mut fallbacks = 0usize;
        let mut hops_seen = Vec::new();
        for (samples, f, hops) in &per_task[b * epochs..(b + 1) * epochs] {
            for &s in samples {
                latencies.add(s);
            }
            fallbacks += f;
            hops_seen.extend_from_slice(hops);
        }
        results.push(HopBoundResult {
            max_hops,
            latencies,
            ground_fallbacks: fallbacks,
            hop_histogram: hops_seen,
        });
    }
    results
}

/// Figure 8: fetch latencies when only `fraction` of the fleet caches at a
/// time and the rest relay. Content is assumed resident on every *active*
/// cache (the figure isolates the relay-distance cost of duty cycling, not
/// content placement).
///
/// The fleet is degraded by `schedule` (see [`hop_bound_experiment`]); a
/// city with no servable satellite overhead is served at the
/// ground-fallback RTT. Pristine campaigns pass [`FaultSchedule::none()`].
pub fn duty_cycle_experiment(
    fractions: &[f64],
    trials_per_fraction: usize,
    epochs: usize,
    seed: u64,
    schedule: &FaultSchedule,
) -> Vec<DutyCycleResult> {
    let net = LsnNetwork::starlink();
    let pool = covered_city_sampler();

    // Snapshots are per-epoch only; share them across fractions.
    let snapshots: Vec<LsnSnapshot<'_>> = (0..epochs)
        .map(|epoch| {
            let t = SimTime::from_secs(epoch as u64 * 157);
            net.snapshot(t, &schedule.plan_at(t))
        })
        .collect();
    par_map(&snapshots, |_, snap| warm_epoch_sources(snap, &pool));

    let mut tasks: Vec<(f64, usize)> = Vec::new();
    for &fraction in fractions {
        for epoch in 0..epochs {
            tasks.push((fraction, epoch));
        }
    }
    let per_task = par_map(&tasks, |_, &(fraction, epoch)| {
        let t = SimTime::from_secs(epoch as u64 * 157);
        let snap = &snapshots[epoch];
        let cycler = DutyCycler::new(fraction, SimDuration::from_mins(10), seed);
        let active = cycler.active_set(net.constellation(), t);
        let mut rng = DetRng::new(seed, &format!("fig8/{fraction}/{epoch}"));
        let fallback_rtt = Latency::from_ms(300.0);
        let mut samples: Vec<f64> = Vec::new();
        for _ in 0..trials_per_fraction.div_ceil(epochs) {
            let city = *rng.choose(&pool).expect("pool non-empty");
            // Generous budget: with ≥30 % active a cache is adjacent.
            let req = RetrievalRequest::new(city.position())
                .hop_budget(12)
                .ground_fallback(fallback_rtt)
                .graceful(false);
            FIG8_TRIALS.incr();
            let Some(out) = req
                .execute(snap.graph(), net.access(), &active, Some(&mut rng))
                .outcome
            else {
                samples.push(fallback_rtt.ms());
                continue;
            };
            if matches!(out.source, RetrievalSource::Isl { .. }) {
                FIG8_RELAYS.incr();
            }
            samples.push(out.rtt.ms());
        }
        samples
    });

    let mut results = Vec::new();
    for (fi, &fraction) in fractions.iter().enumerate() {
        let mut latencies = Percentiles::new();
        for samples in &per_task[fi * epochs..(fi + 1) * epochs] {
            for &s in samples {
                latencies.add(s);
            }
        }
        results.push(DutyCycleResult {
            fraction,
            latencies,
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_ordering_and_bands() {
        let mut results = hop_bound_experiment(&[1, 5, 10], 120, 2, 11, &FaultSchedule::none());
        assert_eq!(results.len(), 3);
        let medians: Vec<f64> = results
            .iter_mut()
            .map(|r| r.latencies.median().expect("samples"))
            .collect();
        // More hop budget ⇒ farther copies allowed ⇒ higher latency.
        assert!(medians[0] < medians[1], "{medians:?}");
        assert!(medians[1] < medians[2], "{medians:?}");
        // 1-hop fetches are near the pure user-link floor (~15-25 ms).
        assert!((10.0..30.0).contains(&medians[0]), "{medians:?}");
        // Even the 10-hop budget stays well under typical far-homed
        // Starlink-CDN latency (~140+ ms).
        assert!(medians[2] < 90.0, "{medians:?}");
    }

    #[test]
    fn fig7_hop_budget_respected() {
        let results = hop_bound_experiment(&[3], 80, 2, 13, &FaultSchedule::none());
        let r = &results[0];
        assert!(r.hop_histogram.iter().all(|&h| h <= 3));
        assert!(!r.hop_histogram.is_empty());
    }

    #[test]
    fn fig8_duty_cycle_ordering() {
        let mut results = duty_cycle_experiment(&[0.3, 0.8], 120, 2, 17, &FaultSchedule::none());
        let m30 = results[0].latencies.median().unwrap();
        let m80 = results[1].latencies.median().unwrap();
        // Fewer active caches ⇒ longer relays ⇒ higher latency.
        assert!(m30 > m80, "30% {m30} vs 80% {m80}");
        // Both stay in the tens of milliseconds (Fig 8's axis is 0-40 ms).
        assert!(m80 > 10.0 && m30 < 60.0, "m80 {m80} m30 {m30}");
    }

    #[test]
    fn empty_schedule_is_byte_identical_to_pristine() {
        // Pristine callers now pass `FaultSchedule::none()` where they
        // used to call a schedule-less entry point; this pins the property
        // that migration relies on — an empty timeline and a default one
        // lower to plans whose digests key the same pooled snapshots, so
        // reruns are byte-for-byte reproducible.
        let mut a = hop_bound_experiment(&[1, 5], 60, 2, 29, &FaultSchedule::none());
        let mut b = hop_bound_experiment(&[1, 5], 60, 2, 29, &FaultSchedule::default());
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(x.max_hops, y.max_hops);
            assert_eq!(x.ground_fallbacks, y.ground_fallbacks);
            assert_eq!(x.hop_histogram, y.hop_histogram);
            assert_eq!(
                x.latencies.median().map(f64::to_bits),
                y.latencies.median().map(f64::to_bits)
            );
        }
        let mut c = duty_cycle_experiment(&[0.5], 60, 2, 29, &FaultSchedule::none());
        let mut d = duty_cycle_experiment(&[0.5], 60, 2, 29, &FaultSchedule::default());
        assert_eq!(
            c[0].latencies.median().map(f64::to_bits),
            d[0].latencies.median().map(f64::to_bits)
        );
    }

    #[test]
    fn fig7_under_faults_degrades_gracefully() {
        let c =
            spacecdn_orbit::Constellation::new(spacecdn_orbit::shell::shells::starlink_shell1());
        let mut rng = DetRng::new(31, "fig7-faults");
        let mut schedule = FaultSchedule::none();
        schedule.random_sat_failures(c.len(), 0.2, SimTime::EPOCH, &mut rng);
        let pristine = hop_bound_experiment(&[3], 80, 2, 31, &FaultSchedule::none());
        let faulted = hop_bound_experiment(&[3], 80, 2, 31, &schedule);
        // A fifth of the fleet dead: never a panic, strictly more misses.
        assert!(
            faulted[0].ground_fallbacks > pristine[0].ground_fallbacks,
            "faulted {} vs pristine {}",
            faulted[0].ground_fallbacks,
            pristine[0].ground_fallbacks
        );
        assert!(faulted[0].hop_histogram.iter().all(|&h| h <= 3));
    }

    #[test]
    fn sampler_covers_many_cities() {
        let pool = covered_city_sampler();
        let distinct: std::collections::BTreeSet<_> = pool.iter().map(|c| c.name).collect();
        assert!(distinct.len() > 80, "got {}", distinct.len());
        // No uncovered countries leak in.
        assert!(pool.iter().all(|c| c.cc != "CN"));
    }
}
