//! CDN sites and anycast server selection.
//!
//! Cloudflare announces one IP everywhere; BGP carries a client to a nearby
//! site. To a good approximation — and to exactly the approximation the
//! paper makes ("We use the median of the idle latencies … to determine the
//! 'optimal' CDN server") — anycast picks the site with the lowest network
//! latency from the client's *egress point*. For terrestrial clients the
//! egress is the client's city; for Starlink clients it is the PoP, which
//! is the entire effect the paper measures.

use crate::city::{cities, City};
use crate::fiber::FiberModel;
use crate::region::Region;
use spacecdn_geo::{Geodetic, Latency};

/// A CDN point of presence (a city hosting anycast cache servers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdnSite {
    /// The hosting city.
    pub city: &'static City,
}

impl CdnSite {
    /// Ground position of the site.
    pub fn position(&self) -> Geodetic {
        self.city.position()
    }

    /// Region of the site.
    pub fn region(&self) -> Region {
        self.city.region
    }
}

/// All CDN sites in the embedded dataset (cities with `has_cdn`).
pub fn cdn_sites() -> Vec<CdnSite> {
    cities()
        .iter()
        .filter(|c| c.has_cdn)
        .map(|city| CdnSite { city })
        .collect()
}

/// Anycast selection: the CDN site with the lowest WAN RTT from an egress
/// point, together with that RTT. Returns `None` only if the site list is
/// empty. Ties (exactly equal RTT) resolve to the earlier site in the
/// dataset for determinism.
pub fn anycast_select(
    egress: Geodetic,
    egress_region: Region,
    sites: &[CdnSite],
    model: &FiberModel,
) -> Option<(CdnSite, Latency)> {
    let mut best: Option<(CdnSite, Latency)> = None;
    for &site in sites {
        let rtt = model.wan_rtt(egress, egress_region, site.position(), site.region());
        if best.is_none_or(|(_, b)| rtt < b) {
            best = Some((site, rtt));
        }
    }
    best
}

/// Rank all sites by WAN RTT from an egress point, ascending; useful for the
/// Fig 3 case study which enumerates reachable CDN locations.
pub fn rank_sites(
    egress: Geodetic,
    egress_region: Region,
    sites: &[CdnSite],
    model: &FiberModel,
) -> Vec<(CdnSite, Latency)> {
    let mut ranked: Vec<(CdnSite, Latency)> = sites
        .iter()
        .map(|&s| {
            let rtt = model.wan_rtt(egress, egress_region, s.position(), s.region());
            (s, rtt)
        })
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("latencies are finite"));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::city_by_name;

    #[test]
    fn site_list_substantial() {
        let n = cdn_sites().len();
        assert!(n >= 90, "got {n} CDN sites");
    }

    #[test]
    fn anycast_picks_local_site_when_present() {
        let sites = cdn_sites();
        let model = FiberModel::default();
        for name in ["Frankfurt", "Maputo", "Tokyo", "Sao Paulo"] {
            let c = city_by_name(name).unwrap();
            let (best, rtt) = anycast_select(c.position(), c.region, &sites, &model).unwrap();
            assert_eq!(best.city.name, name, "expected local site for {name}");
            assert!(rtt.ms() < 1.0);
        }
    }

    #[test]
    fn anycast_for_lusaka_is_johannesburg() {
        // The Table 1 mechanism: Zambia has no CDN site, so its best
        // terrestrial CDN is Johannesburg, ~1200 km away.
        let sites = cdn_sites();
        let model = FiberModel::default();
        let lusaka = city_by_name("Lusaka").unwrap();
        let (best, _) = anycast_select(lusaka.position(), lusaka.region, &sites, &model).unwrap();
        assert_eq!(best.city.name, "Johannesburg");
        let d = lusaka.position().great_circle_distance(best.position()).0;
        assert!((1000.0..1350.0).contains(&d), "got {d}");
    }

    #[test]
    fn anycast_for_mbabane_is_regional() {
        // Table 1 shows Eswatini's best terrestrial CDN ~300 km away; in our
        // dataset the nearest sites are Maputo (~170 km) and Johannesburg
        // (~350 km) — either is the right order of magnitude.
        let sites = cdn_sites();
        let model = FiberModel::default();
        let mb = city_by_name("Mbabane").unwrap();
        let (best, _) = anycast_select(mb.position(), mb.region, &sites, &model).unwrap();
        assert!(
            ["Maputo", "Johannesburg"].contains(&best.city.name),
            "got {}",
            best.city.name
        );
        let d = mb.position().great_circle_distance(best.position()).0;
        assert!((100.0..450.0).contains(&d), "got {d} km");
    }

    #[test]
    fn ranking_sorted_and_complete() {
        let sites = cdn_sites();
        let model = FiberModel::default();
        let mpm = city_by_name("Maputo").unwrap();
        let ranked = rank_sites(mpm.position(), mpm.region, &sites, &model);
        assert_eq!(ranked.len(), sites.len());
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(ranked[0].0.city.name, "Maputo");
    }

    #[test]
    fn empty_site_list_yields_none() {
        let model = FiberModel::default();
        let p = city_by_name("London").unwrap();
        assert!(anycast_select(p.position(), p.region, &[], &model).is_none());
    }
}
