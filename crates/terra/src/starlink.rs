//! The Starlink ground segment: PoPs and country → PoP homing.
//!
//! Starlink assigns each subscriber country to a point of presence where
//! traffic gets its public IP and enters the Internet (§2). Figure 2 of the
//! paper shows "the currently 22 operational Starlink PoP locations"; this
//! module embeds a 22-PoP list consistent with public trackers of the 2024
//! network, and a homing table *reconstructed from the paper's own Table 1
//! distances* — e.g. Mozambique/Kenya/Zambia home to Frankfurt (~8800/6300/
//! 7500 km), Rwanda and Eswatini to Lagos (~3800/4700 km), Haiti to Ashburn
//! (~2100 km), Guatemala to Querétaro (~1200 km).
//!
//! Countries with several PoPs (US) home to the nearest one; countries not
//! explicitly listed fall back to the geographically nearest PoP, which is
//! how Starlink onboards new markets before dedicated infrastructure lands.

use crate::city::{city_by_name, City};
use spacecdn_geo::Geodetic;

/// A Starlink point of presence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarlinkPop {
    /// City hosting the PoP (also used as the egress for CDN anycast).
    pub city: &'static City,
}

impl StarlinkPop {
    /// Ground position of the PoP.
    pub fn position(&self) -> Geodetic {
        self.city.position()
    }
}

/// Host-city names of the 22 operational 2024 PoPs.
const POP_CITY_NAMES: [&str; 22] = [
    "Seattle",
    "Los Angeles",
    "Denver",
    "Dallas",
    "Chicago",
    "Ashburn",
    "Atlanta",
    "Queretaro",
    "Lima",
    "Santiago",
    "Sao Paulo",
    "London",
    "Frankfurt",
    "Madrid",
    "Milan",
    "Warsaw",
    "Lagos",
    "Tokyo",
    "Sydney",
    "Auckland",
    "Singapore",
    "Manila",
];

/// The 22 operational Starlink PoPs.
pub fn starlink_pops() -> Vec<StarlinkPop> {
    POP_CITY_NAMES
        .iter()
        .map(|name| StarlinkPop {
            city: city_by_name(name).expect("PoP city must exist in dataset"),
        })
        .collect()
}

/// Explicit country → PoP-city homing. `None` for a country means
/// "nearest PoP" (used for the US and any unlisted country).
fn homing_rule(cc: &str) -> Option<&'static str> {
    Some(match cc {
        // Canada homes to nearby US PoPs (handled as nearest), Mexico and
        // Central America to Querétaro.
        "MX" | "GT" | "SV" | "HN" | "NI" | "CR" | "PA" | "BZ" => "Queretaro",
        // Caribbean to Ashburn (per Table 1: Haiti ≈ 2060 km).
        "HT" | "DO" | "JM" | "PR" | "BS" | "TT" => "Ashburn",
        // Andean South America to Lima.
        "CO" | "EC" | "PE" | "BO" => "Lima",
        // Southern cone to Santiago; Brazil to São Paulo.
        "CL" | "AR" | "PY" | "UY" => "Santiago",
        "BR" => "Sao Paulo",
        // Northwestern Europe to London.
        "GB" | "IE" | "IS" => "London",
        // Central/Northern Europe and the Baltics to Frankfurt (Table 1:
        // Lithuania ≈ 1240 km ⇒ Frankfurt, not Warsaw).
        "DE" | "NL" | "BE" | "LU" | "CH" | "AT" | "DK" | "NO" | "SE" | "FI" | "CZ" | "LT"
        | "LV" | "EE" => "Frankfurt",
        // Iberia to Madrid.
        "ES" | "PT" => "Madrid",
        // France, Italy and the central Mediterranean to Milan; Cyprus to
        // Frankfurt (Table 1: ≈ 2600 km ⇒ Frankfurt, not Milan).
        "FR" | "IT" | "GR" | "HR" | "SI" | "MT" | "RS" => "Milan",
        "CY" => "Frankfurt",
        // Eastern Europe to Warsaw.
        "PL" | "UA" | "RO" | "BG" | "HU" | "SK" | "MD" => "Warsaw",
        // West Africa to Lagos; Rwanda and Eswatini also home to Lagos
        // (Table 1: ≈ 3760 / 4730 km ⇒ Lagos, not Frankfurt).
        "NG" | "GH" | "CI" | "SN" | "ML" | "NE" | "CM" | "CD" | "BJ" | "TG" | "RW" | "SZ" => {
            "Lagos"
        }
        // Southern/Eastern Africa routes over ISLs to Frankfurt — the
        // paper's headline finding (§2 citing [39]; Table 1: Mozambique
        // ≈ 8780 km, Kenya ≈ 6310 km, Zambia ≈ 7550 km).
        "MZ" | "KE" | "ZM" | "MW" | "TZ" | "ZW" | "BW" | "NA" | "ZA" | "MG" | "UG" | "AO" => {
            "Frankfurt"
        }
        // Middle East & North Africa (where served) to Milan or Frankfurt.
        "EG" | "TN" | "MA" | "DZ" | "IL" | "JO" | "TR" => "Milan",
        "AE" | "SA" | "QA" | "OM" => "Frankfurt",
        // Asia-Pacific.
        "JP" | "KR" => "Tokyo",
        "PH" => "Manila",
        "MY" | "SG" | "ID" | "TH" | "VN" | "KH" => "Singapore",
        "AU" | "PG" => "Sydney",
        "NZ" | "FJ" => "Auckland",
        // India homes to Singapore pending local infrastructure.
        "IN" | "LK" | "BD" | "PK" => "Singapore",
        _ => return None,
    })
}

/// The PoP a subscriber in country `cc` at `position` egresses through.
///
/// Countries with an explicit homing rule use it; everything else (including
/// the multi-PoP US and Canada) picks the geographically nearest PoP.
pub fn home_pop(cc: &str, position: Geodetic) -> StarlinkPop {
    let pops = starlink_pops();
    if let Some(city_name) = homing_rule(cc) {
        return *pops
            .iter()
            .find(|p| p.city.name == city_name)
            .expect("homing rule must reference a PoP city");
    }
    *pops
        .iter()
        .min_by(|a, b| {
            let da = position.great_circle_distance(a.position()).0;
            let db = position.great_circle_distance(b.position()).0;
            da.partial_cmp(&db).expect("distances are finite")
        })
        .expect("PoP list is non-empty")
}

/// Host-city names of gateway (ground station) sites.
///
/// Starlink operates ~150 gateways; we embed ~40 representative ones. The
/// crucial modelling facts, both load-bearing for the paper's Table 1, are:
/// (i) well-served regions have gateways near their PoPs, and (ii) Nigeria
/// and Kenya gained local gateways in 2023 while **southern Africa has
/// none** — Mozambican, Zambian and Swazi traffic must ride ISLs to another
/// country before touching ground.
const GATEWAY_CITY_NAMES: [&str; 41] = [
    "Seattle",
    "Los Angeles",
    "Denver",
    "Dallas",
    "Chicago",
    "Ashburn",
    "Atlanta",
    "Miami",
    "Kansas City",
    "Phoenix",
    "Vancouver",
    "Toronto",
    "Queretaro",
    "Guadalajara",
    "Lima",
    "Santiago",
    "Sao Paulo",
    "Porto Alegre",
    "Fortaleza",
    "Bogota",
    "London",
    "Manchester",
    "Frankfurt",
    "Hamburg",
    "Munich",
    "Madrid",
    "Seville",
    "Milan",
    "Rome",
    "Warsaw",
    "Lagos",
    "Nairobi",
    "Tokyo",
    "Osaka",
    "Sydney",
    "Perth",
    "Brisbane",
    "Auckland",
    "Christchurch",
    "Singapore",
    "Manila",
];

/// A Starlink gateway (ground station) site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gateway {
    /// City the gateway is modelled at.
    pub city: &'static City,
}

impl Gateway {
    /// Ground position of the gateway.
    pub fn position(&self) -> Geodetic {
        self.city.position()
    }
}

/// The embedded gateway sites.
pub fn gateways() -> Vec<Gateway> {
    GATEWAY_CITY_NAMES
        .iter()
        .map(|name| Gateway {
            city: city_by_name(name).expect("gateway city must exist in dataset"),
        })
        .collect()
}

/// True if Starlink service is modelled as available in `cc` (an explicit
/// homing rule exists, or the country hosts a PoP).
pub fn has_starlink_coverage(cc: &str) -> bool {
    if homing_rule(cc).is_some() || cc == "US" || cc == "CA" {
        return true;
    }
    starlink_pops().iter().any(|p| p.city.cc == cc)
}

/// Every covered country code present in the city dataset, sorted.
pub fn covered_countries() -> Vec<&'static str> {
    let mut ccs: Vec<&'static str> = crate::city::country_codes()
        .into_iter()
        .filter(|cc| has_starlink_coverage(cc))
        .collect();
    ccs.sort_unstable();
    ccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_pops() {
        let pops = starlink_pops();
        assert_eq!(pops.len(), 22);
        let mut names: Vec<_> = pops.iter().map(|p| p.city.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22, "PoP cities must be distinct");
    }

    fn homed_distance_km(client_city: &str) -> (String, f64) {
        let c = city_by_name(client_city).unwrap();
        let pop = home_pop(c.cc, c.position());
        let d = c.position().great_circle_distance(pop.position()).0;
        (pop.city.name.to_string(), d)
    }

    #[test]
    fn table1_homing_distances() {
        // (client city, expected PoP, paper's distance band ±25%)
        let cases = [
            ("Guatemala City", "Queretaro", 1220.9),
            ("Maputo", "Frankfurt", 8776.5),
            ("Nicosia", "Frankfurt", 2595.3),
            ("Mbabane", "Lagos", 4731.6),
            ("Port-au-Prince", "Ashburn", 2063.2),
            ("Nairobi", "Frankfurt", 6310.8),
            ("Lusaka", "Frankfurt", 7545.9),
            ("Kigali", "Lagos", 3762.8),
            ("Vilnius", "Frankfurt", 1243.2),
        ];
        for (city, expected_pop, paper_km) in cases {
            let (pop, d) = homed_distance_km(city);
            assert_eq!(pop, expected_pop, "{city}");
            assert!(
                (d - paper_km).abs() / paper_km < 0.25,
                "{city}: model {d:.0} km vs paper {paper_km} km"
            );
        }
    }

    #[test]
    fn local_pop_countries_have_short_homing() {
        // Spain and Japan have local PoPs: Table 1 shows tens of km.
        for (city, pop) in [("Madrid", "Madrid"), ("Tokyo", "Tokyo")] {
            let (got, d) = homed_distance_km(city);
            assert_eq!(got, pop);
            assert!(d < 50.0, "{city} homed {d} km away");
        }
    }

    #[test]
    fn us_uses_nearest_pop() {
        let seattle = city_by_name("Seattle").unwrap();
        assert_eq!(home_pop("US", seattle.position()).city.name, "Seattle");
        let miami = city_by_name("Miami").unwrap();
        assert_eq!(home_pop("US", miami.position()).city.name, "Atlanta");
        let nyc = city_by_name("New York").unwrap();
        assert_eq!(home_pop("US", nyc.position()).city.name, "Ashburn");
    }

    #[test]
    fn canada_homes_to_nearby_us_pops() {
        let vancouver = city_by_name("Vancouver").unwrap();
        assert_eq!(home_pop("CA", vancouver.position()).city.name, "Seattle");
        let toronto = city_by_name("Toronto").unwrap();
        let pop = home_pop("CA", toronto.position());
        assert!(["Chicago", "Ashburn"].contains(&pop.city.name));
    }

    #[test]
    fn nigeria_is_the_african_exception() {
        // Fig 4: Nigerian Starlink beats terrestrial because of the local
        // Lagos PoP.
        let lagos = city_by_name("Lagos").unwrap();
        let pop = home_pop("NG", lagos.position());
        assert_eq!(pop.city.name, "Lagos");
        assert!(lagos.position().great_circle_distance(pop.position()).0 < 30.0);
    }

    #[test]
    fn coverage_breadth() {
        let covered = covered_countries();
        assert!(
            covered.len() >= 50,
            "got {} covered countries",
            covered.len()
        );
        assert!(covered.contains(&"US"));
        assert!(covered.contains(&"MZ"));
        assert!(!covered.contains(&"CN"), "China is not a Starlink market");
    }

    #[test]
    fn unlisted_country_falls_back_to_nearest() {
        // Mongolia has no rule: nearest PoP is Tokyo.
        let ub = city_by_name("Ulaanbaatar").unwrap();
        assert_eq!(home_pop("MN", ub.position()).city.name, "Tokyo");
    }

    #[test]
    fn gateway_list_resolves() {
        let gws = gateways();
        assert_eq!(gws.len(), 41);
        let mut names: Vec<_> = gws.iter().map(|g| g.city.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 41, "gateway cities must be distinct");
    }

    #[test]
    fn southern_africa_has_no_gateway() {
        // Load-bearing for Table 1: Mozambique/Zambia/Eswatini traffic
        // cannot touch ground locally.
        let gws = gateways();
        for cc in ["MZ", "ZM", "SZ", "ZW", "ZA", "RW"] {
            assert!(
                gws.iter().all(|g| g.city.cc != cc),
                "{cc} must not host a gateway"
            );
        }
        // While Nigeria and Kenya do have local gateways.
        for cc in ["NG", "KE"] {
            assert!(gws.iter().any(|g| g.city.cc == cc), "{cc} needs a gateway");
        }
    }
}
