//! Terrestrial Internet model: cities, regions, fibre latency, CDN anycast,
//! and the Starlink ground segment (PoPs + country homing).
//!
//! The paper's measurement study compares, per city, the latency to the
//! "optimal" (anycast-nearest) Cloudflare CDN server over a terrestrial ISP
//! versus over Starlink. Reproducing that requires a model of
//!
//! - where clients are ([`city`]: an embedded world-city dataset),
//! - how fast terrestrial paths are ([`fiber`]: great-circle distance ×
//!   region-dependent route inflation over fibre, plus last-mile access),
//! - where CDN servers are ([`cdn`]: a Cloudflare-style site list with
//!   anycast selection),
//! - where Starlink touches the ground ([`starlink`]: the 22 operational
//!   2024 PoPs and the country → PoP homing the paper's Table 1 implies).
//!
//! All data is embedded as `const` tables: no files, no network, fully
//! deterministic. Coordinates are approximate city centroids; populations
//! are rough metro figures used only to weight client sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdn;
pub mod city;
pub mod fiber;
pub mod geoblock;
pub mod region;
pub mod starlink;

pub use cdn::{anycast_select, cdn_sites, CdnSite};
pub use city::{cities, cities_in_country, city_by_name, City};
pub use fiber::{client_rtt, fiber_rtt, FiberModel};
pub use region::{NetworkProfile, Region};
pub use starlink::{gateways, home_pop, starlink_pops, Gateway, StarlinkPop};
