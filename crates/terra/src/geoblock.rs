//! Geo-blocking: licensing enforcement by egress IP geolocation.
//!
//! §1–2: "Starlink subscribers experience unwarranted geo-blocking from
//! CDNs when their connections are routed to PoPs deployed in countries
//! where the requested content is geo-blocked" (and cruise-ship reports of
//! Netflix/YouTube refusing to play). The mechanism is mundane: services
//! geolocate the client's *public IP*, and a Starlink user's public IP
//! belongs to the PoP's country, not their own.

use crate::region::Region;
use serde::Serialize;

/// Where a piece of content may legally be served.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum LicenseScope {
    /// Available everywhere.
    Global,
    /// Available in exactly these countries (national sports rights,
    /// catalogue carve-outs, public broadcasters).
    Countries(Vec<&'static str>),
    /// Available across one world region (regional streaming launches).
    Region(Region),
}

impl LicenseScope {
    /// May this content be served to a client whose IP geolocates to
    /// (`egress_cc`, `egress_region`)?
    pub fn permits(&self, egress_cc: &str, egress_region: Region) -> bool {
        match self {
            LicenseScope::Global => true,
            LicenseScope::Countries(ccs) => ccs.contains(&egress_cc),
            LicenseScope::Region(r) => *r == egress_region,
        }
    }
}

/// The outcome of a licensing check for one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AccessOutcome {
    /// Served normally.
    Allowed,
    /// Blocked even though the user is physically inside the licensed
    /// area — the paper's "unwarranted geo-blocking" (egress mismatch).
    UnwarrantedlyBlocked,
    /// Blocked, and correctly so (the user really is outside the area).
    CorrectlyBlocked,
    /// Served, but the user is actually outside the licensed area (the
    /// mirror error: egress inside, user outside — the "VPN effect").
    WronglyAllowed,
}

/// Evaluate IP-geolocation enforcement for a user physically in
/// (`user_cc`, `user_region`) whose traffic egresses at
/// (`egress_cc`, `egress_region`).
pub fn check_access(
    scope: &LicenseScope,
    user_cc: &str,
    user_region: Region,
    egress_cc: &str,
    egress_region: Region,
) -> AccessOutcome {
    let user_entitled = scope.permits(user_cc, user_region);
    let egress_permitted = scope.permits(egress_cc, egress_region);
    match (user_entitled, egress_permitted) {
        (true, true) => AccessOutcome::Allowed,
        (true, false) => AccessOutcome::UnwarrantedlyBlocked,
        (false, false) => AccessOutcome::CorrectlyBlocked,
        (false, true) => AccessOutcome::WronglyAllowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_content_never_blocks() {
        let s = LicenseScope::Global;
        assert_eq!(
            check_access(&s, "MZ", Region::Africa, "DE", Region::WesternEurope),
            AccessOutcome::Allowed
        );
    }

    #[test]
    fn national_content_blocks_on_egress_mismatch() {
        // Mozambican national content, Mozambican user — but the egress IP
        // is German, so the service says no. The paper's complaint.
        let s = LicenseScope::Countries(vec!["MZ"]);
        assert_eq!(
            check_access(&s, "MZ", Region::Africa, "DE", Region::WesternEurope),
            AccessOutcome::UnwarrantedlyBlocked
        );
        // A terrestrial user in the same city is fine.
        assert_eq!(
            check_access(&s, "MZ", Region::Africa, "MZ", Region::Africa),
            AccessOutcome::Allowed
        );
    }

    #[test]
    fn the_mirror_error_exists_too() {
        // German national content, Mozambican user behind the Frankfurt
        // PoP: wrongly allowed.
        let s = LicenseScope::Countries(vec!["DE"]);
        assert_eq!(
            check_access(&s, "MZ", Region::Africa, "DE", Region::WesternEurope),
            AccessOutcome::WronglyAllowed
        );
    }

    #[test]
    fn regional_scope_uses_regions() {
        let s = LicenseScope::Region(Region::Africa);
        // Kenyan user egressing in Frankfurt loses African-regional content.
        assert_eq!(
            check_access(&s, "KE", Region::Africa, "DE", Region::WesternEurope),
            AccessOutcome::UnwarrantedlyBlocked
        );
        // Nigerian user egressing in Lagos keeps it.
        assert_eq!(
            check_access(&s, "NG", Region::Africa, "NG", Region::Africa),
            AccessOutcome::Allowed
        );
    }

    #[test]
    fn correctly_blocked_when_truly_outside() {
        let s = LicenseScope::Countries(vec!["JP"]);
        assert_eq!(
            check_access(&s, "MZ", Region::Africa, "DE", Region::WesternEurope),
            AccessOutcome::CorrectlyBlocked
        );
    }
}
