//! Terrestrial wide-area latency model.
//!
//! RTT between two ground points is modelled as
//!
//! ```text
//! rtt = 2 × gc_distance × inflation / c_fiber     (propagation)
//!     + peering_overhead(src region, dst region)  (routers / IXPs)
//!     [+ last-mile access, client side only]
//! ```
//!
//! where `inflation` is the worse of the two endpoint regions' route
//! inflation factors (a path into a poorly provisioned region detours like
//! one), and crossing a region boundary adds both regions' peering
//! overheads. The last mile is sampled log-normally per measurement, giving
//! the long right tails real speed tests show.

use crate::region::Region;
use spacecdn_geo::propagation::fiber_route_delay;
use spacecdn_geo::{DetRng, Geodetic, Km, Latency};

/// Parameters of the terrestrial model; [`FiberModel::default`] is the
/// calibrated configuration used by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct FiberModel {
    /// Multiplier applied on top of the per-region inflation (sensitivity
    /// knob for ablations; 1.0 in the calibrated model).
    pub extra_inflation: f64,
    /// Minimum RTT floor for any path, ms (kernel + NIC + serialisation).
    pub floor_ms: f64,
    /// Inflation of the long-haul trunk portion of a route. Submarine
    /// cables and backbone fibre are far straighter than regional networks:
    /// London↔New York measures ~70 ms RTT against a 54.6 ms great-circle
    /// fibre bound, i.e. inflation ≈ 1.3.
    pub long_haul_inflation: f64,
    /// Length of the regional (fully inflated) portion at each route's
    /// ends, km; distance beyond it rides the long-haul trunk.
    pub regional_km: f64,
}

impl Default for FiberModel {
    fn default() -> Self {
        FiberModel {
            extra_inflation: 1.0,
            floor_ms: 0.3,
            long_haul_inflation: 1.3,
            regional_km: 1500.0,
        }
    }
}

impl FiberModel {
    /// Effective route inflation for a path of great-circle length `gc_km`
    /// whose worse endpoint region inflates by `regional_inflation`: the
    /// first [`Self::regional_km`] kilometres pay the regional factor, the
    /// remainder rides the long-haul trunk. Continuous in `gc_km`.
    fn effective_inflation(&self, gc_km: f64, regional_inflation: f64) -> f64 {
        if gc_km <= 0.0 {
            return regional_inflation;
        }
        let regional_part = gc_km.min(self.regional_km);
        let trunk_part = (gc_km - self.regional_km).max(0.0);
        (regional_part * regional_inflation + trunk_part * self.long_haul_inflation) / gc_km
    }

    /// Deterministic wide-area RTT between two ground points (no last mile,
    /// no noise): the "idle" network baseline.
    pub fn wan_rtt(&self, a: Geodetic, a_region: Region, b: Geodetic, b_region: Region) -> Latency {
        let gc = a.great_circle_distance(b);
        let regional = a_region
            .profile()
            .route_inflation
            .max(b_region.profile().route_inflation)
            * self.extra_inflation;
        let inflation = self.effective_inflation(gc.0, regional);
        let prop = fiber_route_delay(gc, inflation).round_trip();
        let peering = if gc.0 < 30.0 {
            // Same metro: traffic stays inside one IXP.
            Latency::from_ms(0.2)
        } else {
            Latency::from_ms(
                a_region.profile().peering_overhead_ms + b_region.profile().peering_overhead_ms,
            )
        };
        (prop + peering).max(Latency::from_ms(self.floor_ms))
    }

    /// One sampled client-observed RTT: WAN baseline plus a log-normal
    /// last-mile draw for the client's access network.
    pub fn client_rtt_sample(
        &self,
        client: Geodetic,
        client_region: Region,
        server: Geodetic,
        server_region: Region,
        rng: &mut DetRng,
    ) -> Latency {
        let base = self.wan_rtt(client, client_region, server, server_region);
        let p = client_region.profile();
        let last_mile = rng.log_normal_median(p.last_mile_median_ms, p.last_mile_sigma);
        base + Latency::from_ms(last_mile)
    }

    /// Median client RTT (WAN baseline + median last mile), no sampling.
    pub fn client_rtt_median(
        &self,
        client: Geodetic,
        client_region: Region,
        server: Geodetic,
        server_region: Region,
    ) -> Latency {
        let base = self.wan_rtt(client, client_region, server, server_region);
        base + Latency::from_ms(client_region.profile().last_mile_median_ms)
    }

    /// Great-circle distance helper, exposed for distance columns (Table 1).
    pub fn distance(&self, a: Geodetic, b: Geodetic) -> Km {
        a.great_circle_distance(b)
    }
}

/// Convenience: deterministic WAN RTT with the calibrated default model.
pub fn fiber_rtt(a: Geodetic, a_region: Region, b: Geodetic, b_region: Region) -> Latency {
    FiberModel::default().wan_rtt(a, a_region, b, b_region)
}

/// Convenience: median client RTT with the calibrated default model.
pub fn client_rtt(
    client: Geodetic,
    client_region: Region,
    server: Geodetic,
    server_region: Region,
) -> Latency {
    FiberModel::default().client_rtt_median(client, client_region, server, server_region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::city_by_name;

    fn pos(name: &str) -> (Geodetic, Region) {
        let c = city_by_name(name).unwrap();
        (c.position(), c.region)
    }

    #[test]
    fn same_city_hits_floor_plus_metro() {
        let (p, r) = pos("Frankfurt");
        let rtt = fiber_rtt(p, r, p, r);
        assert!(rtt.ms() < 1.0, "intra-metro WAN RTT {rtt}");
    }

    #[test]
    fn european_city_pair_band() {
        // Frankfurt <-> London (~640 km) is ~10-16 ms RTT in the wild.
        let (fra, fr) = pos("Frankfurt");
        let (lon, lr) = pos("London");
        let rtt = fiber_rtt(fra, fr, lon, lr).ms();
        assert!((8.0..18.0).contains(&rtt), "got {rtt}");
    }

    #[test]
    fn transatlantic_band() {
        // London <-> New York is ~70-80 ms RTT.
        let (lon, lr) = pos("London");
        let (nyc, nr) = pos("New York");
        let rtt = fiber_rtt(lon, lr, nyc, nr).ms();
        assert!((60.0..95.0).contains(&rtt), "got {rtt}");
    }

    #[test]
    fn african_detour_band() {
        // Maputo <-> Cape Town over terrestrial African routes: the paper's
        // Fig 3 shows African CDN sites at ~70 ms from Maputo terrestrially.
        let (mpm, mr) = pos("Maputo");
        let (cpt, cr) = pos("Cape Town");
        let rtt = fiber_rtt(mpm, mr, cpt, cr).ms();
        assert!((30.0..80.0).contains(&rtt), "got {rtt}");
    }

    #[test]
    fn zambia_to_joburg_matches_table1_band() {
        // Table 1: Zambia terrestrial ~44 ms to its best CDN (Johannesburg).
        let (lus, lr) = pos("Lusaka");
        let (jnb, jr) = pos("Johannesburg");
        let rtt = client_rtt(lus, lr, jnb, jr).ms();
        assert!((30.0..60.0).contains(&rtt), "got {rtt}");
    }

    #[test]
    fn client_rtt_adds_last_mile() {
        let (mad, mr) = pos("Madrid");
        let (bcn, br) = pos("Barcelona");
        let wan = fiber_rtt(mad, mr, bcn, br);
        let cli = client_rtt(mad, mr, bcn, br);
        assert!(cli.ms() > wan.ms() + 2.0);
    }

    #[test]
    fn sampled_rtt_is_noisy_but_floored() {
        let (nai, nr) = pos("Nairobi");
        let (mba, mr) = pos("Mombasa");
        let wan = fiber_rtt(nai, nr, mba, mr);
        let mut rng = DetRng::new(1, "fiber-test");
        let m = FiberModel::default();
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let s = m.client_rtt_sample(nai, nr, mba, mr, &mut rng);
            assert!(s.ms() > wan.ms(), "sample below WAN baseline");
            distinct.insert((s.ms() * 1000.0) as i64);
        }
        assert!(distinct.len() > 40, "samples should vary");
    }

    #[test]
    fn symmetry() {
        let (a, ar) = pos("Lima");
        let (b, br) = pos("Bogota");
        assert_eq!(fiber_rtt(a, ar, b, br), fiber_rtt(b, br, a, ar));
    }

    #[test]
    fn worse_region_dominates_inflation() {
        // Same distance, but a path touching Africa inflates more than an
        // intra-European one.
        let (lon, _) = pos("London");
        let (fra, _) = pos("Frankfurt");
        let eu = fiber_rtt(lon, Region::WesternEurope, fra, Region::WesternEurope);
        let af = fiber_rtt(lon, Region::WesternEurope, fra, Region::Africa);
        assert!(af.ms() > eu.ms());
    }

    #[test]
    fn effective_inflation_blends_continuously() {
        let m = FiberModel::default();
        // Short routes pay the full regional factor.
        assert!((m.effective_inflation(500.0, 2.4) - 2.4).abs() < 1e-9);
        assert!((m.effective_inflation(1500.0, 2.4) - 2.4).abs() < 1e-9);
        // Long routes converge towards the trunk factor.
        let long = m.effective_inflation(15_000.0, 2.4);
        assert!(long < 1.45, "got {long}");
        assert!(long > m.long_haul_inflation);
        // Monotone non-increasing in distance.
        let mut last = f64::INFINITY;
        for d in [100.0, 1000.0, 2000.0, 4000.0, 8000.0, 16_000.0] {
            let e = m.effective_inflation(d, 2.0);
            assert!(e <= last + 1e-9);
            last = e;
        }
    }

    #[test]
    fn submarine_trunk_matches_known_pairs() {
        // Nairobi/Mombasa to Frankfurt rides SEACOM/EASSy + Europe trunks:
        // ~95-115 ms RTT in the wild.
        let (nbo, nr) = pos("Nairobi");
        let (fra, fr) = pos("Frankfurt");
        let rtt = fiber_rtt(nbo, nr, fra, fr).ms();
        assert!((85.0..115.0).contains(&rtt), "got {rtt}");
    }
}
