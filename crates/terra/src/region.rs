//! World regions and their terrestrial network quality profiles.
//!
//! The paper's Figure 2 shows the Starlink-vs-terrestrial gap varies sharply
//! by region, and §3.2 attributes African latencies both to missing Starlink
//! ground infrastructure *and* to sparse terrestrial provisioning (citing
//! inter-country latency studies of Africa). We capture the terrestrial side
//! with a per-region [`NetworkProfile`]: a route-inflation factor over the
//! great circle and a last-mile access latency distribution.

use serde::{Deserialize, Serialize};

/// Coarse world region of a city.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// USA and Canada.
    NorthAmerica,
    /// Mexico, Central America and the Caribbean.
    CentralAmerica,
    /// South America.
    SouthAmerica,
    /// Western and Northern Europe.
    WesternEurope,
    /// Central and Eastern Europe.
    EasternEurope,
    /// Middle East and North Africa.
    MiddleEast,
    /// Sub-Saharan Africa.
    Africa,
    /// The Indian subcontinent.
    SouthAsia,
    /// China, Japan, Korea, Taiwan, Mongolia.
    EastAsia,
    /// ASEAN countries.
    SoutheastAsia,
    /// Australia, New Zealand and the Pacific.
    Oceania,
}

/// Terrestrial network quality parameters for a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Ratio of typical fibre-route length to great-circle distance (≥ 1).
    pub route_inflation: f64,
    /// Median last-mile RTT contribution of a client's access network, ms.
    pub last_mile_median_ms: f64,
    /// Log-normal shape (sigma) of last-mile variability.
    pub last_mile_sigma: f64,
    /// Fixed per-path processing/peering overhead added to any wide-area
    /// route touching this region, ms (routers, IXP hops).
    pub peering_overhead_ms: f64,
}

impl Region {
    /// All regions, for sweeps.
    pub const ALL: [Region; 11] = [
        Region::NorthAmerica,
        Region::CentralAmerica,
        Region::SouthAmerica,
        Region::WesternEurope,
        Region::EasternEurope,
        Region::MiddleEast,
        Region::Africa,
        Region::SouthAsia,
        Region::EastAsia,
        Region::SoutheastAsia,
        Region::Oceania,
    ];

    /// The region's terrestrial network profile.
    ///
    /// Values are calibrated so the terrestrial columns of the paper's
    /// Table 1 come out in the right bands: well-provisioned regions
    /// (Western Europe, North America, East Asia) have low inflation and
    /// fast last miles; intra-African routes commonly detour through
    /// coastal landing points or even European IXPs, captured as a high
    /// inflation factor.
    pub fn profile(self) -> NetworkProfile {
        match self {
            Region::NorthAmerica => NetworkProfile {
                route_inflation: 1.55,
                last_mile_median_ms: 12.0,
                last_mile_sigma: 0.5,
                peering_overhead_ms: 1.0,
            },
            Region::CentralAmerica => NetworkProfile {
                route_inflation: 1.9,
                last_mile_median_ms: 16.0,
                last_mile_sigma: 0.6,
                peering_overhead_ms: 1.5,
            },
            Region::SouthAmerica => NetworkProfile {
                route_inflation: 1.8,
                last_mile_median_ms: 15.0,
                last_mile_sigma: 0.6,
                peering_overhead_ms: 1.5,
            },
            Region::WesternEurope => NetworkProfile {
                route_inflation: 1.7,
                last_mile_median_ms: 10.0,
                last_mile_sigma: 0.5,
                peering_overhead_ms: 0.8,
            },
            Region::EasternEurope => NetworkProfile {
                route_inflation: 1.8,
                last_mile_median_ms: 13.0,
                last_mile_sigma: 0.55,
                peering_overhead_ms: 1.0,
            },
            Region::MiddleEast => NetworkProfile {
                route_inflation: 2.0,
                last_mile_median_ms: 18.0,
                last_mile_sigma: 0.6,
                peering_overhead_ms: 1.5,
            },
            Region::Africa => NetworkProfile {
                route_inflation: 2.4,
                last_mile_median_ms: 20.0,
                last_mile_sigma: 0.65,
                peering_overhead_ms: 2.5,
            },
            Region::SouthAsia => NetworkProfile {
                route_inflation: 2.1,
                last_mile_median_ms: 20.0,
                last_mile_sigma: 0.6,
                peering_overhead_ms: 2.0,
            },
            Region::EastAsia => NetworkProfile {
                route_inflation: 1.6,
                last_mile_median_ms: 10.0,
                last_mile_sigma: 0.5,
                peering_overhead_ms: 0.8,
            },
            Region::SoutheastAsia => NetworkProfile {
                route_inflation: 1.9,
                last_mile_median_ms: 16.0,
                last_mile_sigma: 0.6,
                peering_overhead_ms: 1.5,
            },
            Region::Oceania => NetworkProfile {
                route_inflation: 1.7,
                last_mile_median_ms: 12.0,
                last_mile_sigma: 0.55,
                peering_overhead_ms: 1.0,
            },
        }
    }
}

/// Country-level multiplier on the last-mile latency, on top of the
/// region profile.
///
/// Regions are coarse; a few countries deviate enough to matter for the
/// paper's findings. The load-bearing case is Nigeria: §3.2 finds Nigerian
/// Starlink users are the only ones *faster* than terrestrial, "since they
/// benefit from a nearby PoP and skip the still under-developed terrestrial
/// infrastructure" — Nigerian fixed/mobile last miles run several times the
/// continental median.
pub fn country_last_mile_factor(cc: &str) -> f64 {
    match cc {
        "NG" => 5.0,
        "ET" | "CD" | "PG" => 3.0,
        "ML" | "CM" | "CI" => 2.2,
        "KE" | "TZ" | "UG" => 1.4,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nigeria_factor_dominates() {
        assert!(country_last_mile_factor("NG") >= 4.0);
        assert_eq!(country_last_mile_factor("DE"), 1.0);
        assert_eq!(country_last_mile_factor("US"), 1.0);
        assert!(country_last_mile_factor("KE") > 1.0);
    }

    #[test]
    fn all_profiles_physical() {
        for r in Region::ALL {
            let p = r.profile();
            assert!(p.route_inflation >= 1.0, "{r:?}");
            assert!(p.last_mile_median_ms > 0.0, "{r:?}");
            assert!(p.last_mile_sigma >= 0.0, "{r:?}");
            assert!(p.peering_overhead_ms >= 0.0, "{r:?}");
        }
    }

    #[test]
    fn africa_worse_provisioned_than_western_europe() {
        let af = Region::Africa.profile();
        let eu = Region::WesternEurope.profile();
        assert!(af.route_inflation > eu.route_inflation);
        assert!(af.last_mile_median_ms > eu.last_mile_median_ms);
    }

    #[test]
    fn regions_enumerate_without_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for r in Region::ALL {
            assert!(seen.insert(format!("{r:?}")));
        }
        assert_eq!(seen.len(), 11);
    }
}
