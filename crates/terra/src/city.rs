//! Embedded world-city dataset.
//!
//! ~230 cities chosen to cover every country appearing in the paper's
//! Table 1, Figures 2–5 case studies, plus broad global coverage for the
//! Figure 2 world map. Coordinates are city centroids (±0.1°), populations
//! are rough metro figures in thousands used only to weight client sampling.
//! `has_cdn` marks cities hosting a Cloudflare-style anycast CDN site; the
//! flag assignment follows Cloudflare's published city list where the paper
//! depends on it (e.g. Maputo **has** a site — Fig 3b — while Lusaka and
//! Harare do not, which is what pushes Zambian terrestrial clients ~1200 km
//! to Johannesburg in Table 1).

use crate::region::Region;
use spacecdn_geo::Geodetic;

/// One city in the embedded dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// City name (unique within the dataset).
    pub name: &'static str,
    /// ISO-3166 alpha-2 country code.
    pub cc: &'static str,
    /// English country name.
    pub country: &'static str,
    /// Latitude, degrees north.
    pub lat_deg: f64,
    /// Longitude, degrees east.
    pub lon_deg: f64,
    /// Approximate metro population, thousands.
    pub population_k: u32,
    /// World region.
    pub region: Region,
    /// Whether a Cloudflare-style CDN site operates here.
    pub has_cdn: bool,
}

impl City {
    /// The city's ground position.
    pub fn position(&self) -> Geodetic {
        Geodetic::ground(self.lat_deg, self.lon_deg)
    }
}

#[allow(clippy::too_many_arguments)]
const fn c(
    name: &'static str,
    cc: &'static str,
    country: &'static str,
    lat_deg: f64,
    lon_deg: f64,
    population_k: u32,
    region: Region,
    has_cdn: bool,
) -> City {
    City {
        name,
        cc,
        country,
        lat_deg,
        lon_deg,
        population_k,
        region,
        has_cdn,
    }
}

use Region::*;

/// The embedded city table.
static CITY_TABLE: &[City] = &[
    // ---- North America: United States ----
    c("Seattle", "US", "United States", 47.61, -122.33, 4000, NorthAmerica, true),
    c("Los Angeles", "US", "United States", 34.05, -118.24, 13200, NorthAmerica, true),
    c("San Jose", "US", "United States", 37.34, -121.89, 2000, NorthAmerica, true),
    c("Denver", "US", "United States", 39.74, -104.99, 2900, NorthAmerica, true),
    c("Dallas", "US", "United States", 32.78, -96.80, 7600, NorthAmerica, true),
    c("Chicago", "US", "United States", 41.88, -87.63, 9500, NorthAmerica, true),
    c("New York", "US", "United States", 40.71, -74.01, 19800, NorthAmerica, true),
    c("Ashburn", "US", "United States", 39.04, -77.49, 6300, NorthAmerica, true),
    c("Atlanta", "US", "United States", 33.75, -84.39, 6100, NorthAmerica, true),
    c("Miami", "US", "United States", 25.76, -80.19, 6100, NorthAmerica, true),
    c("Phoenix", "US", "United States", 33.45, -112.07, 4900, NorthAmerica, true),
    c("Kansas City", "US", "United States", 39.10, -94.58, 2200, NorthAmerica, true),
    c("Boise", "US", "United States", 43.62, -116.20, 750, NorthAmerica, false),
    c("Billings", "US", "United States", 45.78, -108.50, 120, NorthAmerica, false),
    c("Houston", "US", "United States", 29.76, -95.37, 7300, NorthAmerica, true),
    c("Minneapolis", "US", "United States", 44.98, -93.27, 3700, NorthAmerica, true),
    c("Salt Lake City", "US", "United States", 40.76, -111.89, 1300, NorthAmerica, true),
    c("Portland", "US", "United States", 45.52, -122.68, 2500, NorthAmerica, true),
    c("Nashville", "US", "United States", 36.16, -86.78, 2100, NorthAmerica, true),
    c("San Diego", "US", "United States", 32.72, -117.16, 3300, NorthAmerica, false),
    // ---- North America: Canada ----
    c("Toronto", "CA", "Canada", 43.65, -79.38, 6200, NorthAmerica, true),
    c("Vancouver", "CA", "Canada", 49.28, -123.12, 2600, NorthAmerica, true),
    c("Montreal", "CA", "Canada", 45.50, -73.57, 4300, NorthAmerica, true),
    c("Calgary", "CA", "Canada", 51.05, -114.07, 1600, NorthAmerica, true),
    c("Winnipeg", "CA", "Canada", 49.90, -97.14, 840, NorthAmerica, true),
    c("Halifax", "CA", "Canada", 44.65, -63.57, 470, NorthAmerica, false),
    c("Ottawa", "CA", "Canada", 45.42, -75.70, 1500, NorthAmerica, false),
    c("Edmonton", "CA", "Canada", 53.55, -113.49, 1500, NorthAmerica, false),
    c("Quebec City", "CA", "Canada", 46.81, -71.21, 840, NorthAmerica, false),
    // ---- Central America & Caribbean ----
    c("Mexico City", "MX", "Mexico", 19.43, -99.13, 21800, CentralAmerica, true),
    c("Queretaro", "MX", "Mexico", 20.59, -100.39, 1500, CentralAmerica, true),
    c("Monterrey", "MX", "Mexico", 25.69, -100.32, 5300, CentralAmerica, false),
    c("Guadalajara", "MX", "Mexico", 20.66, -103.35, 5300, CentralAmerica, true),
    c("Tijuana", "MX", "Mexico", 32.51, -117.04, 2200, CentralAmerica, false),
    c("Merida", "MX", "Mexico", 20.97, -89.62, 1200, CentralAmerica, false),
    c("Guatemala City", "GT", "Guatemala", 14.63, -90.51, 3000, CentralAmerica, true),
    c("Quetzaltenango", "GT", "Guatemala", 14.83, -91.52, 250, CentralAmerica, false),
    c("San Salvador", "SV", "El Salvador", 13.69, -89.22, 1100, CentralAmerica, false),
    c("Tegucigalpa", "HN", "Honduras", 14.07, -87.19, 1400, CentralAmerica, true),
    c("Managua", "NI", "Nicaragua", 12.11, -86.24, 1100, CentralAmerica, false),
    c("San Jose CR", "CR", "Costa Rica", 9.93, -84.08, 1400, CentralAmerica, true),
    c("Panama City", "PA", "Panama", 8.98, -79.52, 1900, CentralAmerica, true),
    c("Port-au-Prince", "HT", "Haiti", 18.54, -72.34, 2800, CentralAmerica, true),
    c("Cap-Haitien", "HT", "Haiti", 19.76, -72.20, 280, CentralAmerica, false),
    c("Santo Domingo", "DO", "Dominican Republic", 18.47, -69.89, 3300, CentralAmerica, true),
    c("Kingston", "JM", "Jamaica", 18.02, -76.80, 1200, CentralAmerica, true),
    c("San Juan", "PR", "Puerto Rico", 18.47, -66.11, 2400, CentralAmerica, true),
    // ---- South America ----
    c("Bogota", "CO", "Colombia", 4.71, -74.07, 11000, SouthAmerica, true),
    c("Medellin", "CO", "Colombia", 6.24, -75.58, 4000, SouthAmerica, true),
    c("Quito", "EC", "Ecuador", -0.18, -78.47, 2000, SouthAmerica, true),
    c("Lima", "PE", "Peru", -12.05, -77.04, 11000, SouthAmerica, true),
    c("Arequipa", "PE", "Peru", -16.41, -71.54, 1100, SouthAmerica, false),
    c("Santiago", "CL", "Chile", -33.45, -70.67, 6900, SouthAmerica, true),
    c("Buenos Aires", "AR", "Argentina", -34.60, -58.38, 15400, SouthAmerica, true),
    c("Cordoba", "AR", "Argentina", -31.42, -64.18, 1600, SouthAmerica, true),
    c("Montevideo", "UY", "Uruguay", -34.90, -56.16, 1800, SouthAmerica, true),
    c("Asuncion", "PY", "Paraguay", -25.26, -57.58, 3400, SouthAmerica, true),
    c("La Paz", "BO", "Bolivia", -16.49, -68.12, 1900, SouthAmerica, false),
    c("Sao Paulo", "BR", "Brazil", -23.55, -46.63, 22400, SouthAmerica, true),
    c("Rio de Janeiro", "BR", "Brazil", -22.91, -43.17, 13600, SouthAmerica, true),
    c("Brasilia", "BR", "Brazil", -15.79, -47.88, 4800, SouthAmerica, true),
    c("Fortaleza", "BR", "Brazil", -3.73, -38.54, 4100, SouthAmerica, true),
    c("Porto Alegre", "BR", "Brazil", -30.03, -51.22, 4400, SouthAmerica, true),
    c("Manaus", "BR", "Brazil", -3.12, -60.02, 2300, SouthAmerica, false),
    c("Recife", "BR", "Brazil", -8.05, -34.90, 4100, SouthAmerica, true),
    c("Cali", "CO", "Colombia", 3.45, -76.53, 2800, SouthAmerica, false),
    c("Guayaquil", "EC", "Ecuador", -2.19, -79.89, 3100, SouthAmerica, false),
    c("Mendoza", "AR", "Argentina", -32.89, -68.84, 1200, SouthAmerica, false),
    c("Punta Arenas", "CL", "Chile", -53.16, -70.91, 130, SouthAmerica, false),
    c("Valparaiso", "CL", "Chile", -33.05, -71.62, 1000, SouthAmerica, false),
    c("Santa Cruz", "BO", "Bolivia", -17.78, -63.18, 1900, SouthAmerica, true),
    // ---- Western Europe ----
    c("London", "GB", "United Kingdom", 51.51, -0.13, 14800, WesternEurope, true),
    c("Manchester", "GB", "United Kingdom", 53.48, -2.24, 2800, WesternEurope, true),
    c("Edinburgh", "GB", "United Kingdom", 55.95, -3.19, 900, WesternEurope, true),
    c("Dublin", "IE", "Ireland", 53.35, -6.26, 2100, WesternEurope, true),
    c("Paris", "FR", "France", 48.86, 2.35, 13000, WesternEurope, true),
    c("Marseille", "FR", "France", 43.30, 5.37, 1900, WesternEurope, true),
    c("Brussels", "BE", "Belgium", 50.85, 4.35, 2100, WesternEurope, true),
    c("Amsterdam", "NL", "Netherlands", 52.37, 4.90, 2500, WesternEurope, true),
    c("Frankfurt", "DE", "Germany", 50.11, 8.68, 2700, WesternEurope, true),
    c("Berlin", "DE", "Germany", 52.52, 13.40, 4700, WesternEurope, true),
    c("Munich", "DE", "Germany", 48.14, 11.58, 3000, WesternEurope, true),
    c("Hamburg", "DE", "Germany", 53.55, 9.99, 2500, WesternEurope, true),
    c("Zurich", "CH", "Switzerland", 47.38, 8.54, 1400, WesternEurope, true),
    c("Vienna", "AT", "Austria", 48.21, 16.37, 2000, WesternEurope, true),
    c("Madrid", "ES", "Spain", 40.42, -3.70, 6800, WesternEurope, true),
    c("Barcelona", "ES", "Spain", 41.39, 2.17, 5700, WesternEurope, true),
    c("Valencia", "ES", "Spain", 39.47, -0.38, 1600, WesternEurope, false),
    c("Seville", "ES", "Spain", 37.39, -5.99, 1500, WesternEurope, false),
    c("Bilbao", "ES", "Spain", 43.26, -2.93, 1000, WesternEurope, false),
    c("Lisbon", "PT", "Portugal", 38.72, -9.14, 2900, WesternEurope, true),
    c("Porto", "PT", "Portugal", 41.15, -8.61, 1700, WesternEurope, false),
    c("Milan", "IT", "Italy", 45.46, 9.19, 4300, WesternEurope, true),
    c("Rome", "IT", "Italy", 41.90, 12.50, 4300, WesternEurope, true),
    c("Oslo", "NO", "Norway", 59.91, 10.75, 1100, WesternEurope, true),
    c("Stockholm", "SE", "Sweden", 59.33, 18.07, 2400, WesternEurope, true),
    c("Copenhagen", "DK", "Denmark", 55.68, 12.57, 1400, WesternEurope, true),
    c("Helsinki", "FI", "Finland", 60.17, 24.94, 1300, WesternEurope, true),
    c("Reykjavik", "IS", "Iceland", 64.15, -21.94, 230, WesternEurope, true),
    c("Cologne", "DE", "Germany", 50.94, 6.96, 2100, WesternEurope, false),
    c("Lyon", "FR", "France", 45.76, 4.84, 2300, WesternEurope, true),
    c("Bordeaux", "FR", "France", 44.84, -0.58, 1000, WesternEurope, false),
    c("Naples", "IT", "Italy", 40.85, 14.27, 3100, WesternEurope, false),
    c("Turin", "IT", "Italy", 45.07, 7.69, 1700, WesternEurope, false),
    c("Geneva", "CH", "Switzerland", 46.20, 6.14, 630, WesternEurope, true),
    c("Gothenburg", "SE", "Sweden", 57.71, 11.97, 1100, WesternEurope, false),
    // ---- Eastern Europe ----
    c("Warsaw", "PL", "Poland", 52.23, 21.01, 3100, EasternEurope, true),
    c("Krakow", "PL", "Poland", 50.06, 19.94, 1700, EasternEurope, false),
    c("Prague", "CZ", "Czechia", 50.08, 14.44, 2700, EasternEurope, true),
    c("Budapest", "HU", "Hungary", 47.50, 19.04, 3000, EasternEurope, true),
    c("Bucharest", "RO", "Romania", 44.43, 26.10, 2300, EasternEurope, true),
    c("Sofia", "BG", "Bulgaria", 42.70, 23.32, 1300, EasternEurope, true),
    c("Athens", "GR", "Greece", 37.98, 23.73, 3600, EasternEurope, true),
    c("Vilnius", "LT", "Lithuania", 54.69, 25.28, 700, EasternEurope, true),
    c("Kaunas", "LT", "Lithuania", 54.90, 23.90, 380, EasternEurope, false),
    c("Klaipeda", "LT", "Lithuania", 55.71, 21.13, 160, EasternEurope, false),
    c("Riga", "LV", "Latvia", 56.95, 24.11, 920, EasternEurope, true),
    c("Tallinn", "EE", "Estonia", 59.44, 24.75, 610, EasternEurope, true),
    c("Kyiv", "UA", "Ukraine", 50.45, 30.52, 3700, EasternEurope, true),
    c("Chisinau", "MD", "Moldova", 47.01, 28.86, 730, EasternEurope, true),
    c("Zagreb", "HR", "Croatia", 45.81, 15.98, 1100, EasternEurope, true),
    c("Belgrade", "RS", "Serbia", 44.79, 20.45, 1700, EasternEurope, true),
    c("Nicosia", "CY", "Cyprus", 35.19, 33.38, 340, EasternEurope, true),
    c("Limassol", "CY", "Cyprus", 34.71, 33.02, 240, EasternEurope, false),
    c("Gdansk", "PL", "Poland", 54.35, 18.65, 1100, EasternEurope, false),
    c("Lviv", "UA", "Ukraine", 49.84, 24.03, 720, EasternEurope, false),
    c("Odesa", "UA", "Ukraine", 46.48, 30.73, 1000, EasternEurope, false),
    c("Brno", "CZ", "Czechia", 49.20, 16.61, 380, EasternEurope, false),
    // ---- Middle East & North Africa ----
    c("Istanbul", "TR", "Turkey", 41.01, 28.98, 15800, MiddleEast, true),
    c("Tel Aviv", "IL", "Israel", 32.09, 34.78, 4400, MiddleEast, true),
    c("Dubai", "AE", "United Arab Emirates", 25.20, 55.27, 3600, MiddleEast, true),
    c("Riyadh", "SA", "Saudi Arabia", 24.71, 46.68, 7700, MiddleEast, true),
    c("Doha", "QA", "Qatar", 25.29, 51.53, 2400, MiddleEast, true),
    c("Amman", "JO", "Jordan", 31.95, 35.93, 2200, MiddleEast, true),
    c("Muscat", "OM", "Oman", 23.59, 58.41, 1600, MiddleEast, true),
    c("Cairo", "EG", "Egypt", 30.04, 31.24, 21800, MiddleEast, true),
    c("Casablanca", "MA", "Morocco", 33.57, -7.59, 3800, MiddleEast, true),
    c("Tunis", "TN", "Tunisia", 36.81, 10.18, 2400, MiddleEast, true),
    c("Algiers", "DZ", "Algeria", 36.75, 3.06, 2800, MiddleEast, true),
    c("Ankara", "TR", "Turkey", 39.93, 32.86, 5700, MiddleEast, false),
    c("Jeddah", "SA", "Saudi Arabia", 21.49, 39.19, 4700, MiddleEast, true),
    c("Alexandria", "EG", "Egypt", 31.20, 29.92, 5500, MiddleEast, false),
    // ---- Sub-Saharan Africa ----
    c("Lagos", "NG", "Nigeria", 6.52, 3.38, 15400, Africa, true),
    c("Abuja", "NG", "Nigeria", 9.06, 7.49, 3800, Africa, false),
    c("Ibadan", "NG", "Nigeria", 7.38, 3.95, 3800, Africa, false),
    c("Port Harcourt", "NG", "Nigeria", 4.82, 7.05, 3500, Africa, false),
    c("Accra", "GH", "Ghana", 5.60, -0.19, 2600, Africa, true),
    c("Abidjan", "CI", "Ivory Coast", 5.36, -4.01, 5600, Africa, false),
    c("Dakar", "SN", "Senegal", 14.72, -17.47, 3300, Africa, true),
    c("Bamako", "ML", "Mali", 12.64, -8.00, 2900, Africa, false),
    c("Douala", "CM", "Cameroon", 4.05, 9.70, 3900, Africa, false),
    c("Kinshasa", "CD", "DR Congo", -4.44, 15.27, 16000, Africa, true),
    c("Luanda", "AO", "Angola", -8.84, 13.23, 9000, Africa, true),
    c("Nairobi", "KE", "Kenya", -1.29, 36.82, 5100, Africa, true),
    c("Mombasa", "KE", "Kenya", -4.04, 39.66, 1400, Africa, true),
    c("Kisumu", "KE", "Kenya", -0.09, 34.77, 600, Africa, false),
    c("Addis Ababa", "ET", "Ethiopia", 9.02, 38.75, 5500, Africa, false),
    c("Kampala", "UG", "Uganda", 0.35, 32.58, 3700, Africa, true),
    c("Kigali", "RW", "Rwanda", -1.95, 30.06, 1300, Africa, true),
    c("Dar es Salaam", "TZ", "Tanzania", -6.79, 39.21, 7400, Africa, true),
    c("Dodoma", "TZ", "Tanzania", -6.16, 35.75, 770, Africa, false),
    c("Lusaka", "ZM", "Zambia", -15.39, 28.32, 3200, Africa, false),
    c("Ndola", "ZM", "Zambia", -12.97, 28.64, 630, Africa, false),
    c("Harare", "ZW", "Zimbabwe", -17.83, 31.05, 2200, Africa, false),
    c("Lilongwe", "MW", "Malawi", -13.96, 33.79, 1200, Africa, false),
    c("Maputo", "MZ", "Mozambique", -25.97, 32.57, 1800, Africa, true),
    c("Beira", "MZ", "Mozambique", -19.84, 34.84, 600, Africa, false),
    c("Nampula", "MZ", "Mozambique", -15.12, 39.27, 760, Africa, false),
    c("Mbabane", "SZ", "Eswatini", -26.31, 31.14, 95, Africa, false),
    c("Manzini", "SZ", "Eswatini", -26.49, 31.38, 110, Africa, false),
    c("Gaborone", "BW", "Botswana", -24.65, 25.91, 280, Africa, false),
    c("Windhoek", "NA", "Namibia", -22.56, 17.08, 430, Africa, false),
    c("Johannesburg", "ZA", "South Africa", -26.20, 28.05, 10000, Africa, true),
    c("Cape Town", "ZA", "South Africa", -33.92, 18.42, 4800, Africa, true),
    c("Durban", "ZA", "South Africa", -29.86, 31.02, 3200, Africa, true),
    c("Antananarivo", "MG", "Madagascar", -18.88, 47.51, 3700, Africa, true),
    c("Kumasi", "GH", "Ghana", 6.69, -1.62, 3500, Africa, false),
    c("Pretoria", "ZA", "South Africa", -25.75, 28.19, 2800, Africa, false),
    c("Port Elizabeth", "ZA", "South Africa", -33.96, 25.60, 1300, Africa, false),
    c("Mwanza", "TZ", "Tanzania", -2.52, 32.90, 1200, Africa, false),
    // ---- South Asia ----
    c("Mumbai", "IN", "India", 19.08, 72.88, 21300, SouthAsia, true),
    c("Delhi", "IN", "India", 28.61, 77.21, 32900, SouthAsia, true),
    c("Bangalore", "IN", "India", 12.97, 77.59, 13600, SouthAsia, true),
    c("Chennai", "IN", "India", 13.08, 80.27, 11800, SouthAsia, true),
    c("Karachi", "PK", "Pakistan", 24.86, 67.01, 17200, SouthAsia, true),
    c("Dhaka", "BD", "Bangladesh", 23.81, 90.41, 23200, SouthAsia, true),
    c("Colombo", "LK", "Sri Lanka", 6.93, 79.85, 2500, SouthAsia, true),
    c("Hyderabad", "IN", "India", 17.39, 78.49, 10500, SouthAsia, true),
    c("Kolkata", "IN", "India", 22.57, 88.36, 15100, SouthAsia, true),
    c("Lahore", "PK", "Pakistan", 31.52, 74.36, 13500, SouthAsia, false),
    // ---- East Asia ----
    c("Tokyo", "JP", "Japan", 35.68, 139.69, 37300, EastAsia, true),
    c("Osaka", "JP", "Japan", 34.69, 135.50, 19000, EastAsia, true),
    c("Sapporo", "JP", "Japan", 43.06, 141.35, 2700, EastAsia, false),
    c("Fukuoka", "JP", "Japan", 33.59, 130.40, 5500, EastAsia, true),
    c("Nagoya", "JP", "Japan", 35.18, 136.91, 9500, EastAsia, false),
    c("Seoul", "KR", "South Korea", 37.57, 126.98, 25500, EastAsia, true),
    c("Busan", "KR", "South Korea", 35.18, 129.08, 3400, EastAsia, true),
    c("Taipei", "TW", "Taiwan", 25.03, 121.57, 7000, EastAsia, true),
    c("Hong Kong", "HK", "Hong Kong", 22.32, 114.17, 7500, EastAsia, true),
    c("Shanghai", "CN", "China", 31.23, 121.47, 28500, EastAsia, true),
    c("Beijing", "CN", "China", 39.90, 116.41, 21500, EastAsia, true),
    c("Ulaanbaatar", "MN", "Mongolia", 47.89, 106.91, 1600, EastAsia, false),
    // ---- Southeast Asia ----
    c("Singapore", "SG", "Singapore", 1.35, 103.82, 6000, SoutheastAsia, true),
    c("Kuala Lumpur", "MY", "Malaysia", 3.139, 101.69, 8400, SoutheastAsia, true),
    c("Jakarta", "ID", "Indonesia", -6.21, 106.85, 34500, SoutheastAsia, true),
    c("Bangkok", "TH", "Thailand", 13.76, 100.50, 17000, SoutheastAsia, true),
    c("Manila", "PH", "Philippines", 14.60, 120.98, 24300, SoutheastAsia, true),
    c("Cebu", "PH", "Philippines", 10.32, 123.89, 3000, SoutheastAsia, true),
    c("Ho Chi Minh City", "VN", "Vietnam", 10.82, 106.63, 9300, SoutheastAsia, true),
    c("Hanoi", "VN", "Vietnam", 21.03, 105.85, 5300, SoutheastAsia, true),
    c("Phnom Penh", "KH", "Cambodia", 11.56, 104.92, 2300, SoutheastAsia, true),
    // ---- Oceania ----
    c("Sydney", "AU", "Australia", -33.87, 151.21, 5400, Oceania, true),
    c("Melbourne", "AU", "Australia", -37.81, 144.96, 5200, Oceania, true),
    c("Brisbane", "AU", "Australia", -27.47, 153.03, 2600, Oceania, true),
    c("Perth", "AU", "Australia", -31.95, 115.86, 2100, Oceania, true),
    c("Adelaide", "AU", "Australia", -34.93, 138.60, 1400, Oceania, true),
    c("Auckland", "NZ", "New Zealand", -36.85, 174.76, 1700, Oceania, true),
    c("Wellington", "NZ", "New Zealand", -41.29, 174.78, 420, Oceania, false),
    c("Christchurch", "NZ", "New Zealand", -43.53, 172.64, 400, Oceania, true),
    c("Suva", "FJ", "Fiji", -18.14, 178.44, 200, Oceania, false),
    c("Port Moresby", "PG", "Papua New Guinea", -9.44, 147.18, 400, Oceania, false),
    c("Darwin", "AU", "Australia", -12.46, 130.84, 150, Oceania, false),
    c("Hobart", "AU", "Australia", -42.88, 147.33, 250, Oceania, false),
    c("Dunedin", "NZ", "New Zealand", -45.87, 170.50, 130, Oceania, false),
    // ---- additional East/Southeast Asia ----
    c("Hiroshima", "JP", "Japan", 34.39, 132.46, 1400, EastAsia, false),
    c("Sendai", "JP", "Japan", 38.27, 140.87, 2300, EastAsia, false),
    c("Surabaya", "ID", "Indonesia", -7.25, 112.75, 10000, SoutheastAsia, false),
    c("Chiang Mai", "TH", "Thailand", 18.79, 98.98, 1200, SoutheastAsia, false),
    c("Davao", "PH", "Philippines", 7.07, 125.61, 1800, SoutheastAsia, false),
    c("Da Nang", "VN", "Vietnam", 16.05, 108.21, 1200, SoutheastAsia, false),
];

/// All cities in the dataset.
pub fn cities() -> &'static [City] {
    CITY_TABLE
}

/// All cities in a country (by ISO alpha-2 code, case-sensitive uppercase).
pub fn cities_in_country(cc: &str) -> Vec<&'static City> {
    CITY_TABLE.iter().filter(|c| c.cc == cc).collect()
}

/// Look up a city by its (unique) name.
pub fn city_by_name(name: &str) -> Option<&'static City> {
    CITY_TABLE.iter().find(|c| c.name == name)
}

/// Every distinct country code in the dataset, sorted.
pub fn country_codes() -> Vec<&'static str> {
    let mut ccs: Vec<&'static str> = CITY_TABLE.iter().map(|c| c.cc).collect();
    ccs.sort_unstable();
    ccs.dedup();
    ccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_size() {
        assert!(cities().len() >= 150, "got {}", cities().len());
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = cities().iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate city names");
    }

    #[test]
    fn coordinates_in_range() {
        for c in cities() {
            assert!((-90.0..=90.0).contains(&c.lat_deg), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.lon_deg), "{}", c.name);
            assert!(c.population_k > 0, "{}", c.name);
        }
    }

    #[test]
    fn table1_countries_present() {
        // Every country in the paper's Table 1 must be represented.
        for cc in ["GT", "MZ", "CY", "SZ", "HT", "KE", "ZM", "RW", "LT", "ES", "JP"] {
            assert!(!cities_in_country(cc).is_empty(), "missing {cc}");
        }
    }

    #[test]
    fn fig4_countries_present() {
        for cc in ["NG", "KE", "DE", "US", "CA", "GB"] {
            assert!(cities_in_country(cc).len() >= 3, "need several cities in {cc}");
        }
    }

    #[test]
    fn fig3_cdn_sites_exist() {
        // The Maputo case study requires these CDN cities.
        for name in ["Maputo", "Johannesburg", "Cape Town", "Lisbon", "Frankfurt"] {
            let city = city_by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(city.has_cdn, "{name} must host a CDN site");
        }
    }

    #[test]
    fn zambia_and_eswatini_have_no_cdn() {
        // Table 1 shape: Zambian/Swazi clients travel to Johannesburg.
        for cc in ["ZM", "SZ", "ZW"] {
            assert!(
                cities_in_country(cc).iter().all(|c| !c.has_cdn),
                "{cc} must have no CDN site"
            );
        }
    }

    #[test]
    fn known_distances_sane() {
        let lusaka = city_by_name("Lusaka").unwrap().position();
        let joburg = city_by_name("Johannesburg").unwrap().position();
        let d = lusaka.great_circle_distance(joburg).0;
        assert!((1000.0..1350.0).contains(&d), "Lusaka-Joburg {d} km");

        let maputo = city_by_name("Maputo").unwrap().position();
        let fra = city_by_name("Frankfurt").unwrap().position();
        let d2 = maputo.great_circle_distance(fra).0;
        assert!((8300.0..8900.0).contains(&d2), "Maputo-Frankfurt {d2} km");
    }

    #[test]
    fn country_codes_cover_55_plus() {
        // The paper analyses Starlink measurements from 55 countries; our
        // dataset must offer comparable breadth.
        assert!(country_codes().len() >= 55, "got {}", country_codes().len());
    }

    #[test]
    fn lookup_roundtrip() {
        assert_eq!(city_by_name("Maputo").unwrap().cc, "MZ");
        assert!(city_by_name("Atlantis").is_none());
        assert_eq!(cities_in_country("JP").len(), 7);
    }
}
