//! Lazy next-event streams: bounded-memory complements to [`crate::Scheduler`].
//!
//! The heap scheduler materializes every pending event, which is the right
//! shape for feedback-driven worlds (an event handler schedules new
//! events). Open workloads are different: a Poisson arrival process knows
//! its next event analytically — it is one RNG draw away — and epoch
//! boundaries are a fixed arithmetic sequence. Materializing ten million
//! arrivals up front costs gigabytes and a heap `pop` per event;
//! generating them lazily costs O(1) memory and a pointer bump.
//!
//! [`EventStream`] models exactly that: an iterator in simulated time.
//! [`FixedTicks`] covers periodic boundaries, [`Merged`] composes two
//! streams into one time-ordered stream with a deterministic tie rule,
//! and [`drive`] is the matching run loop. The traffic engine in
//! `spacecdn-core` builds its per-shard simulation on these.

use spacecdn_geo::{SimDuration, SimTime};

/// A lazily generated, time-ordered sequence of simulation events.
///
/// Implementations must yield events with non-decreasing timestamps;
/// [`drive`] debug-asserts this. Unlike [`Iterator`], the timestamp is a
/// first-class part of the item so streams can be merged by time.
pub trait EventStream {
    /// The event payload.
    type Event;

    /// Generate the next event, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<(SimTime, Self::Event)>;
}

/// A finite arithmetic sequence of ticks: `origin + step·k` for `k` in a
/// half-open range, yielding `k` as the event payload. Used for topology
/// epoch boundaries.
#[derive(Debug, Clone)]
pub struct FixedTicks {
    origin: SimTime,
    step: SimDuration,
    next: u64,
    end: u64,
}

impl FixedTicks {
    /// Ticks at `origin + step·k` for `k` in `first..end`.
    pub fn new(origin: SimTime, step: SimDuration, first: u64, end: u64) -> Self {
        FixedTicks {
            origin,
            step,
            next: first,
            end,
        }
    }
}

impl EventStream for FixedTicks {
    type Event = u64;

    fn next_event(&mut self) -> Option<(SimTime, u64)> {
        if self.next >= self.end {
            return None;
        }
        let k = self.next;
        self.next += 1;
        Some((self.origin + self.step.mul(k), k))
    }
}

/// An event from a [`Merged`] stream: which side produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergedEvent<A, B> {
    /// The event came from the first (tie-winning) stream.
    First(A),
    /// The event came from the second stream.
    Second(B),
}

/// Two [`EventStream`]s merged into one time-ordered stream.
///
/// Ties fire the **first** stream's event before the second's. This
/// mirrors [`crate::Scheduler`]'s FIFO tie rule for the common setup
/// where all first-stream events are scheduled before any second-stream
/// event at the same instant (exactly how the traffic engine orders epoch
/// boundaries ahead of arrivals).
#[derive(Debug)]
pub struct Merged<A: EventStream, B: EventStream> {
    a: A,
    b: B,
    peek_a: Option<(SimTime, A::Event)>,
    peek_b: Option<(SimTime, B::Event)>,
    primed: bool,
}

impl<A: EventStream, B: EventStream> Merged<A, B> {
    /// Merge `a` (tie winner) and `b`.
    pub fn new(a: A, b: B) -> Self {
        Merged {
            a,
            b,
            peek_a: None,
            peek_b: None,
            primed: false,
        }
    }
}

impl<A: EventStream, B: EventStream> EventStream for Merged<A, B> {
    type Event = MergedEvent<A::Event, B::Event>;

    fn next_event(&mut self) -> Option<(SimTime, Self::Event)> {
        if !self.primed {
            self.peek_a = self.a.next_event();
            self.peek_b = self.b.next_event();
            self.primed = true;
        }
        let take_a = match (&self.peek_a, &self.peek_b) {
            (Some((ta, _)), Some((tb, _))) => ta <= tb,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_a {
            let (t, ev) = self.peek_a.take().expect("checked above");
            self.peek_a = self.a.next_event();
            Some((t, MergedEvent::First(ev)))
        } else {
            let (t, ev) = self.peek_b.take()?;
            self.peek_b = self.b.next_event();
            Some((t, MergedEvent::Second(ev)))
        }
    }
}

/// Drain `stream` into `handler` until past `horizon` (inclusive, like
/// [`crate::run_until`]). Returns the number of events fired. The first
/// event strictly beyond the horizon is consumed from the stream and
/// discarded — streams are single-use run inputs, not resumable queues.
pub fn drive<W, S, F>(world: &mut W, stream: &mut S, horizon: SimTime, mut handler: F) -> u64
where
    S: EventStream,
    F: FnMut(&mut W, SimTime, S::Event),
{
    let mut fired = 0u64;
    let mut prev = SimTime::EPOCH;
    while let Some((t, ev)) = stream.next_event() {
        if t > horizon {
            break;
        }
        debug_assert!(t >= prev, "event streams must be time-ordered");
        prev = t;
        handler(world, t, ev);
        fired += 1;
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{run_until, Scheduler};

    /// A stream over a pre-materialized event list (test double).
    struct Listed(std::vec::IntoIter<(SimTime, u32)>);

    impl EventStream for Listed {
        type Event = u32;
        fn next_event(&mut self) -> Option<(SimTime, u32)> {
            self.0.next()
        }
    }

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn fixed_ticks_yield_the_arithmetic_sequence() {
        let mut ticks = FixedTicks::new(s(10), SimDuration::from_secs(5), 1, 4);
        assert_eq!(ticks.next_event(), Some((s(15), 1)));
        assert_eq!(ticks.next_event(), Some((s(20), 2)));
        assert_eq!(ticks.next_event(), Some((s(25), 3)));
        assert_eq!(ticks.next_event(), None);
        assert_eq!(ticks.next_event(), None, "stays exhausted");
    }

    #[test]
    fn empty_tick_range_is_empty() {
        let mut ticks = FixedTicks::new(s(0), SimDuration::from_secs(5), 1, 1);
        assert_eq!(ticks.next_event(), None);
    }

    #[test]
    fn merge_interleaves_by_time_and_first_wins_ties() {
        let a = Listed(vec![(s(5), 1), (s(10), 2)].into_iter());
        let b = Listed(vec![(s(3), 91), (s(5), 92), (s(11), 93)].into_iter());
        let mut m = Merged::new(a, b);
        let mut order = Vec::new();
        while let Some((t, ev)) = m.next_event() {
            order.push((t, ev));
        }
        assert_eq!(
            order,
            vec![
                (s(3), MergedEvent::Second(91)),
                (s(5), MergedEvent::First(1)), // tie at t=5: First fires first
                (s(5), MergedEvent::Second(92)),
                (s(10), MergedEvent::First(2)),
                (s(11), MergedEvent::Second(93)),
            ]
        );
    }

    #[test]
    fn drive_fires_through_horizon_inclusive_and_stops_past_it() {
        let mut stream = Listed(vec![(s(1), 1), (s(2), 2), (s(2), 3), (s(9), 4)].into_iter());
        let mut seen = Vec::new();
        let fired = drive(&mut seen, &mut stream, s(2), |seen, t, ev| {
            seen.push((t, ev));
        });
        assert_eq!(fired, 3);
        assert_eq!(seen, vec![(s(1), 1), (s(2), 2), (s(2), 3)]);
    }

    #[test]
    fn merged_order_matches_scheduler_fifo_semantics() {
        // The contract the traffic engine relies on: merging ticks (First)
        // with arrivals (Second) replays exactly the order the heap
        // scheduler produces when all ticks are scheduled before any
        // arrival — (time, seq) keys, FIFO ties.
        let ticks: Vec<(SimTime, u32)> = (1..4).map(|k| (s(k * 10), k as u32)).collect();
        let arrivals: Vec<(SimTime, u32)> = vec![
            (s(4), 100),
            (s(10), 101),
            (s(10), 102),
            (s(25), 103),
            (s(30), 104),
        ];

        let mut sched: Scheduler<(bool, u32)> = Scheduler::new();
        for &(t, k) in &ticks {
            sched.schedule_at(t, (true, k));
        }
        for &(t, k) in &arrivals {
            sched.schedule_at(t, (false, k));
        }
        let mut via_heap = Vec::new();
        run_until(&mut via_heap, &mut sched, s(1_000), |out, _, t, ev| {
            out.push((t, ev))
        });

        let mut merged = Merged::new(Listed(ticks.into_iter()), Listed(arrivals.into_iter()));
        let mut via_stream = Vec::new();
        drive(&mut via_stream, &mut merged, s(1_000), |out, t, ev| {
            out.push((
                t,
                match ev {
                    MergedEvent::First(k) => (true, k),
                    MergedEvent::Second(k) => (false, k),
                },
            ));
        });
        assert_eq!(via_stream, via_heap);
    }
}
