//! Lazy next-event streams: bounded-memory complements to [`crate::Scheduler`].
//!
//! The heap scheduler materializes every pending event, which is the right
//! shape for feedback-driven worlds (an event handler schedules new
//! events). Open workloads are different: a Poisson arrival process knows
//! its next event analytically — it is one RNG draw away — and epoch
//! boundaries are a fixed arithmetic sequence. Materializing ten million
//! arrivals up front costs gigabytes and a heap `pop` per event;
//! generating them lazily costs O(1) memory and a pointer bump.
//!
//! [`EventStream`] models exactly that: an iterator in simulated time.
//! [`FixedTicks`] covers periodic boundaries, [`Merged`] composes two
//! streams into one time-ordered stream with a deterministic tie rule,
//! and [`drive`] is the matching run loop. The traffic engine in
//! `spacecdn-core` builds its per-shard simulation on these.

use spacecdn_geo::{SimDuration, SimTime};

/// A lazily generated, time-ordered sequence of simulation events.
///
/// Implementations must yield events with non-decreasing timestamps;
/// [`drive`] debug-asserts this. Unlike [`Iterator`], the timestamp is a
/// first-class part of the item so streams can be merged by time.
pub trait EventStream {
    /// The event payload.
    type Event;

    /// Generate the next event, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<(SimTime, Self::Event)>;
}

/// A finite arithmetic sequence of ticks: `origin + step·k` for `k` in a
/// half-open range, yielding `k` as the event payload. Used for topology
/// epoch boundaries.
#[derive(Debug, Clone)]
pub struct FixedTicks {
    origin: SimTime,
    step: SimDuration,
    next: u64,
    end: u64,
}

impl FixedTicks {
    /// Ticks at `origin + step·k` for `k` in `first..end`.
    pub fn new(origin: SimTime, step: SimDuration, first: u64, end: u64) -> Self {
        FixedTicks {
            origin,
            step,
            next: first,
            end,
        }
    }
}

impl EventStream for FixedTicks {
    type Event = u64;

    fn next_event(&mut self) -> Option<(SimTime, u64)> {
        if self.next >= self.end {
            return None;
        }
        let k = self.next;
        self.next += 1;
        Some((self.origin + self.step.mul(k), k))
    }
}

/// An event from a [`Merged`] stream: which side produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergedEvent<A, B> {
    /// The event came from the first (tie-winning) stream.
    First(A),
    /// The event came from the second stream.
    Second(B),
}

/// Two [`EventStream`]s merged into one time-ordered stream.
///
/// Ties fire the **first** stream's event before the second's. This
/// mirrors [`crate::Scheduler`]'s FIFO tie rule for the common setup
/// where all first-stream events are scheduled before any second-stream
/// event at the same instant (exactly how the traffic engine orders epoch
/// boundaries ahead of arrivals).
#[derive(Debug)]
pub struct Merged<A: EventStream, B: EventStream> {
    a: A,
    b: B,
    peek_a: Option<(SimTime, A::Event)>,
    peek_b: Option<(SimTime, B::Event)>,
    primed: bool,
}

impl<A: EventStream, B: EventStream> Merged<A, B> {
    /// Merge `a` (tie winner) and `b`.
    pub fn new(a: A, b: B) -> Self {
        Merged {
            a,
            b,
            peek_a: None,
            peek_b: None,
            primed: false,
        }
    }
}

impl<A: EventStream, B: EventStream> EventStream for Merged<A, B> {
    type Event = MergedEvent<A::Event, B::Event>;

    fn next_event(&mut self) -> Option<(SimTime, Self::Event)> {
        if !self.primed {
            self.peek_a = self.a.next_event();
            self.peek_b = self.b.next_event();
            self.primed = true;
        }
        let take_a = match (&self.peek_a, &self.peek_b) {
            (Some((ta, _)), Some((tb, _))) => ta <= tb,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_a {
            let (t, ev) = self.peek_a.take().expect("checked above");
            self.peek_a = self.a.next_event();
            Some((t, MergedEvent::First(ev)))
        } else {
            let (t, ev) = self.peek_b.take()?;
            self.peek_b = self.b.next_event();
            Some((t, MergedEvent::Second(ev)))
        }
    }
}

/// Drain `stream` into `handler` until past `horizon` (inclusive, like
/// [`crate::run_until`]). Returns the number of events fired. The first
/// event strictly beyond the horizon is consumed from the stream and
/// discarded — streams are single-use run inputs, not resumable queues.
/// When the run must be resumable (a long-lived service advancing its
/// clock in command-sized steps), wrap the stream in a [`Stepper`].
pub fn drive<W, S, F>(world: &mut W, stream: &mut S, horizon: SimTime, mut handler: F) -> u64
where
    S: EventStream,
    F: FnMut(&mut W, SimTime, S::Event),
{
    let mut fired = 0u64;
    let mut prev = SimTime::EPOCH;
    while let Some((t, ev)) = stream.next_event() {
        if t > horizon {
            break;
        }
        debug_assert!(t >= prev, "event streams must be time-ordered");
        prev = t;
        handler(world, t, ev);
        fired += 1;
    }
    fired
}

/// A resumable driver over one stream: [`drive`] consumes (and discards)
/// the first event past its horizon, so calling it twice loses an event
/// at every boundary. `Stepper` retains that peeked event between calls,
/// letting an external command stream advance the simulation clock in
/// arbitrary increments — the shape `spacecdn-serve` needs, where each
/// `advance` command moves a live session part-way through its timeline.
#[derive(Debug)]
pub struct Stepper<S: EventStream> {
    stream: S,
    pending: Option<(SimTime, S::Event)>,
    now: SimTime,
}

impl<S: EventStream> Stepper<S> {
    /// Wrap `stream` for incremental driving.
    pub fn new(stream: S) -> Self {
        Stepper {
            stream,
            pending: None,
            now: SimTime::EPOCH,
        }
    }

    /// The timestamp of the latest event fired so far ([`SimTime::EPOCH`]
    /// before any).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Mutable access to the wrapped stream (e.g. to splice new event
    /// sources into a [`Splice`] mid-run). The retained peeked event is
    /// unaffected; it still fires first if it is earliest.
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Fire every event with `t <= horizon` into `handler`, retaining the
    /// first later event for the next call. Returns the number fired.
    /// Successive calls with non-decreasing horizons replay exactly the
    /// sequence one [`drive`] over the union interval would.
    pub fn step_until<W, F>(&mut self, world: &mut W, horizon: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut W, SimTime, S::Event),
    {
        let mut fired = 0u64;
        loop {
            let (t, ev) = match self.pending.take() {
                Some(p) => p,
                None => match self.stream.next_event() {
                    Some(p) => p,
                    None => break,
                },
            };
            if t > horizon {
                self.pending = Some((t, ev));
                break;
            }
            debug_assert!(t >= self.now, "event streams must be time-ordered");
            self.now = t;
            handler(world, t, ev);
            fired += 1;
        }
        fired
    }
}

/// A dynamic k-way merge that accepts new event streams **mid-run** — the
/// live-mutation complement to the static [`Merged`] pair.
///
/// Ordering contract, mirroring [`Merged`]'s first-wins rule: among heads
/// with equal next-event times, the **earliest-spliced** stream fires
/// first, and within one stream events keep their own order. A stream
/// spliced after the merge has already advanced past some instant cannot
/// time-travel: its events are clamped forward to the merge's current
/// clock (the timestamp of the last yielded event), preserving the
/// non-decreasing output contract [`drive`] asserts.
///
/// `crates/des/tests/splice.rs` pins this against a materialized
/// reference (stable sort by clamped time then splice order) and against
/// [`Merged`] for the static two-stream case.
pub struct Splice<E> {
    heads: Vec<SpliceHead<E>>,
    now: SimTime,
}

struct SpliceHead<E> {
    /// Next event, already clamped to the merge clock at reveal time.
    next: (SimTime, E),
    stream: Box<dyn EventStream<Event = E> + Send>,
}

impl<E> std::fmt::Debug for Splice<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Splice")
            .field("live_streams", &self.heads.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<E> Splice<E> {
    /// An empty merge (yields nothing until a stream is spliced in).
    pub fn new() -> Self {
        Splice {
            heads: Vec::new(),
            now: SimTime::EPOCH,
        }
    }

    /// The merge clock: the timestamp of the last yielded event
    /// ([`SimTime::EPOCH`] before any). Events of newly spliced streams
    /// are clamped forward to this instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Streams spliced in and not yet exhausted.
    pub fn live_streams(&self) -> usize {
        self.heads.len()
    }

    /// True when every spliced stream is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.heads.is_empty()
    }

    /// Add `stream` to the merge. Events it yields before the current
    /// merge clock are clamped forward to it; ties against existing heads
    /// fire the earlier-spliced stream first.
    pub fn splice(&mut self, stream: impl EventStream<Event = E> + Send + 'static) {
        let mut stream: Box<dyn EventStream<Event = E> + Send> = Box::new(stream);
        if let Some((t, ev)) = stream.next_event() {
            self.heads.push(SpliceHead {
                next: (t.max(self.now), ev),
                stream,
            });
        }
    }
}

impl<E> Default for Splice<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventStream for Splice<E> {
    type Event = E;

    fn next_event(&mut self) -> Option<(SimTime, E)> {
        // Earliest head wins; ties go to the earliest-spliced stream.
        // Splice order is exactly vector order (exhausted heads are
        // removed with `remove`, preserving it), so the first strict
        // minimum is the winner.
        let mut win = 0usize;
        for (i, head) in self.heads.iter().enumerate().skip(1) {
            if head.next.0 < self.heads[win].next.0 {
                win = i;
            }
        }
        let head = self.heads.get_mut(win)?;
        let t = head.next.0;
        self.now = t;
        let out = match head.stream.next_event() {
            Some((nt, nev)) => {
                let (yt, yev) = std::mem::replace(&mut head.next, (nt.max(t), nev));
                debug_assert_eq!(yt, t);
                (yt, yev)
            }
            None => {
                let exhausted = self.heads.remove(win);
                exhausted.next
            }
        };
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{run_until, Scheduler};

    /// A stream over a pre-materialized event list (test double).
    struct Listed(std::vec::IntoIter<(SimTime, u32)>);

    impl EventStream for Listed {
        type Event = u32;
        fn next_event(&mut self) -> Option<(SimTime, u32)> {
            self.0.next()
        }
    }

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn fixed_ticks_yield_the_arithmetic_sequence() {
        let mut ticks = FixedTicks::new(s(10), SimDuration::from_secs(5), 1, 4);
        assert_eq!(ticks.next_event(), Some((s(15), 1)));
        assert_eq!(ticks.next_event(), Some((s(20), 2)));
        assert_eq!(ticks.next_event(), Some((s(25), 3)));
        assert_eq!(ticks.next_event(), None);
        assert_eq!(ticks.next_event(), None, "stays exhausted");
    }

    #[test]
    fn empty_tick_range_is_empty() {
        let mut ticks = FixedTicks::new(s(0), SimDuration::from_secs(5), 1, 1);
        assert_eq!(ticks.next_event(), None);
    }

    #[test]
    fn merge_interleaves_by_time_and_first_wins_ties() {
        let a = Listed(vec![(s(5), 1), (s(10), 2)].into_iter());
        let b = Listed(vec![(s(3), 91), (s(5), 92), (s(11), 93)].into_iter());
        let mut m = Merged::new(a, b);
        let mut order = Vec::new();
        while let Some((t, ev)) = m.next_event() {
            order.push((t, ev));
        }
        assert_eq!(
            order,
            vec![
                (s(3), MergedEvent::Second(91)),
                (s(5), MergedEvent::First(1)), // tie at t=5: First fires first
                (s(5), MergedEvent::Second(92)),
                (s(10), MergedEvent::First(2)),
                (s(11), MergedEvent::Second(93)),
            ]
        );
    }

    #[test]
    fn drive_fires_through_horizon_inclusive_and_stops_past_it() {
        let mut stream = Listed(vec![(s(1), 1), (s(2), 2), (s(2), 3), (s(9), 4)].into_iter());
        let mut seen = Vec::new();
        let fired = drive(&mut seen, &mut stream, s(2), |seen, t, ev| {
            seen.push((t, ev));
        });
        assert_eq!(fired, 3);
        assert_eq!(seen, vec![(s(1), 1), (s(2), 2), (s(2), 3)]);
    }

    #[test]
    fn stepper_resumes_across_horizons_without_losing_events() {
        // drive() would discard the t=9 event when run to horizon 2; the
        // stepper retains it and fires it on the next call.
        let stream = Listed(vec![(s(1), 1), (s(2), 2), (s(9), 3), (s(12), 4)].into_iter());
        let mut stepper = Stepper::new(stream);
        let mut seen = Vec::new();
        assert_eq!(
            stepper.step_until(&mut seen, s(2), |v, t, e| v.push((t, e))),
            2
        );
        assert_eq!(stepper.now(), s(2));
        assert_eq!(
            stepper.step_until(&mut seen, s(8), |v, t, e| v.push((t, e))),
            0
        );
        assert_eq!(
            stepper.step_until(&mut seen, s(20), |v, t, e| v.push((t, e))),
            2
        );
        assert_eq!(seen, vec![(s(1), 1), (s(2), 2), (s(9), 3), (s(12), 4)]);
        assert_eq!(
            stepper.step_until(&mut seen, s(99), |v, t, e| v.push((t, e))),
            0,
            "exhausted stream stays exhausted"
        );
    }

    #[test]
    fn stepper_stepwise_equals_one_drive() {
        let events: Vec<(SimTime, u32)> = (0..20).map(|k| (s(k / 3), k as u32)).collect();
        let mut all = Vec::new();
        drive(
            &mut all,
            &mut Listed(events.clone().into_iter()),
            s(1_000),
            |v, t, e| v.push((t, e)),
        );
        let mut stepped = Vec::new();
        let mut stepper = Stepper::new(Listed(events.into_iter()));
        for h in [0u64, 1, 1, 3, 4, 1_000] {
            stepper.step_until(&mut stepped, s(h), |v, t, e| v.push((t, e)));
        }
        assert_eq!(stepped, all);
    }

    #[test]
    fn splice_merges_like_merged_for_the_static_pair() {
        let a = vec![(s(5), 1), (s(10), 2)];
        let b = vec![(s(3), 91), (s(5), 92), (s(11), 93)];
        let mut m = Merged::new(Listed(a.clone().into_iter()), Listed(b.clone().into_iter()));
        let mut via_merged = Vec::new();
        while let Some((t, ev)) = m.next_event() {
            via_merged.push((
                t,
                match ev {
                    MergedEvent::First(e) => e,
                    MergedEvent::Second(e) => e,
                },
            ));
        }
        let mut sp = Splice::new();
        sp.splice(Listed(a.into_iter()));
        sp.splice(Listed(b.into_iter()));
        let mut via_splice = Vec::new();
        while let Some((t, ev)) = sp.next_event() {
            via_splice.push((t, ev));
        }
        assert_eq!(via_splice, via_merged);
        assert!(sp.is_exhausted());
    }

    #[test]
    fn splice_ties_fire_in_splice_order() {
        let mut sp = Splice::new();
        sp.splice(Listed(vec![(s(5), 10)].into_iter()));
        sp.splice(Listed(vec![(s(5), 20)].into_iter()));
        sp.splice(Listed(vec![(s(5), 30)].into_iter()));
        let order: Vec<u32> = std::iter::from_fn(|| sp.next_event().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn mid_run_splice_clamps_stale_events_to_the_merge_clock() {
        let mut sp = Splice::new();
        sp.splice(Listed(vec![(s(10), 1), (s(30), 2)].into_iter()));
        assert_eq!(sp.next_event(), Some((s(10), 1)));
        assert_eq!(sp.now(), s(10));
        // Spliced while the clock sits at t=10: its t=4 event cannot fire
        // in the past, so it clamps to t=10 — and loses the tie against
        // nothing (no other head at t=10), firing next.
        sp.splice(Listed(vec![(s(4), 91), (s(12), 92)].into_iter()));
        assert_eq!(sp.next_event(), Some((s(10), 91)));
        assert_eq!(sp.next_event(), Some((s(12), 92)));
        assert_eq!(sp.next_event(), Some((s(30), 2)));
        assert_eq!(sp.next_event(), None);
    }

    #[test]
    fn mid_run_splice_tie_goes_to_the_earlier_spliced_stream() {
        let mut sp = Splice::new();
        sp.splice(Listed(vec![(s(10), 1), (s(20), 2)].into_iter()));
        assert_eq!(sp.next_event(), Some((s(10), 1)));
        // New stream's first event ties the existing head at t=20: the
        // earlier-spliced stream wins.
        sp.splice(Listed(vec![(s(20), 91)].into_iter()));
        assert_eq!(sp.next_event(), Some((s(20), 2)));
        assert_eq!(sp.next_event(), Some((s(20), 91)));
    }

    #[test]
    fn merged_order_matches_scheduler_fifo_semantics() {
        // The contract the traffic engine relies on: merging ticks (First)
        // with arrivals (Second) replays exactly the order the heap
        // scheduler produces when all ticks are scheduled before any
        // arrival — (time, seq) keys, FIFO ties.
        let ticks: Vec<(SimTime, u32)> = (1..4).map(|k| (s(k * 10), k as u32)).collect();
        let arrivals: Vec<(SimTime, u32)> = vec![
            (s(4), 100),
            (s(10), 101),
            (s(10), 102),
            (s(25), 103),
            (s(30), 104),
        ];

        let mut sched: Scheduler<(bool, u32)> = Scheduler::new();
        for &(t, k) in &ticks {
            sched.schedule_at(t, (true, k));
        }
        for &(t, k) in &arrivals {
            sched.schedule_at(t, (false, k));
        }
        let mut via_heap = Vec::new();
        run_until(&mut via_heap, &mut sched, s(1_000), |out, _, t, ev| {
            out.push((t, ev))
        });

        let mut merged = Merged::new(Listed(ticks.into_iter()), Listed(arrivals.into_iter()));
        let mut via_stream = Vec::new();
        drive(&mut via_stream, &mut merged, s(1_000), |out, t, ev| {
            out.push((
                t,
                match ev {
                    MergedEvent::First(k) => (true, k),
                    MergedEvent::Second(k) => (false, k),
                },
            ));
        });
        assert_eq!(via_stream, via_heap);
    }
}
