//! Statistics collectors shared by every experiment.
//!
//! The paper reports medians, percentile boxes (Figs 5, 8) and CDFs
//! (Figs 4, 7). These collectors are deliberately simple — exact quantiles
//! over retained samples, not streaming sketches — because experiment sample
//! counts are in the tens of thousands, where exactness is cheap and
//! reviewable.

use spacecdn_geo::Latency;

/// Streaming count/mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation. Non-finite values are ignored (and counted
    /// nowhere): a NaN must never poison an experiment aggregate.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact quantiles over retained samples.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// An empty collector.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add one sample; non-finite values are discarded.
    pub fn add(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// Add a latency sample in milliseconds.
    pub fn add_latency(&mut self, l: Latency) {
        self.add(l.ms());
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite filtered on add"));
            self.sorted = true;
        }
    }

    /// Quantile `q` in `[0, 1]` by linear interpolation between order
    /// statistics. `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// The median (`None` when empty).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Min / Q1 / median / Q3 / max — the boxplot shape of Figs 5 and 8.
    pub fn five_number(&mut self) -> Option<FiveNumber> {
        if self.samples.is_empty() {
            return None;
        }
        Some(FiveNumber {
            min: self.quantile(0.0).expect("non-empty"),
            q1: self.quantile(0.25).expect("non-empty"),
            median: self.quantile(0.5).expect("non-empty"),
            q3: self.quantile(0.75).expect("non-empty"),
            max: self.quantile(1.0).expect("non-empty"),
        })
    }

    /// An empirical CDF with `points` evenly spaced probability steps.
    pub fn cdf(&mut self, points: usize) -> Cdf {
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 0 || points == 0 {
            return Cdf { points: Vec::new() };
        }
        let steps = points.min(n).max(2);
        let mut out = Vec::with_capacity(steps);
        for i in 0..steps {
            let p = i as f64 / (steps - 1) as f64;
            let value = {
                let pos = p * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
            };
            out.push((value, p));
        }
        Cdf { points: out }
    }

    /// Fraction of samples ≤ `x` (the empirical CDF evaluated at `x`).
    pub fn fraction_at_or_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// Merge another collector's samples.
    pub fn merge(&mut self, other: &Percentiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Immutable view of the retained samples (unsorted order unspecified).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// The boxplot five-number summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum sample.
    pub max: f64,
}

/// An empirical CDF as `(value, cumulative probability)` points.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    /// Points sorted by value; probabilities rise from 0 to 1.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Value at probability `p` by scanning the stored points.
    pub fn value_at(&self, p: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        for &(v, prob) in &self.points {
            if prob >= p {
                return Some(v);
            }
        }
        self.points.last().map(|&(v, _)| v)
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` — a histogram with no range is a
    /// configuration bug, not a runtime condition.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Count one observation.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations including both overflow bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `(lower_edge, upper_edge, count)` rows, for printing.
    pub fn rows(&self) -> Vec<(f64, f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    self.lo + i as f64 * width,
                    self.lo + (i + 1) as f64 * width,
                    c,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_ignores_non_finite() {
        let mut s = Summary::new();
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        s.add(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn summary_empty_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.add(x));

        let mut left = Summary::new();
        let mut right = Summary::new();
        data[..37].iter().for_each(|&x| left.add(x));
        data[37..].iter().for_each(|&x| right.add(x));
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_exact_on_known_data() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.add(x as f64);
        }
        assert_eq!(p.len(), 100);
        assert!((p.median().unwrap() - 50.5).abs() < 1e-9);
        assert!((p.quantile(0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((p.quantile(1.0).unwrap() - 100.0).abs() < 1e-9);
        assert!((p.quantile(0.25).unwrap() - 25.75).abs() < 1e-9);
    }

    #[test]
    fn percentiles_empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.median(), None);
        assert!(p.five_number().is_none());
        assert!(p.cdf(10).points.is_empty());
    }

    #[test]
    fn percentiles_single_sample() {
        let mut p = Percentiles::new();
        p.add(42.0);
        assert_eq!(p.median(), Some(42.0));
        let f = p.five_number().unwrap();
        assert_eq!(f.min, 42.0);
        assert_eq!(f.max, 42.0);
    }

    #[test]
    fn five_number_ordering() {
        let mut p = Percentiles::new();
        for x in [9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0] {
            p.add(x);
        }
        let f = p.five_number().unwrap();
        assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 9.0);
    }

    #[test]
    fn cdf_monotone_and_spans() {
        let mut p = Percentiles::new();
        for i in 0..1000 {
            p.add((i % 37) as f64);
        }
        let cdf = p.cdf(50);
        assert!(cdf.points.len() >= 2);
        for w in cdf.points.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must be monotone");
            assert!(w[0].1 <= w[1].1, "probabilities must be monotone");
        }
        assert_eq!(cdf.points.first().unwrap().1, 0.0);
        assert_eq!(cdf.points.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_value_at() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.add(i as f64);
        }
        let cdf = p.cdf(100);
        let v = cdf.value_at(0.5).unwrap();
        assert!((v - 50.5).abs() < 2.0, "got {v}");
        assert!(Cdf::default().value_at(0.5).is_none());
    }

    #[test]
    fn fraction_at_or_below() {
        let mut p = Percentiles::new();
        for i in 1..=10 {
            p.add(i as f64);
        }
        assert_eq!(p.fraction_at_or_below(5.0), 0.5);
        assert_eq!(p.fraction_at_or_below(0.0), 0.0);
        assert_eq!(p.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn percentiles_merge() {
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        for i in 0..50 {
            a.add(i as f64);
        }
        for i in 50..100 {
            b.add(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.len(), 100);
        assert!((a.median().unwrap() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn latency_samples() {
        let mut p = Percentiles::new();
        p.add_latency(Latency::from_ms(30.0));
        p.add_latency(Latency::from_ms(50.0));
        assert_eq!(p.median(), Some(40.0));
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 5.5, 9.99] {
            h.add(x);
        }
        h.add(-1.0);
        h.add(10.0);
        h.add(f64::NAN);
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 2); // 0.0 and 0.5
        assert_eq!(h.bins()[1], 1); // 1.0
        assert_eq!(h.bins()[5], 1); // 5.5
        assert_eq!(h.bins()[9], 1); // 9.99
    }

    #[test]
    fn histogram_rows_cover_range() {
        let h = Histogram::new(10.0, 20.0, 4);
        let rows = h.rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, 10.0);
        assert!((rows[3].1 - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_empty_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
