//! Deterministic discrete-event simulation core.
//!
//! The xeoverse simulator the paper relies on is, at heart, an event-driven
//! engine over a time-varying constellation. This crate is our substitute's
//! foundation: a minimal, deterministic event queue plus the statistics
//! machinery every experiment shares.
//!
//! Design rules (in the spirit of event-driven stacks like smoltcp):
//!
//! - **Determinism.** Integer nanosecond timestamps and a monotonically
//!   increasing sequence number break ties, so runs are bit-identical for a
//!   given seed regardless of platform or hash-map iteration order.
//! - **No hidden concurrency.** The simulator is single-threaded; parallelism
//!   (if any) happens across independent experiment replicas, never inside
//!   one simulated world.
//! - **Plain data events.** Events are caller-defined values, not boxed
//!   closures, which keeps worlds inspectable and the engine allocation-light.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sched;
pub mod stats;
pub mod stream;

pub use sched::{run_until, EventId, Scheduler};
pub use stats::{Cdf, FiveNumber, Histogram, Percentiles, Summary};
pub use stream::{drive, EventStream, FixedTicks, Merged, MergedEvent};
