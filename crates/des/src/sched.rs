//! The event scheduler: a priority queue over (time, sequence) keys.

use spacecdn_geo::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One queued event: fires at `at`, carrying `payload`.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Order by (time, seq), inverted so BinaryHeap pops the earliest first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (FIFO), which removes the classic source of non-determinism in
/// binary-heap-based simulators. Cancellation is lazy: cancelled entries
/// stay in the heap and are skipped on pop, the standard trick that keeps
/// both operations O(log n).
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of entries still live in the heap.
    pending: std::collections::HashSet<u64>,
    /// Seqs cancelled but not yet physically removed from the heap.
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler positioned at the epoch.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
            now: SimTime::EPOCH,
        }
    }

    /// Current simulation time: the firing time of the most recently popped
    /// event (or the epoch before any event has fired).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at the absolute instant `at`, returning a handle
    /// for cancellation.
    ///
    /// Scheduling in the past is a logic error in a causal simulation;
    /// the event is clamped to fire "now" instead of silently reordering
    /// history, and debug builds assert.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Schedule `payload` after a relative delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancel a pending event. Returns whether it was still pending (an
    /// already-fired or already-cancelled event returns false). O(1); the
    /// heap entry is discarded lazily when it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Pop the next live event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = self.heap.pop()?;
            if self.cancelled.remove(&entry.seq) {
                continue; // lazily discard cancelled entries
            }
            self.pending.remove(&entry.seq);
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
    }

    /// Peek at the firing time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = self.heap.peek()?.seq;
            if self.cancelled.contains(&seq) {
                let e = self.heap.pop().expect("peeked entry pops");
                self.cancelled.remove(&e.seq);
                continue;
            }
            return self.heap.peek().map(|e| e.at);
        }
    }
}

/// Drive a world until the queue drains or the horizon is reached.
///
/// The handler receives the world, the scheduler (to enqueue follow-up
/// events), the firing time and the event. Events scheduled at or before
/// `horizon` fire; later ones remain queued when the function returns.
/// Returns the number of events processed.
pub fn run_until<W, E>(
    world: &mut W,
    sched: &mut Scheduler<E>,
    horizon: SimTime,
    mut handler: impl FnMut(&mut W, &mut Scheduler<E>, SimTime, E),
) -> u64 {
    let mut fired = 0;
    while let Some(next) = sched.peek_time() {
        if next > horizon {
            break;
        }
        let (at, ev) = sched.pop().expect("peeked event must pop");
        handler(world, sched, at, ev);
        fired += 1;
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(30), "c");
        s.schedule_at(SimTime::from_millis(10), "a");
        s.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            s.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), ());
        assert_eq!(s.now(), SimTime::EPOCH);
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(3));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(10), 1u8);
        s.pop();
        s.schedule_after(SimDuration::from_secs(5), 2u8);
        let (t, e) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(e, 2);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut s = Scheduler::new();
        for sec in [1u64, 2, 3, 4, 5] {
            s.schedule_at(SimTime::from_secs(sec), sec);
        }
        let mut seen = Vec::new();
        let fired = run_until(&mut seen, &mut s, SimTime::from_secs(3), |w, _, _, e| {
            w.push(e)
        });
        assert_eq!(fired, 3);
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn handler_can_chain_events() {
        // A self-rescheduling tick: fires every second until the horizon.
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), ());
        let mut count = 0u32;
        run_until(
            &mut count,
            &mut s,
            SimTime::from_secs(10),
            |c, sched, _, ()| {
                *c += 1;
                sched.schedule_after(SimDuration::from_secs(1), ());
            },
        );
        assert_eq!(count, 10);
        assert_eq!(s.len(), 1); // the tick queued beyond the horizon
    }

    #[test]
    fn cancelled_event_never_fires() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_secs(1), "a");
        s.schedule_at(SimTime::from_secs(2), "b");
        assert_eq!(s.len(), 2);
        assert!(s.cancel(a));
        assert_eq!(s.len(), 1);
        let fired: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(fired, vec!["b"]);
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_fired() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_secs(1), ());
        assert!(s.cancel(a));
        assert!(!s.cancel(a), "second cancel is a no-op");
        let b = s.schedule_at(SimTime::from_secs(2), ());
        s.pop();
        assert!(!s.cancel(b), "fired events cannot be cancelled");
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_secs(1), 1u8);
        s.schedule_at(SimTime::from_secs(5), 2u8);
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(s.pop(), Some((SimTime::from_secs(5), 2u8)));
    }

    #[test]
    fn run_until_ignores_cancelled() {
        let mut s = Scheduler::new();
        let mut ids = Vec::new();
        for sec in 1..=5u64 {
            ids.push(s.schedule_at(SimTime::from_secs(sec), sec));
        }
        s.cancel(ids[1]); // 2
        s.cancel(ids[3]); // 4
        let mut seen = Vec::new();
        run_until(&mut seen, &mut s, SimTime::from_secs(10), |w, _, _, e| {
            w.push(e)
        });
        assert_eq!(seen, vec![1, 3, 5]);
    }

    #[test]
    fn empty_scheduler_reports_empty() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        assert_eq!(s.peek_time(), None);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(10), "late");
        s.pop();
        // Release build behaviour: clamp rather than rewind the clock.
        if cfg!(debug_assertions) {
            // In debug the assert fires; skip exercising it here.
            return;
        }
        s.schedule_at(SimTime::from_secs(1), "early");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
    }
}
