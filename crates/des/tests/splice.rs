//! Property tests for `des::stream` merge tie-breaking on the live-mutation
//! path: event streams spliced into a running [`Splice`] mid-drive.
//!
//! The oracle is the *materialized reference*: collect every stream's events
//! up front, clamp each event's timestamp to the merge clock at the instant
//! its stream was spliced, then stable-sort by `(clamped time, splice order)`
//! — stability preserves intra-stream order, matching the first-wins scan
//! over heads in splice order. The static two-stream case is additionally
//! pinned against [`Merged`], whose FIFO tie-break (`First` before `Second`)
//! the spliced merge must reproduce.

use proptest::prelude::*;
use spacecdn_des::stream::{drive, EventStream, Merged, MergedEvent, Splice, Stepper};
use spacecdn_geo::time::SimTime;

/// A pre-materialized event stream: each event is `(time, stream_id, rank)`.
struct Listed {
    events: std::vec::IntoIter<(SimTime, (u32, u32))>,
}

impl Listed {
    fn new(id: u32, times: &[u64]) -> Self {
        let events = times
            .iter()
            .enumerate()
            .map(|(rank, &t)| (SimTime(t), (id, rank as u32)))
            .collect::<Vec<_>>()
            .into_iter();
        Self { events }
    }
}

impl EventStream for Listed {
    type Event = (u32, u32);
    fn next_event(&mut self) -> Option<(SimTime, Self::Event)> {
        self.events.next()
    }
}

/// One stream in a splice plan: spliced after `after` events have been
/// drained from the merge, carrying sorted timestamps `times`.
#[derive(Debug, Clone)]
struct PlannedStream {
    after: usize,
    times: Vec<u64>,
}

fn arb_plan() -> impl Strategy<Value = Vec<PlannedStream>> {
    let stream =
        (0usize..12, prop::collection::vec(0u64..40, 0..10)).prop_map(|(after, mut times)| {
            times.sort_unstable();
            PlannedStream { after, times }
        });
    prop::collection::vec(stream, 1..6).prop_map(|mut plan| {
        // Splice order must be non-decreasing in drain position so the plan
        // is executable left-to-right.
        plan.sort_by_key(|p| p.after);
        plan
    })
}

/// Events fired by a driven [`Splice`]: (time, (stream id, rank)).
type Fired = Vec<(SimTime, (u32, u32))>;

/// Drive a [`Splice`] according to `plan`, recording for each stream the
/// merge clock at the instant it was spliced, and returning the full fired
/// sequence.
fn run_splice(plan: &[PlannedStream]) -> (Fired, Vec<SimTime>) {
    let mut sp: Splice<(u32, u32)> = Splice::new();
    let mut fired = Vec::new();
    let mut clock_at_splice = vec![SimTime::EPOCH; plan.len()];
    let mut next = 0usize;
    loop {
        while next < plan.len() && plan[next].after <= fired.len() {
            clock_at_splice[next] = sp.now();
            sp.splice(Listed::new(next as u32, &plan[next].times));
            next += 1;
        }
        match sp.next_event() {
            Some(ev) => fired.push(ev),
            None if next < plan.len() => {
                // Drained dry before the next splice point: the remaining
                // streams splice at the final clock.
                clock_at_splice[next] = sp.now();
                sp.splice(Listed::new(next as u32, &plan[next].times));
                next += 1;
            }
            None => break,
        }
    }
    assert!(sp.is_exhausted());
    assert_eq!(sp.live_streams(), 0);
    (fired, clock_at_splice)
}

/// The materialized reference: clamp each stream's events to the clock at
/// its splice instant, then stable-sort by (time, splice order).
fn materialized_reference(
    plan: &[PlannedStream],
    clock_at_splice: &[SimTime],
) -> Vec<(SimTime, (u32, u32))> {
    let mut all = Vec::new();
    for (id, p) in plan.iter().enumerate() {
        let mut clamp = clock_at_splice[id];
        for (rank, &t) in p.times.iter().enumerate() {
            // Within a stream, later events are also clamped by earlier
            // (already-clamped) siblings: the merge never goes backward.
            clamp = clamp.max(SimTime(t));
            all.push((clamp, (id as u32, rank as u32)));
        }
    }
    // Stable sort: ties resolve by splice order, then intra-stream rank.
    all.sort_by_key(|&(t, _)| t);
    all
}

proptest! {
    /// Mid-run splices fire exactly the materialized reference sequence:
    /// same events, same (clamped) times, ties broken by splice order.
    #[test]
    fn splice_matches_materialized_reference(plan in arb_plan()) {
        let (fired, clocks) = run_splice(&plan);
        let want = materialized_reference(&plan, &clocks);
        prop_assert_eq!(fired, want);
    }

    /// The merge clock never runs backward, no matter how stale the
    /// spliced streams' timestamps are.
    #[test]
    fn splice_timestamps_are_monotone(plan in arb_plan()) {
        let (fired, _) = run_splice(&plan);
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "clock ran backward: {:?}", w);
        }
    }

    /// With every stream spliced up front (the static case), `Splice` is
    /// event-for-event identical to a left-nested tower of `Merged` —
    /// including FIFO tie-breaking, where `Merged` yields `First` before
    /// `Second`.
    #[test]
    fn static_splice_equals_merged_pair(
        a in prop::collection::vec(0u64..40, 0..12),
        b in prop::collection::vec(0u64..40, 0..12),
    ) {
        let mut a = a; a.sort_unstable();
        let mut b = b; b.sort_unstable();

        let mut merged = Merged::new(Listed::new(0, &a), Listed::new(1, &b));
        let mut via_merged = Vec::new();
        while let Some((t, ev)) = merged.next_event() {
            let flat = match ev {
                MergedEvent::First(e) => e,
                MergedEvent::Second(e) => e,
            };
            via_merged.push((t, flat));
        }

        let mut sp: Splice<(u32, u32)> = Splice::new();
        sp.splice(Listed::new(0, &a));
        sp.splice(Listed::new(1, &b));
        let mut via_splice = Vec::new();
        while let Some(ev) = sp.next_event() {
            via_splice.push(ev);
        }

        prop_assert_eq!(via_splice, via_merged);
    }

    /// Driving a `Stepper<Splice>` across arbitrary horizon partitions
    /// fires the same sequence as one uninterrupted `drive()` — the peeked
    /// event held across horizon boundaries is never lost or reordered.
    #[test]
    fn stepper_partition_invariance(
        a in prop::collection::vec(0u64..40, 0..12),
        b in prop::collection::vec(0u64..40, 0..12),
        cuts in prop::collection::vec(0u64..45, 0..6),
    ) {
        let mut a = a; a.sort_unstable();
        let mut b = b; b.sort_unstable();
        let mut cuts = cuts; cuts.sort_unstable();

        let mut sp: Splice<(u32, u32)> = Splice::new();
        sp.splice(Listed::new(0, &a));
        sp.splice(Listed::new(1, &b));
        let mut whole = Vec::new();
        let fired_whole = drive(&mut whole, &mut sp, SimTime(1_000), |w, t, e| w.push((t, e)));

        let mut sp2: Splice<(u32, u32)> = Splice::new();
        sp2.splice(Listed::new(0, &a));
        sp2.splice(Listed::new(1, &b));
        let mut stepper = Stepper::new(sp2);
        let mut parts = Vec::new();
        let mut fired_parts = 0;
        for &c in &cuts {
            fired_parts += stepper.step_until(&mut parts, SimTime(c), |w, t, e| w.push((t, e)));
        }
        fired_parts += stepper.step_until(&mut parts, SimTime(1_000), |w, t, e| w.push((t, e)));

        prop_assert_eq!(fired_parts, fired_whole);
        prop_assert_eq!(parts, whole);
    }
}
