//! The process-wide metric registry and its deterministic snapshot.
//!
//! Metrics are registered on first use (via [`crate::LazyCounter`] /
//! [`crate::LazyHistogram`]) and live for the rest of the process — they
//! are leaked into `&'static` so call sites pay one map lookup ever.
//! [`snapshot`] renders everything registered so far into a sorted
//! [`MetricsReport`] that serialises to stable JSON.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{bucket_bounds, Counter, Determinism, Histogram, Unit};

/// A registered metric: either kind, plus its determinism class.
enum Metric {
    Counter(&'static Counter, Determinism),
    Histogram(&'static Histogram, Determinism),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Lock the registry, recovering from poisoning: registration panics (name
/// conflicts) fire while the guard is held, but never leave the map in an
/// inconsistent state, so the lock stays usable.
fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// The counter named `name`, registering it (with class `determinism`) on
/// first use.
///
/// # Panics
/// If `name` is already registered as a histogram, or with a different
/// determinism class — metric names are a process-wide contract and a
/// mismatch is a bug at the call site.
pub fn counter(name: &'static str, determinism: Determinism) -> &'static Counter {
    let mut map = lock_registry();
    match map
        .entry(name)
        .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new())), determinism))
    {
        Metric::Counter(c, d) => {
            assert!(
                *d == determinism,
                "metric {name:?} registered as {} but requested as {}",
                d.as_str(),
                determinism.as_str()
            );
            c
        }
        Metric::Histogram(..) => panic!("metric {name:?} is a histogram, not a counter"),
    }
}

/// The histogram named `name`, registering it (with `unit` and class
/// `determinism`) on first use.
///
/// # Panics
/// If `name` is already registered as a counter, or with a different unit
/// or determinism class.
pub fn histogram(name: &'static str, unit: Unit, determinism: Determinism) -> &'static Histogram {
    let mut map = lock_registry();
    match map.entry(name).or_insert_with(|| {
        Metric::Histogram(Box::leak(Box::new(Histogram::new(unit))), determinism)
    }) {
        Metric::Histogram(h, d) => {
            assert!(
                h.unit() == unit,
                "metric {name:?} registered with unit {} but requested with {}",
                h.unit().as_str(),
                unit.as_str()
            );
            assert!(
                *d == determinism,
                "metric {name:?} registered as {} but requested as {}",
                d.as_str(),
                determinism.as_str()
            );
            h
        }
        Metric::Counter(..) => panic!("metric {name:?} is a counter, not a histogram"),
    }
}

/// Zero every registered metric, keeping names and kinds registered.
pub fn reset() {
    let map = lock_registry();
    for metric in map.values() {
        match metric {
            Metric::Counter(c, _) => c.reset(),
            Metric::Histogram(h, _) => h.reset(),
        }
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone)]
pub struct CounterSnapshot {
    /// Registry name (dotted, e.g. `lsn.routing_cache.hit`).
    pub name: String,
    /// Determinism class the counter was registered with.
    pub determinism: Determinism,
    /// Total at snapshot time.
    pub value: u64,
}

/// One non-empty log2 bucket of a histogram snapshot.
#[derive(Debug, Clone)]
pub struct BucketSnapshot {
    /// Smallest value the bucket holds.
    pub lo: u64,
    /// Largest value the bucket holds (inclusive).
    pub hi: u64,
    /// Samples recorded into the bucket.
    pub count: u64,
}

/// Point-in-time contents of one histogram (empty buckets omitted).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// What the samples measure.
    pub unit: Unit,
    /// Determinism class the histogram was registered with.
    pub determinism: Determinism,
    /// Total sample count.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Non-empty buckets, in ascending value order.
    pub buckets: Vec<BucketSnapshot>,
}

/// A deterministic, name-sorted snapshot of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshot every metric registered so far. Sorted by name (the registry
/// is a `BTreeMap`), so two snapshots of identical state render
/// identically.
pub fn snapshot() -> MetricsReport {
    let map = lock_registry();
    let mut report = MetricsReport::default();
    for (name, metric) in map.iter() {
        match metric {
            Metric::Counter(c, d) => report.counters.push(CounterSnapshot {
                name: (*name).to_string(),
                determinism: *d,
                value: c.value(),
            }),
            Metric::Histogram(h, d) => {
                let counts = h.bucket_counts();
                let buckets = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| {
                        let (lo, hi) = bucket_bounds(i);
                        BucketSnapshot { lo, hi, count: n }
                    })
                    .collect();
                report.histograms.push(HistogramSnapshot {
                    name: (*name).to_string(),
                    unit: h.unit(),
                    determinism: *d,
                    count: counts.iter().sum(),
                    sum: h.sum(),
                    buckets,
                });
            }
        }
    }
    report
}

/// Render the current registry state straight to `spacecdn-metrics-v1`
/// JSON — the one serializer shared by `spacecdn_bench::emit_metrics`
/// (writing `results/METRICS_*.json`) and the `spacecdn-serve` socket
/// telemetry endpoint, so the two surfaces cannot drift apart.
/// Equivalent to `snapshot().to_json()`.
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

impl MetricsReport {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|c| c.name.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].value)
    }

    /// A canonical line-per-metric rendering of only the
    /// [`Determinism::Stable`] metrics — counter values plus histogram
    /// counts/sums/buckets, never wall-clock. Two runs of the same
    /// deterministic campaign must produce identical fingerprints at any
    /// thread count.
    pub fn stable_fingerprint(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            if c.determinism == Determinism::Stable {
                out.push_str(&format!("counter {} = {}\n", c.name, c.value));
            }
        }
        for h in &self.histograms {
            if h.determinism == Determinism::Stable {
                out.push_str(&format!(
                    "histogram {} count={} sum={}",
                    h.name, h.count, h.sum
                ));
                for b in &h.buckets {
                    out.push_str(&format!(" [{}..{}]={}", b.lo, b.hi, b.count));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Render the report as pretty-printed JSON (schema
    /// `spacecdn-metrics-v1`). Hand-rolled so the telemetry crate stays
    /// dependency-free; output is deterministic for deterministic inputs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"schema\": \"spacecdn-metrics-v1\",\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {}: {{\"value\": {}, \"determinism\": \"{}\"}}",
                json_string(&c.name),
                c.value,
                c.determinism.as_str()
            ));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {}: {{\n      \"unit\": \"{}\", \"determinism\": \"{}\", \"count\": {}, \"sum\": {},\n      \"buckets\": [",
                json_string(&h.name),
                h.unit.as_str(),
                h.determinism.as_str(),
                h.count,
                h.sum
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "\n        {{\"lo\": {}, \"hi\": {}, \"count\": {}}}",
                    b.lo, b.hi, b.count
                ));
            }
            if !h.buckets.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("]\n    }");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Write [`Self::to_json`] to `path`, creating parent directories.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Minimal JSON string escaping (metric names are ASCII identifiers, but
/// be correct anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{LazyCounter, LazyHistogram};

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        static B: LazyCounter = LazyCounter::stable("telemetry.test.b_counter");
        static A: LazyCounter = LazyCounter::stable("telemetry.test.a_counter");
        static H: LazyHistogram = LazyHistogram::stable("telemetry.test.hops", Unit::Hops);
        B.add(2);
        A.incr();
        H.record(3);
        let report = snapshot();
        assert!(report.counter("telemetry.test.a_counter").unwrap() >= 1);
        assert!(report.counter("telemetry.test.b_counter").unwrap() >= 2);
        assert_eq!(report.counter("telemetry.test.nonexistent"), None);
        let names: Vec<_> = report.counters.iter().map(|c| c.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counters sorted by name");
        let hist = report
            .histograms
            .iter()
            .find(|h| h.name == "telemetry.test.hops")
            .expect("histogram present");
        assert_eq!(hist.unit, Unit::Hops);
        assert!(hist.count >= 1);
    }

    #[test]
    fn stable_fingerprint_excludes_racy_metrics() {
        static STABLE: LazyCounter = LazyCounter::stable("telemetry.test.fp_stable");
        static RACY: LazyCounter = LazyCounter::racy("telemetry.test.fp_racy");
        STABLE.incr();
        RACY.incr();
        let fp = snapshot().stable_fingerprint();
        assert!(fp.contains("telemetry.test.fp_stable"));
        assert!(!fp.contains("telemetry.test.fp_racy"));
    }

    #[test]
    fn json_renders_and_escapes() {
        static C: LazyCounter = LazyCounter::stable("telemetry.test.json_counter");
        C.incr();
        let json = snapshot().to_json();
        assert!(json.starts_with("{\n  \"schema\": \"spacecdn-metrics-v1\""));
        assert!(json.contains("\"telemetry.test.json_counter\""));
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn snapshot_json_is_snapshot_to_json() {
        static C: LazyCounter = LazyCounter::stable("telemetry.test.shared_serializer");
        C.incr();
        assert_eq!(snapshot_json(), snapshot().to_json());
    }

    /// Pins the `spacecdn-metrics-v1` byte format over a handcrafted
    /// report. `emit_metrics` consumers diff `METRICS_*.json` files across
    /// runs, so this rendering is a compatibility contract: changing it
    /// requires a schema bump, not a silent edit.
    #[test]
    fn v1_json_format_is_pinned_byte_for_byte() {
        let report = MetricsReport {
            counters: vec![
                CounterSnapshot {
                    name: "a.first".to_string(),
                    determinism: Determinism::Stable,
                    value: 7,
                },
                CounterSnapshot {
                    name: "b.second".to_string(),
                    determinism: Determinism::Racy,
                    value: 0,
                },
            ],
            histograms: vec![
                HistogramSnapshot {
                    name: "h.empty".to_string(),
                    unit: Unit::Count,
                    determinism: Determinism::Racy,
                    count: 0,
                    sum: 0,
                    buckets: vec![],
                },
                HistogramSnapshot {
                    name: "h.hops".to_string(),
                    unit: Unit::Hops,
                    determinism: Determinism::Stable,
                    count: 3,
                    sum: 9,
                    buckets: vec![
                        BucketSnapshot {
                            lo: 2,
                            hi: 3,
                            count: 2,
                        },
                        BucketSnapshot {
                            lo: 4,
                            hi: 7,
                            count: 1,
                        },
                    ],
                },
            ],
        };
        let want = concat!(
            "{\n",
            "  \"schema\": \"spacecdn-metrics-v1\",\n",
            "  \"counters\": {\n",
            "    \"a.first\": {\"value\": 7, \"determinism\": \"stable\"},\n",
            "    \"b.second\": {\"value\": 0, \"determinism\": \"racy\"}\n",
            "  },\n",
            "  \"histograms\": {\n",
            "    \"h.empty\": {\n",
            "      \"unit\": \"count\", \"determinism\": \"racy\", \"count\": 0, \"sum\": 0,\n",
            "      \"buckets\": []\n",
            "    },\n",
            "    \"h.hops\": {\n",
            "      \"unit\": \"hops\", \"determinism\": \"stable\", \"count\": 3, \"sum\": 9,\n",
            "      \"buckets\": [\n",
            "        {\"lo\": 2, \"hi\": 3, \"count\": 2},\n",
            "        {\"lo\": 4, \"hi\": 7, \"count\": 1}\n",
            "      ]\n",
            "    }\n",
            "  }\n",
            "}\n",
        );
        assert_eq!(report.to_json(), want);
    }

    #[test]
    fn kind_conflict_panics() {
        counter("telemetry.test.kind_conflict", Determinism::Stable);
        let err = std::panic::catch_unwind(|| {
            histogram(
                "telemetry.test.kind_conflict",
                Unit::Count,
                Determinism::Stable,
            )
        });
        assert!(
            err.is_err(),
            "re-registering a counter as a histogram must panic"
        );
    }

    #[test]
    fn determinism_conflict_panics() {
        counter("telemetry.test.det_conflict", Determinism::Stable);
        let err =
            std::panic::catch_unwind(|| counter("telemetry.test.det_conflict", Determinism::Racy));
        assert!(
            err.is_err(),
            "re-registering with a different class must panic"
        );
    }
}
