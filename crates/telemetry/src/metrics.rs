//! Metric primitives: sharded counters, log2 histograms, span timers, and
//! the lazy per-call-site handles that bind them to registry names.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Shards per [`Counter`]. Enough that the engine's worker pool (bounded
/// by core count) rarely doubles up on a shard; small enough that a
/// snapshot sum is trivial.
pub(crate) const COUNTER_SHARDS: usize = 16;

/// Histogram bucket count: bucket 0 holds exact zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, covering the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// One cache line of counter state, padded so two shards never share a
/// line (the whole point of sharding).
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// This thread's shard slot, assigned round-robin on first use so the
/// engine's worker threads spread across shards.
fn shard_of() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Which determinism class a metric's *values* belong to (see the crate
/// docs). Recorded at registration and carried into every snapshot so the
/// determinism suite can diff exactly the stable subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// A pure function of the campaign's deterministic work — identical at
    /// any thread count.
    Stable,
    /// Depends on scheduling (cache races, duplicated builds, wall-clock).
    Racy,
}

impl Determinism {
    /// Snapshot/JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Determinism::Stable => "stable",
            Determinism::Racy => "racy",
        }
    }
}

/// What a histogram's samples measure (counters are always plain counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless counts.
    Count,
    /// Wall-clock nanoseconds (always [`Determinism::Racy`]).
    Nanos,
    /// ISL hop counts.
    Hops,
    /// Byte sizes.
    Bytes,
}

impl Unit {
    /// Snapshot/JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Nanos => "ns",
            Unit::Hops => "hops",
            Unit::Bytes => "bytes",
        }
    }
}

/// A monotonically increasing counter, sharded across cache-line-padded
/// relaxed atomics. Increments are wait-free and never contend across the
/// engine's worker threads; reads sum the shards (snapshot-time only).
pub struct Counter {
    shards: [Shard; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter {
            shards: std::array::from_fn(|_| Shard::default()),
        }
    }

    /// Add `n`. One relaxed `fetch_add` on this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_of()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total (sum over shards). Snapshot-time only — concurrent
    /// increments may or may not be included, exactly like any relaxed
    /// counter read.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zero every shard (test/bench support).
    pub(crate) fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a sample: 0 for 0, else `64 - leading_zeros` (so bucket
/// `i` spans `[2^(i-1), 2^i)`).
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
pub(crate) fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A fixed-bucket log2 histogram over `u64` samples. Each `record` is two
/// relaxed `fetch_add`s (bucket and sum); bucket boundaries are powers of
/// two, which is plenty of resolution for timings, hop counts and byte
/// sizes while keeping the snapshot deterministic and tiny.
pub struct Histogram {
    unit: Unit,
    sum: Counter,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram measuring `unit`.
    pub fn new(unit: Unit) -> Self {
        Histogram {
            unit,
            sum: Counter::new(),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// What the samples measure.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.value()
    }

    /// Per-bucket counts (snapshot support).
    pub(crate) fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Zero all buckets and the sum (test/bench support).
    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.reset();
    }

    /// Fold a locally accumulated histogram in: one `fetch_add` per
    /// non-empty bucket plus one for the sum, instead of two per sample.
    pub fn merge_local(&self, local: &LocalHistogram) {
        for (b, &n) in self.buckets.iter().zip(&local.buckets) {
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.add(local.sum);
    }
}

/// A plain, non-atomic accumulator with [`Histogram`]'s exact bucket
/// layout, for hot loops that record millions of samples: accumulate
/// locally (two plain adds per sample), then fold into the shared
/// registry histogram once via [`Histogram::merge_local`] /
/// [`LazyHistogram::merge_local`]. The merged totals are identical to
/// per-sample [`Histogram::record`] calls.
#[derive(Clone)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty accumulator.
    pub fn new() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }

    /// Record one sample (no atomics). The sum wraps on overflow,
    /// matching the shared histogram's relaxed `fetch_add` semantics.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// A per-call-site counter handle: a `const` registry name resolved to its
/// [`Counter`] once, then cached. Declare as a `static`:
///
/// ```
/// use spacecdn_telemetry::LazyCounter;
/// static CACHE_HIT: LazyCounter = LazyCounter::racy("example.cache.hit");
/// CACHE_HIT.incr();
/// assert!(CACHE_HIT.value() >= 1);
/// ```
pub struct LazyCounter {
    name: &'static str,
    determinism: Determinism,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A handle for a [`Determinism::Stable`] counter named `name`.
    pub const fn stable(name: &'static str) -> Self {
        LazyCounter {
            name,
            determinism: Determinism::Stable,
            cell: OnceLock::new(),
        }
    }

    /// A handle for a [`Determinism::Racy`] counter named `name`.
    pub const fn racy(name: &'static str) -> Self {
        LazyCounter {
            name,
            determinism: Determinism::Racy,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &'static Counter {
        self.cell
            .get_or_init(|| crate::registry::counter(self.name, self.determinism))
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` to the underlying counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.get().incr();
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        self.get().value()
    }
}

/// A per-call-site histogram handle, mirroring [`LazyCounter`].
///
/// ```
/// use spacecdn_telemetry::{LazyHistogram, Unit};
/// static FETCH_HOPS: LazyHistogram = LazyHistogram::stable("example.fetch.hops", Unit::Hops);
/// FETCH_HOPS.record(3);
/// ```
pub struct LazyHistogram {
    name: &'static str,
    unit: Unit,
    determinism: Determinism,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// A handle for a [`Determinism::Stable`] histogram (hop counts, byte
    /// sizes — never wall-clock).
    pub const fn stable(name: &'static str, unit: Unit) -> Self {
        LazyHistogram {
            name,
            unit,
            determinism: Determinism::Stable,
            cell: OnceLock::new(),
        }
    }

    /// A handle for a [`Determinism::Racy`] histogram. All [`Unit::Nanos`]
    /// histograms are racy by nature.
    pub const fn racy(name: &'static str, unit: Unit) -> Self {
        LazyHistogram {
            name,
            unit,
            determinism: Determinism::Racy,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &'static Histogram {
        self.cell
            .get_or_init(|| crate::registry::histogram(self.name, self.unit, self.determinism))
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.get().record(value);
    }

    /// Fold a locally accumulated histogram in (see [`LocalHistogram`]).
    pub fn merge_local(&self, local: &LocalHistogram) {
        self.get().merge_local(local);
    }

    /// Start an RAII timer that records its lifetime (ns) into this
    /// histogram on drop. A no-op (no clock read at all) when telemetry is
    /// disabled.
    pub fn timer(&self) -> SpanTimer {
        SpanTimer::start(self)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.get().count()
    }
}

/// RAII span timer: measures from [`LazyHistogram::timer`] to drop and
/// records the elapsed nanoseconds. When telemetry is disabled the clock
/// is never read and nothing is recorded — the guard is inert.
pub struct SpanTimer {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl SpanTimer {
    fn start(handle: &LazyHistogram) -> SpanTimer {
        let hist = handle.get();
        let start = crate::metrics_enabled().then(Instant::now);
        SpanTimer { hist, start }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_histogram_merge_matches_per_sample_record() {
        let direct = Histogram::new(Unit::Count);
        let merged = Histogram::new(Unit::Count);
        let mut local = LocalHistogram::new();
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 20, u64::MAX] {
            direct.record(v);
            local.record(v);
        }
        assert_eq!(local.count(), 8);
        merged.merge_local(&local);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.sum(), direct.sum());
        assert_eq!(merged.bucket_counts(), direct.bucket_counts());
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Bounds round-trip: every bucket's lo/hi map back to itself.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::new(Unit::Hops);
        for v in [0, 1, 1, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 16);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1, "one zero");
        assert_eq!(buckets[1], 2, "two ones");
        assert_eq!(buckets[3], 1, "5 in [4,8)");
        assert_eq!(buckets[4], 1, "9 in [8,16)");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn span_timer_records_only_when_enabled() {
        static TIMED: LazyHistogram = LazyHistogram::racy("telemetry.test.timer_ns", Unit::Nanos);
        crate::set_metrics_override(Some(false));
        drop(TIMED.timer());
        let disabled = TIMED.count();
        crate::set_metrics_override(Some(true));
        drop(TIMED.timer());
        let enabled = TIMED.count();
        crate::set_metrics_override(None);
        assert_eq!(disabled, 0, "disabled timer must not record");
        assert_eq!(enabled, 1, "enabled timer must record once");
    }
}
