//! Zero-dependency observability for the SpaceCDN workspace.
//!
//! After two performance PRs the hot paths were only visible through a
//! scatter of ad-hoc counters (`SnapshotPool::hits`,
//! `RoutingCache::reverse_table_hits`) and one-off bench prints. This crate
//! is the uniform answer to "what did this campaign actually do?": a
//! process-wide [`registry`] of named metrics every layer reports into, and
//! a deterministic JSON snapshot every experiment binary drops next to its
//! results (`results/METRICS_*.json`).
//!
//! # Metric types
//!
//! - [`Counter`] — a monotonically increasing `u64`, sharded across
//!   cache-line-padded relaxed atomics so concurrent experiment tasks never
//!   contend on one line;
//! - [`Histogram`] — fixed log2 buckets over `u64` samples (nanosecond
//!   timings, hop counts, byte sizes), again plain relaxed atomics;
//! - [`SpanTimer`] — an RAII guard recording its lifetime into a nanosecond
//!   histogram.
//!
//! Call sites hold [`LazyCounter`] / [`LazyHistogram`] statics: a `const`
//! name plus a `OnceLock`, so the registry map is consulted once per call
//! site per process and the steady-state cost of an increment is one
//! relaxed `fetch_add`.
//!
//! # Determinism contract
//!
//! Instrumentation never feeds back into campaign logic — campaign outputs
//! are byte-identical with telemetry enabled or disabled, at any thread
//! count (`tests/determinism.rs` enforces this). Metrics themselves split
//! into two classes, recorded at registration:
//!
//! - [`Determinism::Stable`] — counts that are a pure function of the
//!   campaign's (deterministic) work: retrieval outcomes, probe counts,
//!   spatial-index cell scans. Identical at 1 or N threads; the
//!   determinism suite diffs them across thread counts.
//! - [`Determinism::Racy`] — counts that depend on scheduling: cache
//!   hit/miss splits (two tasks racing on an uncached key may both miss),
//!   memoized-table computations, and every wall-clock histogram.
//!
//! # Disabled mode
//!
//! `SPACECDN_METRICS=0` (or [`set_metrics_override`]`(Some(false))`)
//! disables telemetry: span timers stop reading the clock, and snapshot
//! emission is skipped, so nothing is ever read back. Counters degrade to
//! bare relaxed `fetch_add`s on uncontended shards — there is no branch in
//! the increment path, and no synchronisation stronger than `Relaxed`
//! anywhere, so enabled-vs-disabled cannot perturb an experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod registry;

pub use metrics::{
    Counter, Determinism, Histogram, LazyCounter, LazyHistogram, LocalHistogram, SpanTimer, Unit,
};
pub use registry::{
    snapshot, snapshot_json, BucketSnapshot, CounterSnapshot, HistogramSnapshot, MetricsReport,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// In-process telemetry kill switch: 0 = follow the environment, 1 =
/// forced off, 2 = forced on.
static METRICS_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Environment default, read once: `SPACECDN_METRICS=0` (or `false`/`off`)
/// disables telemetry. Unset or any other value leaves it on.
fn env_metrics_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var("SPACECDN_METRICS").is_ok_and(|v| matches!(v.as_str(), "0" | "false" | "off"))
    })
}

/// Force telemetry on or off for this process, overriding
/// `SPACECDN_METRICS`. `None` restores environment behaviour. Tests use
/// this to prove campaign outputs are byte-identical either way.
pub fn set_metrics_override(enabled: Option<bool>) {
    let code = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    METRICS_OVERRIDE.store(code, Ordering::SeqCst);
}

/// Is telemetry active? Campaign *results* are identical either way; only
/// whether timers run and snapshots are emitted differs.
pub fn metrics_enabled() -> bool {
    match METRICS_OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => !env_metrics_disabled(),
    }
}

/// Zero every registered metric (names and kinds stay registered).
///
/// For tests and benchmarks that compare the metric deltas of two runs in
/// one process; production code never resets.
pub fn reset() {
    registry::reset();
}
