//! Live scenario sessions: the daemon-side state one `create` command
//! brings into being.
//!
//! A session owns one [`Scenario`] per simulated shell, a continuous
//! virtual clock, and the workload parameters subsequent commands mutate.
//! Time only moves forward: `advance` steps the clock through a
//! [`Stepper`] over a [`Splice`] of refresh-instant streams (each `fault`
//! command splices the outage's start/end instants in, so the schedule is
//! re-lowered exactly when its plan changes), and each `traffic` burst
//! runs the batched engine from the current clock
//! (`TrafficConfig::start`) and leaves the clock at the burst horizon.
//!
//! Everything a session computes is a pure function of its creation
//! arguments and the ordered mutating commands applied to it — the
//! property the journal/replay layer turns into a differential oracle for
//! the whole daemon.

use crate::protocol::{json_f64, json_str, CreateArgs};
use spacecdn_core::network::LsnNetwork;
use spacecdn_core::placement::{PlacementPlan, PlacementSpec, PlacementStrategy};
use spacecdn_core::retrieval::FetchResult;
use spacecdn_core::scenario::Scenario;
use spacecdn_core::traffic::{
    run_traffic_multishell, PolicyKind, TrafficConfig, TrafficReport, TrafficSource,
};
use spacecdn_des::stream::{EventStream, Splice, Stepper};
use spacecdn_geo::{DetRng, Geodetic, Latency, SimDuration, SimTime};
use spacecdn_lsn::AccessModel;
use spacecdn_measure::traffic::{covered_traffic_sources_from, starlink_shell_scenarios};
use spacecdn_orbit::shell::shells;
use spacecdn_orbit::Constellation;
use spacecdn_telemetry::LazyCounter;
use spacecdn_terra::fiber::FiberModel;

static SESSIONS_CREATED: LazyCounter = LazyCounter::stable("serve.sessions.created");
static SESSION_BURSTS: LazyCounter = LazyCounter::stable("serve.sessions.traffic_bursts");
static SESSION_FETCHES: LazyCounter = LazyCounter::stable("serve.sessions.fetches");
static SESSION_MUTATIONS: LazyCounter = LazyCounter::stable("serve.sessions.mutations");

/// A materialized stream of schedule-refresh instants, spliced into the
/// session clock whenever a `fault` command lands mid-run.
struct Instants {
    times: std::vec::IntoIter<SimTime>,
}

impl EventStream for Instants {
    type Event = ();
    fn next_event(&mut self) -> Option<(SimTime, ())> {
        self.times.next().map(|t| (t, ()))
    }
}

/// One live session (see module docs).
pub struct Session {
    args: CreateArgs,
    scenarios: Vec<Scenario>,
    /// Calibrated network the population-weighted source table rides
    /// (starlink sessions only; `None` for the synthetic test grid).
    source_net: Option<LsnNetwork>,
    clock: SimTime,
    /// Pending schedule-refresh instants from injected faults, driven in
    /// time order by `advance`.
    refreshes: Stepper<Splice<()>>,
    fetch_rng: DetRng,
    /// Live-mutable burst parameters.
    duty_fraction: f64,
    cache_bytes_per_sat: u64,
    /// Accumulated results.
    bursts: u64,
    fetches: u64,
    fetch_space_hits: u64,
    fetch_degraded: u64,
    fetch_rtt_ms_sum: f64,
    traffic: TrafficReport,
    mutations: u64,
}

impl Session {
    /// Materialize a session from its creation arguments.
    ///
    /// # Errors
    /// Unknown constellation names and out-of-range shell indices are
    /// reported as strings (the server turns them into protocol errors).
    pub fn create(args: CreateArgs) -> Result<Session, String> {
        let (scenarios, source_net) = match args.constellation.as_str() {
            "test" => {
                let net = LsnNetwork::new(
                    Constellation::new(shells::test_shell()),
                    Vec::new(),
                    AccessModel::default(),
                    FiberModel::default(),
                );
                (vec![Scenario::builder(net).build()], None)
            }
            "starlink" => {
                let shell_idx: Vec<usize> = args.shells.iter().map(|&s| s as usize).collect();
                if shell_idx.iter().any(|&s| s >= 4) {
                    return Err(format!("starlink 2024 has shells 0..4, got {shell_idx:?}"));
                }
                let scenarios =
                    starlink_shell_scenarios(&shell_idx, &spacecdn_lsn::FaultSchedule::none());
                (scenarios, Some(LsnNetwork::starlink()))
            }
            other => return Err(format!("unknown constellation {other:?}")),
        };

        let mut scenarios = scenarios;
        if args.copies_per_plane > 0 {
            for (i, sc) in scenarios.iter_mut().enumerate() {
                // Per-shell seed offset decorrelates the plans the way the
                // old shared-RNG sweep did, while keeping each shell's plan
                // a pure function of (seed, shell index).
                let plan = PlacementPlan::builder(PlacementStrategy::PerPlane {
                    k: args.copies_per_plane,
                })
                .seed(args.seed.wrapping_add(i as u64))
                .build_single(sc.network().constellation());
                let copies = plan.materialize(sc.network().constellation());
                sc.set_copies(copies);
            }
        }

        SESSIONS_CREATED.incr();
        let fetch_rng = DetRng::new(args.seed, "serve/fetch");
        Ok(Session {
            scenarios,
            source_net,
            clock: SimTime::EPOCH,
            refreshes: Stepper::new(Splice::new()),
            fetch_rng,
            duty_fraction: args.duty,
            cache_bytes_per_sat: u64::from(args.cache_mb) << 20,
            bursts: 0,
            fetches: 0,
            fetch_space_hits: 0,
            fetch_degraded: 0,
            fetch_rtt_ms_sum: 0.0,
            traffic: TrafficReport::default(),
            mutations: 0,
            args,
        })
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.args.session
    }

    /// The current virtual clock (nanoseconds since epoch).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Traffic bursts run so far.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Requests simulated so far (bursts + single fetches).
    pub fn requests(&self) -> u64 {
        self.traffic.requests + self.fetches
    }

    /// Move the clock forward by `secs`, firing any pending
    /// schedule-refresh instants in time order along the way (each
    /// re-lowers the fault plan and re-snapshots through the delta path).
    pub fn advance(&mut self, secs: u64) {
        let target = self.clock + SimDuration::from_secs(secs);
        let scenarios = &mut self.scenarios;
        self.refreshes.step_until(scenarios, target, |scs, t, ()| {
            for sc in scs.iter_mut() {
                if t >= sc.epoch() {
                    sc.advance_to(t);
                }
            }
        });
        for sc in scenarios.iter_mut() {
            if target >= sc.epoch() {
                sc.advance_to(target);
            }
        }
        self.clock = target;
    }

    /// Resolve one retrieval at the current clock against shell 0's
    /// scenario, consuming one slice of the session's fetch RNG stream.
    pub fn fetch(&mut self, lat: f64, lon: f64) -> FetchResult {
        SESSION_FETCHES.incr();
        let user = Geodetic::ground(lat, lon);
        let result = self.scenarios[0].fetch_user(user, Some(&mut self.fetch_rng));
        self.fetches += 1;
        if result.space_hit() {
            self.fetch_space_hits += 1;
        }
        if result.degraded.is_some() {
            self.fetch_degraded += 1;
        }
        if let Some(outcome) = &result.outcome {
            self.fetch_rtt_ms_sum += outcome.rtt.ms();
        }
        result
    }

    /// Run one batched traffic burst from the current clock: the engine
    /// freezes `epochs` epochs at `clock + step·e`, drives `requests`
    /// arrivals over `(clock, clock + step·epochs]`, and the clock lands
    /// on the burst horizon. Caches are warm *within* a burst (the
    /// engine's per-shard fleets); session state carries the workload
    /// parameters, not cache contents.
    pub fn traffic(&mut self, requests: u64, epochs: u32, epoch_step_secs: u64) -> TrafficReport {
        SESSION_BURSTS.incr();
        let step = SimDuration::from_secs(epoch_step_secs.max(1));
        let epochs = epochs.max(1) as usize;
        let start = self.clock;
        // Per-burst seed: decorrelate bursts without losing determinism.
        let seed = self
            .args
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.bursts + 1));
        let cfg = TrafficConfig {
            requests,
            streams: (self.args.streams.max(1)) as usize,
            epochs,
            epoch_step: step,
            catalog_size: (self.args.catalog.max(self.args.streams.max(1))) as usize,
            zipf_alpha: self.args.zipf_alpha,
            cache_bytes_per_sat: self.cache_bytes_per_sat.max(1),
            policy: self.scenarios[0].cache_policy(),
            placement: self.scenarios[0].placement().copied(),
            duty_fraction: self.duty_fraction,
            seed,
            start,
            ..TrafficConfig::default()
        };
        let sources = self.sources_for(start, epochs, step);
        let report = run_traffic_multishell(&mut self.scenarios, &sources, &cfg);
        self.bursts += 1;
        self.clock = start + step.mul(epochs as u64);
        // Consume refresh instants the burst window covered; the engine
        // already lowered the plan at every frozen epoch, so stale
        // instants must not drag a scenario backward.
        let scenarios = &mut self.scenarios;
        self.refreshes
            .step_until(scenarios, self.clock, |scs, t, ()| {
                for sc in scs.iter_mut() {
                    if t >= sc.epoch() {
                        sc.advance_to(t);
                    }
                }
            });
        self.traffic.merge(&report);
        report
    }

    /// Inject an outage window into every shell's live schedule and
    /// splice its start/end instants into the clock's refresh stream.
    pub fn fault(&mut self, sats: &[u32], from_secs: u64, until_secs: Option<u64>, gsl: bool) {
        SESSION_MUTATIONS.incr();
        self.mutations += 1;
        let from = SimTime::from_secs(from_secs);
        let until = until_secs.map(SimTime::from_secs);
        for sc in self.scenarios.iter_mut() {
            let fleet = sc.network().constellation().len() as u32;
            sc.mutate_schedule(|schedule| {
                for &s in sats {
                    if s < fleet {
                        let sat = spacecdn_orbit::SatIndex(s);
                        if gsl {
                            schedule.gsl_outage(sat, from, until);
                        } else {
                            schedule.sat_outage(sat, from, until);
                        }
                    }
                }
            });
        }
        let mut times: Vec<SimTime> = [Some(from), until]
            .into_iter()
            .flatten()
            .filter(|&t| t > self.clock)
            .collect();
        times.sort();
        if !times.is_empty() {
            self.refreshes.stream_mut().splice(Instants {
                times: times.into_iter(),
            });
        }
    }

    /// Change the duty fraction consumed by subsequent bursts.
    pub fn set_duty(&mut self, fraction: f64) {
        SESSION_MUTATIONS.incr();
        self.mutations += 1;
        self.duty_fraction = fraction.clamp(0.0, 1.0);
    }

    /// Resize per-satellite caches for subsequent bursts.
    pub fn set_cache_bytes(&mut self, bytes_per_sat: u64) {
        SESSION_MUTATIONS.incr();
        self.mutations += 1;
        self.cache_bytes_per_sat = bytes_per_sat.max(1);
    }

    /// Swap the cache eviction/admission policy for subsequent bursts.
    /// Cache contents are per-burst, so the swap needs no live migration.
    pub fn set_cache_policy(&mut self, policy: PolicyKind) {
        SESSION_MUTATIONS.incr();
        self.mutations += 1;
        for sc in self.scenarios.iter_mut() {
            sc.set_cache_policy(policy);
        }
    }

    /// Swap (or disable) the replica-placement spec for subsequent bursts.
    /// Pinned replica plans are per-burst, like cache contents, so the
    /// swap needs no live migration.
    pub fn set_placement(&mut self, spec: Option<PlacementSpec>) {
        SESSION_MUTATIONS.incr();
        self.mutations += 1;
        for sc in self.scenarios.iter_mut() {
            sc.set_placement(spec);
        }
    }

    /// The per-burst source table: population-weighted covered cities for
    /// starlink sessions, a fixed synthetic grid for the test shell.
    fn sources_for(&self, start: SimTime, epochs: usize, step: SimDuration) -> Vec<TrafficSource> {
        if let Some(net) = &self.source_net {
            covered_traffic_sources_from(net, self.scenarios[0].schedule(), start, epochs, step)
        } else {
            // A deterministic city grid spanning latitudes the test shell
            // covers; fallback RTT fixed so reports are easy to reason
            // about in tests.
            const GRID: [(f64, f64, u32); 6] = [
                (-25.97, 32.58, 2),  // Maputo
                (50.11, 8.68, 8),    // Frankfurt
                (40.71, -74.01, 9),  // New York
                (1.29, 103.85, 6),   // Singapore
                (-33.87, 151.21, 5), // Sydney
                (19.08, 72.88, 12),  // Mumbai
            ];
            GRID.iter()
                .map(|&(lat, lon, weight)| TrafficSource {
                    position: Geodetic::ground(lat, lon),
                    weight,
                    fallback_rtt: vec![Latency::from_ms(200.0); epochs],
                })
                .collect()
        }
    }

    /// One-line summary for `list` responses.
    pub fn summary_json(&self) -> String {
        format!(
            r#"{{"session":{},"clock_ns":{},"bursts":{},"requests":{}}}"#,
            json_str(self.name()),
            self.clock.0,
            self.bursts,
            self.requests()
        )
    }

    /// The canonical final report: one compact JSON object capturing
    /// everything the session accumulated. Replaying the session's
    /// journal must reproduce these bytes exactly at any worker thread
    /// count — the daemon's determinism contract.
    pub fn report_json(&mut self) -> String {
        let p50 = self.traffic.latencies.quantile(0.50).unwrap_or(0.0);
        let p90 = self.traffic.latencies.quantile(0.90).unwrap_or(0.0);
        let p99 = self.traffic.latencies.quantile(0.99).unwrap_or(0.0);
        let t = self.traffic.clone();
        format!(
            concat!(
                r#"{{"session":{},"seed":{},"clock_ns":{},"bursts":{},"mutations":{},"#,
                r#""fetches":{{"count":{},"space_hits":{},"degraded":{},"rtt_ms_sum":{}}},"#,
                r#""traffic":{{"requests":{},"overhead_hits":{},"isl_hits":{},"#,
                r#""origin_fetches":{},"dead_zones":{},"inserts":{},"evictions":{},"#,
                r#""ttl_expiries":{},"invalidations":{},"served_bytes":{},"origin_bytes":{},"#,
                r#""pinned_hits":{},"neighbor_hits":{},"decision_digest":{},"#,
                r#""p50_ms":{},"p90_ms":{},"p99_ms":{}}}}}"#
            ),
            json_str(self.name()),
            self.args.seed,
            self.clock.0,
            self.bursts,
            self.mutations,
            self.fetches,
            self.fetch_space_hits,
            self.fetch_degraded,
            json_f64(self.fetch_rtt_ms_sum),
            t.requests,
            t.overhead_hits,
            t.isl_hits,
            t.origin_fetches,
            t.dead_zones,
            t.inserts,
            t.evictions,
            t.ttl_expiries,
            t.invalidations,
            t.served_bytes,
            t.origin_bytes,
            t.pinned_hits,
            t.neighbor_hits,
            t.decision_digest,
            json_f64(p50),
            json_f64(p90),
            json_f64(p99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_args(name: &str) -> CreateArgs {
        CreateArgs {
            session: name.to_string(),
            seed: 7,
            catalog: 200,
            streams: 2,
            ..CreateArgs::default()
        }
    }

    #[test]
    fn create_rejects_unknown_constellations() {
        let err = Session::create(CreateArgs {
            constellation: "kuiper".into(),
            ..quick_args("x")
        })
        .err()
        .expect("unknown constellation must be rejected");
        assert!(err.contains("kuiper"));
        let err = Session::create(CreateArgs {
            constellation: "starlink".into(),
            shells: vec![9],
            ..quick_args("x")
        })
        .err()
        .expect("out-of-range shell must be rejected");
        assert!(err.contains("shells"));
    }

    #[test]
    fn traffic_burst_moves_the_clock_to_the_horizon() {
        let mut s = Session::create(quick_args("clock")).unwrap();
        assert_eq!(s.clock(), SimTime::EPOCH);
        let report = s.traffic(500, 2, 60);
        assert_eq!(report.requests, 500);
        assert_eq!(s.clock(), SimTime::from_secs(120));
        assert_eq!(s.bursts(), 1);
        // A second burst continues from the new clock, not from zero.
        s.traffic(300, 1, 60);
        assert_eq!(s.clock(), SimTime::from_secs(180));
        assert_eq!(s.requests(), 800);
    }

    #[test]
    fn sessions_are_replay_deterministic() {
        // Same creation args + same command sequence → byte-identical
        // report, regardless of interleaved read-only queries.
        let run = || {
            let mut s = Session::create(quick_args("det")).unwrap();
            s.traffic(400, 2, 60);
            s.fault(&[3, 4, 5], 150, Some(400), false);
            s.advance(30);
            s.fetch(-25.97, 32.58);
            s.traffic(200, 1, 60);
            s.report_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn fault_injection_changes_subsequent_results() {
        let baseline = {
            let mut s = Session::create(quick_args("base")).unwrap();
            s.traffic(400, 1, 60);
            s.report_json()
        };
        let faulted = {
            let mut s = Session::create(quick_args("base")).unwrap();
            // Kill the whole test fleet before the burst window.
            let all: Vec<u32> = (0..64).collect();
            s.fault(&all, 0, None, false);
            s.traffic(400, 1, 60);
            s.report_json()
        };
        assert_ne!(baseline, faulted, "a fleet-wide outage must show up");
    }

    #[test]
    fn placement_mutation_changes_subsequent_bursts() {
        let baseline = {
            let mut s = Session::create(quick_args("pl")).unwrap();
            s.traffic(400, 1, 60);
            s.report_json()
        };
        let placed = {
            let mut s = Session::create(quick_args("pl")).unwrap();
            s.set_placement(PlacementSpec::parse("perplane-2:budget-400:cap-8:coop"));
            s.traffic(400, 1, 60);
            s.report_json()
        };
        assert_ne!(baseline, placed, "pinned placement must show up");
    }

    #[test]
    fn advance_fires_spliced_refresh_instants_in_order() {
        let mut s = Session::create(quick_args("adv")).unwrap();
        s.fault(&[1], 100, Some(200), false);
        s.fault(&[2], 50, None, false);
        s.advance(300);
        assert_eq!(s.clock(), SimTime::from_secs(300));
        assert_eq!(s.scenarios[0].epoch(), SimTime::from_secs(300));
    }
}
