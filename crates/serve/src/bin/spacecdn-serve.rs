//! CLI entry point for the scenario daemon.
//!
//! Serve mode:
//!
//! ```text
//! spacecdn-serve --listen 127.0.0.1:4600 --journal-dir journals \
//!     [--port-file PATH] [--threads N]
//! ```
//!
//! Replay mode — re-execute a session journal and print (or write) the
//! final report line, byte-identical to what the live daemon returned:
//!
//! ```text
//! spacecdn-serve --replay journals/demo.jsonl [--out report.json] [--threads N]
//! ```

use spacecdn_serve::server::{Daemon, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    listen: String,
    journal_dir: PathBuf,
    port_file: Option<PathBuf>,
    replay: Option<PathBuf>,
    out: Option<PathBuf>,
    threads: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: spacecdn-serve [--listen ADDR] [--journal-dir DIR] [--port-file PATH] \
         [--threads N] | --replay JOURNAL [--out PATH] [--threads N]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        listen: "127.0.0.1:4600".to_string(),
        journal_dir: PathBuf::from("journals"),
        port_file: None,
        replay: None,
        out: None,
        threads: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => cli.listen = value("--listen"),
            "--journal-dir" => cli.journal_dir = PathBuf::from(value("--journal-dir")),
            "--port-file" => cli.port_file = Some(PathBuf::from(value("--port-file"))),
            "--replay" => cli.replay = Some(PathBuf::from(value("--replay"))),
            "--out" => cli.out = Some(PathBuf::from(value("--out"))),
            "--threads" => {
                cli.threads = Some(value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs an integer");
                    usage()
                }))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse_cli();
    spacecdn_engine::set_thread_override(cli.threads);

    if let Some(journal) = &cli.replay {
        return match spacecdn_serve::journal::replay(journal) {
            Ok(report) => {
                match &cli.out {
                    Some(path) => {
                        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                            eprintln!("write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                    None => println!("{report}"),
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("replay failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    spacecdn_serve::signal::install_handlers();
    let cfg = ServeConfig {
        listen: cli.listen,
        journal_dir: cli.journal_dir,
        port_file: cli.port_file,
    };
    let daemon = match Daemon::bind(&cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.listen);
            return ExitCode::FAILURE;
        }
    };
    if let Ok(addr) = daemon.local_addr() {
        eprintln!("spacecdn-serve listening on {addr}");
    }
    match daemon.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
