//! The daemon: TCP listener, session registry, and per-connection
//! command loop.
//!
//! Concurrency model: the registry is a `Mutex<BTreeMap>` of
//! `Arc<Mutex<SessionEntry>>`s — connections clone the entry `Arc` and
//! release the registry before executing, so two clients hammering
//! *different* sessions run fully in parallel while commands on one
//! session serialize (the determinism contract needs a total order per
//! session, which the per-entry lock provides and the journal records).
//!
//! Shutdown: SIGINT/SIGTERM (see [`crate::signal`]) or a `shutdown`
//! command set a flag; the accept loop and every connection poll it on
//! short socket timeouts, finish their in-flight command, and drain.
//! Journals are write-ahead-flushed per command, so even a SIGKILL loses
//! at most a torn trailing line (which replay discards).

use crate::journal::Journal;
use crate::protocol::{json_str, Command, CreateArgs};
use crate::session::Session;
use crate::signal;
use spacecdn_core::placement::PlacementSpec;
use spacecdn_core::retrieval::RetrievalSource;
use spacecdn_core::traffic::PolicyKind;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often blocked accept/read loops wake to poll the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Directory session journals are written into.
    pub journal_dir: PathBuf,
    /// When set, the daemon writes its bound address here after binding —
    /// how scripts and tests discover a `:0` port.
    pub port_file: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:4600".to_string(),
            journal_dir: PathBuf::from("journals"),
            port_file: None,
        }
    }
}

/// One registered session plus its write-ahead journal.
struct SessionEntry {
    session: Session,
    journal: Journal,
}

/// State shared by the accept loop and every connection thread.
struct State {
    sessions: Mutex<BTreeMap<String, Arc<Mutex<SessionEntry>>>>,
    journal_dir: PathBuf,
    /// This daemon's own shutdown flag (the `shutdown` command); process
    /// signals use the global flag in [`crate::signal`].
    shutdown: AtomicBool,
}

impl State {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }
}

/// A bound, not-yet-serving daemon.
pub struct Daemon {
    listener: TcpListener,
    state: Arc<State>,
}

impl Daemon {
    /// Bind the listener and (when configured) publish the bound address
    /// to the port file.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&cfg.listen)?;
        if let Some(port_file) = &cfg.port_file {
            if let Some(parent) = port_file.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(port_file, format!("{}\n", listener.local_addr()?))?;
        }
        Ok(Daemon {
            listener,
            state: Arc::new(State {
                sessions: Mutex::new(BTreeMap::new()),
                journal_dir: cfg.journal_dir.clone(),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with `listen = "127.0.0.1:0"`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a shutdown is requested, then drain connection
    /// threads and return. Journals are flushed per command, so there is
    /// nothing else to persist.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut workers = Vec::new();
        while !self.state.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    workers.push(std::thread::spawn(move || serve_connection(stream, state)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn serve_connection(stream: TcpStream, state: Arc<State>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = dispatch(line.trim(), &state);
                if writer
                    .write_all(response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if state.draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn err_response(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", json_str(msg))
}

/// Execute one request line and render its response line.
fn dispatch(line: &str, state: &State) -> String {
    let cmd = match Command::parse(line) {
        Ok(cmd) => cmd,
        Err(e) => return err_response(&e),
    };
    match cmd {
        Command::Ping => "{\"ok\":true,\"pong\":true}".to_string(),
        Command::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            "{\"ok\":true,\"shutting_down\":true}".to_string()
        }
        Command::Metrics => {
            // The shared spacecdn-metrics-v1 serializer, embedded as a
            // JSON string so the response stays one line.
            format!(
                "{{\"ok\":true,\"metrics\":{}}}",
                json_str(&spacecdn_telemetry::snapshot_json())
            )
        }
        Command::List => {
            let sessions = state.sessions.lock().unwrap_or_else(|e| e.into_inner());
            let mut parts = Vec::with_capacity(sessions.len());
            for entry in sessions.values() {
                let entry = entry.lock().unwrap_or_else(|e| e.into_inner());
                parts.push(entry.session.summary_json());
            }
            format!("{{\"ok\":true,\"sessions\":[{}]}}", parts.join(","))
        }
        Command::Create(args) => create_session(args, state),
        Command::Drop { session } => {
            let removed = {
                let mut sessions = state.sessions.lock().unwrap_or_else(|e| e.into_inner());
                sessions.remove(&session)
            };
            match removed {
                Some(entry) => {
                    let mut entry = entry.lock().unwrap_or_else(|e| e.into_inner());
                    let clock = entry.session.clock().0;
                    let _ = entry.journal.record(
                        clock,
                        &Command::Drop {
                            session: session.clone(),
                        },
                    );
                    format!("{{\"ok\":true,\"dropped\":{}}}", json_str(&session))
                }
                None => err_response(&format!("no session {session:?}")),
            }
        }
        // Session-addressed commands: resolve the entry, serialize on its
        // lock, journal mutations write-ahead, then execute.
        cmd => {
            let name = cmd.session().expect("session-addressed command");
            let entry = {
                let sessions = state.sessions.lock().unwrap_or_else(|e| e.into_inner());
                sessions.get(name).cloned()
            };
            let Some(entry) = entry else {
                return err_response(&format!("no session {name:?}"));
            };
            let mut entry = entry.lock().unwrap_or_else(|e| e.into_inner());
            if cmd.is_mutating() {
                let clock = entry.session.clock().0;
                if let Err(e) = entry.journal.record(clock, &cmd) {
                    return err_response(&format!("journal write failed: {e}"));
                }
            }
            execute_on_session(&cmd, &mut entry.session)
        }
    }
}

fn create_session(args: CreateArgs, state: &State) -> String {
    let name = args.session.clone();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return err_response("session names are non-empty [A-Za-z0-9_-]+");
    }
    let mut sessions = state.sessions.lock().unwrap_or_else(|e| e.into_inner());
    if sessions.contains_key(&name) {
        return err_response(&format!("session {name:?} already exists"));
    }
    let mut journal = match Journal::create(&state.journal_dir, &name) {
        Ok(j) => j,
        Err(e) => return err_response(&format!("journal create failed: {e}")),
    };
    if let Err(e) = journal.record(0, &Command::Create(args.clone())) {
        return err_response(&format!("journal write failed: {e}"));
    }
    let session = match Session::create(args) {
        Ok(s) => s,
        Err(e) => return err_response(&e),
    };
    let journal_path = journal.path().display().to_string();
    sessions.insert(
        name.clone(),
        Arc::new(Mutex::new(SessionEntry { session, journal })),
    );
    format!(
        "{{\"ok\":true,\"created\":{},\"journal\":{}}}",
        json_str(&name),
        json_str(&journal_path)
    )
}

fn execute_on_session(cmd: &Command, session: &mut Session) -> String {
    match cmd {
        Command::Advance { secs, .. } => {
            session.advance(*secs);
            format!("{{\"ok\":true,\"clock_ns\":{}}}", session.clock().0)
        }
        Command::Fetch { lat, lon, .. } => {
            let result = session.fetch(*lat, *lon);
            let (source, hops) = match result.outcome.as_ref().map(|o| o.source) {
                Some(RetrievalSource::Overhead) => ("overhead", 0),
                Some(RetrievalSource::Isl { hops }) => ("isl", hops),
                Some(RetrievalSource::Ground) => ("ground", 0),
                None => ("none", 0),
            };
            let rtt_ms = result.outcome.as_ref().map_or(0.0, |o| o.rtt.ms());
            format!(
                "{{\"ok\":true,\"fetch\":{{\"source\":\"{}\",\"hops\":{},\"rtt_ms\":{},\"attempts\":{},\"degraded\":{}}}}}",
                source,
                hops,
                crate::protocol::json_f64(rtt_ms),
                result.attempts,
                result.degraded.is_some()
            )
        }
        Command::Traffic {
            requests,
            epochs,
            epoch_step_secs,
            ..
        } => {
            let report = session.traffic(*requests, *epochs, *epoch_step_secs);
            format!(
                "{{\"ok\":true,\"burst\":{{\"requests\":{},\"hit_ratio\":{},\"origin_fetches\":{},\"dead_zones\":{},\"clock_ns\":{}}}}}",
                report.requests,
                crate::protocol::json_f64(report.hit_ratio()),
                report.origin_fetches,
                report.dead_zones,
                session.clock().0
            )
        }
        Command::Fault {
            sats,
            from_secs,
            until_secs,
            gsl,
            ..
        } => {
            session.fault(sats, *from_secs, *until_secs, *gsl);
            format!("{{\"ok\":true,\"clock_ns\":{}}}", session.clock().0)
        }
        Command::Duty { fraction, .. } => {
            session.set_duty(*fraction);
            format!("{{\"ok\":true,\"clock_ns\":{}}}", session.clock().0)
        }
        Command::Cache {
            bytes_per_sat,
            policy,
            ..
        } => {
            session.set_cache_bytes(*bytes_per_sat);
            if let Some(name) = policy {
                // Parse cannot fail: the protocol layer already normalized
                // the name to a canonical PolicyKind spelling.
                if let Some(kind) = PolicyKind::parse(name) {
                    session.set_cache_policy(kind);
                }
            }
            format!("{{\"ok\":true,\"clock_ns\":{}}}", session.clock().0)
        }
        Command::Place { spec, .. } => {
            // Parse cannot fail: the protocol layer already normalized the
            // spec to a canonical PlacementSpec name (or None for "off").
            session.set_placement(spec.as_deref().and_then(PlacementSpec::parse));
            format!("{{\"ok\":true,\"clock_ns\":{}}}", session.clock().0)
        }
        Command::Report { .. } => {
            format!("{{\"ok\":true,\"report\":{}}}", session.report_json())
        }
        other => err_response(&format!("unhandled command {other:?}")),
    }
}
