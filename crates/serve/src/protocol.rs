//! The line-delimited JSON protocol: command parsing and canonical
//! re-encoding.
//!
//! Every request is one JSON object per line with an `"op"` field; every
//! response is one JSON object per line with an `"ok"` field. Mutating
//! commands are re-encoded *canonically* (fixed key order, shortest
//! round-trip floats) before journaling, so a journal line is a pure
//! function of the parsed command — whatever whitespace or key order the
//! client used. Replay parses those canonical lines back through the same
//! [`Command::parse`], closing the loop: journal(parse(x)) is a fixed
//! point after one round trip.
//!
//! Grammar (see DESIGN.md §3.7 for the full table):
//!
//! ```text
//! {"op":"ping"}
//! {"op":"list"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! {"op":"create","session":S,"seed":N,"constellation":"test"|"starlink",
//!  "shells":[..],"streams":N,"catalog":N,"zipf_alpha":F,"cache_mb":N,
//!  "duty":F,"copies_per_plane":N}
//! {"op":"drop","session":S}
//! {"op":"advance","session":S,"secs":N}
//! {"op":"fetch","session":S,"lat":F,"lon":F}
//! {"op":"traffic","session":S,"requests":N,"epochs":N,"epoch_step_secs":N}
//! {"op":"fault","session":S,"sats":[..],"from_secs":N,"until_secs":N|null,
//!  "gsl":B}
//! {"op":"duty","session":S,"fraction":F}
//! {"op":"cache","session":S,"bytes_per_sat":N,
//!  "policy":"lru"|"sieve"|"s3fifo"|"tinylfu"|null}
//! {"op":"place","session":S,"spec":"perplane-2:budget-500:coop"|"off"|null}
//! {"op":"report","session":S}
//! ```

use serde_json::{parse_value, Value};

/// Session-creation parameters (all but `session` optional on the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct CreateArgs {
    /// Session name (registry key; also the journal file stem).
    pub session: String,
    /// Master seed for every deterministic stream the session owns.
    pub seed: u64,
    /// `"test"` (8×8 reduced shell) or `"starlink"` (2024 shells).
    pub constellation: String,
    /// Starlink 2024 shell indices (ignored for `"test"`).
    pub shells: Vec<u32>,
    /// Catalog shards per traffic burst (semantic parallelism grain).
    pub streams: u32,
    /// Catalog size in objects.
    pub catalog: u32,
    /// Zipf popularity exponent.
    pub zipf_alpha: f64,
    /// Per-satellite cache capacity in MiB.
    pub cache_mb: u32,
    /// Initial duty-cycle fraction.
    pub duty: f64,
    /// Content copies pre-placed per orbital plane (0 = none).
    pub copies_per_plane: u32,
}

impl Default for CreateArgs {
    fn default() -> Self {
        CreateArgs {
            session: String::new(),
            seed: 42,
            constellation: "test".to_string(),
            shells: vec![0],
            streams: 4,
            catalog: 2_000,
            zipf_alpha: 0.9,
            cache_mb: 64,
            duty: 1.0,
            copies_per_plane: 1,
        }
    }
}

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Enumerate sessions.
    List,
    /// Telemetry snapshot (the shared `spacecdn-metrics-v1` serializer).
    Metrics,
    /// Drain sessions, flush journals, exit 0.
    Shutdown,
    /// Create a session.
    Create(CreateArgs),
    /// Drop a session.
    Drop {
        /// Session name.
        session: String,
    },
    /// Advance the session's virtual clock.
    Advance {
        /// Session name.
        session: String,
        /// Seconds of virtual time to move forward.
        secs: u64,
    },
    /// Resolve one retrieval at the current clock.
    Fetch {
        /// Session name.
        session: String,
        /// User latitude (degrees).
        lat: f64,
        /// User longitude (degrees).
        lon: f64,
    },
    /// Run a batched traffic burst from the current clock.
    Traffic {
        /// Session name.
        session: String,
        /// Requests in the burst.
        requests: u64,
        /// Topology epochs the burst spans.
        epochs: u32,
        /// Epoch spacing in seconds.
        epoch_step_secs: u64,
    },
    /// Inject outage windows into the live fault schedule.
    Fault {
        /// Session name.
        session: String,
        /// Satellites the outage hits.
        sats: Vec<u32>,
        /// Outage start (absolute virtual seconds).
        from_secs: u64,
        /// Outage end (absolute virtual seconds; `None` = permanent).
        until_secs: Option<u64>,
        /// Ground-link outage instead of a full satellite outage.
        gsl: bool,
    },
    /// Change the duty-cycle fraction for subsequent bursts.
    Duty {
        /// Session name.
        session: String,
        /// New active-cache fraction.
        fraction: f64,
    },
    /// Resize per-satellite caches and/or swap their eviction policy for
    /// subsequent bursts.
    Cache {
        /// Session name.
        session: String,
        /// New capacity in bytes.
        bytes_per_sat: u64,
        /// New eviction/admission policy (canonical
        /// [`spacecdn_core::traffic::PolicyKind`] name); `None` keeps the
        /// session's current policy.
        policy: Option<String>,
    },
    /// Swap (or disable) the replica-placement spec for subsequent bursts.
    Place {
        /// Session name.
        session: String,
        /// Canonical [`spacecdn_core::PlacementSpec`] name; `None` (or the
        /// wire spellings `"off"` / `null` / absent) disables pinned
        /// placement.
        spec: Option<String>,
    },
    /// The session's canonical final report.
    Report {
        /// Session name.
        session: String,
    },
}

impl Command {
    /// Does this command change daemon or session state (and therefore
    /// belong in a journal)?
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            Command::Create(..)
                | Command::Drop { .. }
                | Command::Advance { .. }
                | Command::Fetch { .. }
                | Command::Traffic { .. }
                | Command::Fault { .. }
                | Command::Duty { .. }
                | Command::Cache { .. }
                | Command::Place { .. }
        )
    }

    /// The session the command addresses, if any.
    pub fn session(&self) -> Option<&str> {
        match self {
            Command::Create(args) => Some(&args.session),
            Command::Drop { session }
            | Command::Advance { session, .. }
            | Command::Fetch { session, .. }
            | Command::Traffic { session, .. }
            | Command::Fault { session, .. }
            | Command::Duty { session, .. }
            | Command::Cache { session, .. }
            | Command::Place { session, .. }
            | Command::Report { session } => Some(session),
            _ => None,
        }
    }

    /// Parse one request line. Errors are human-readable strings the
    /// server echoes back as `{"ok":false,"error":...}`.
    pub fn parse(line: &str) -> Result<Command, String> {
        let value = parse_value(line).map_err(|e| format!("bad json: {e:?}"))?;
        let op = str_field(&value, "op")?;
        match op.as_str() {
            "ping" => Ok(Command::Ping),
            "list" => Ok(Command::List),
            "metrics" => Ok(Command::Metrics),
            "shutdown" => Ok(Command::Shutdown),
            "create" => {
                let d = CreateArgs::default();
                Ok(Command::Create(CreateArgs {
                    session: str_field(&value, "session")?,
                    seed: u64_field(&value, "seed").unwrap_or(d.seed),
                    constellation: str_field(&value, "constellation").unwrap_or(d.constellation),
                    shells: u32s_field(&value, "shells").unwrap_or(d.shells),
                    streams: u64_field(&value, "streams").map_or(d.streams, |v| v as u32),
                    catalog: u64_field(&value, "catalog").map_or(d.catalog, |v| v as u32),
                    zipf_alpha: f64_field(&value, "zipf_alpha").unwrap_or(d.zipf_alpha),
                    cache_mb: u64_field(&value, "cache_mb").map_or(d.cache_mb, |v| v as u32),
                    duty: f64_field(&value, "duty").unwrap_or(d.duty),
                    copies_per_plane: u64_field(&value, "copies_per_plane")
                        .map_or(d.copies_per_plane, |v| v as u32),
                }))
            }
            "drop" => Ok(Command::Drop {
                session: str_field(&value, "session")?,
            }),
            "advance" => Ok(Command::Advance {
                session: str_field(&value, "session")?,
                secs: u64_field(&value, "secs")?,
            }),
            "fetch" => Ok(Command::Fetch {
                session: str_field(&value, "session")?,
                lat: f64_field(&value, "lat")?,
                lon: f64_field(&value, "lon")?,
            }),
            "traffic" => Ok(Command::Traffic {
                session: str_field(&value, "session")?,
                requests: u64_field(&value, "requests")?,
                epochs: u64_field(&value, "epochs").unwrap_or(1) as u32,
                epoch_step_secs: u64_field(&value, "epoch_step_secs").unwrap_or(157),
            }),
            "fault" => Ok(Command::Fault {
                session: str_field(&value, "session")?,
                sats: u32s_field(&value, "sats")?,
                from_secs: u64_field(&value, "from_secs")?,
                until_secs: u64_field(&value, "until_secs").ok(),
                gsl: bool_field(&value, "gsl").unwrap_or(false),
            }),
            "duty" => Ok(Command::Duty {
                session: str_field(&value, "session")?,
                fraction: f64_field(&value, "fraction")?,
            }),
            "cache" => {
                let policy = match str_field(&value, "policy").ok() {
                    Some(name) => Some(
                        spacecdn_core::traffic::PolicyKind::parse(&name)
                            .ok_or_else(|| format!("unknown cache policy {name:?}"))?
                            .name()
                            .to_string(),
                    ),
                    None => None,
                };
                Ok(Command::Cache {
                    session: str_field(&value, "session")?,
                    bytes_per_sat: u64_field(&value, "bytes_per_sat")?,
                    policy,
                })
            }
            "place" => {
                let spec = match str_field(&value, "spec").ok() {
                    Some(name) if name == "off" => None,
                    Some(name) => Some(
                        spacecdn_core::PlacementSpec::parse(&name)
                            .ok_or_else(|| format!("unparseable placement spec {name:?}"))?
                            .name(),
                    ),
                    None => None,
                };
                Ok(Command::Place {
                    session: str_field(&value, "session")?,
                    spec,
                })
            }
            "report" => Ok(Command::Report {
                session: str_field(&value, "session")?,
            }),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Canonical single-line encoding: fixed key order, every field
    /// explicit. `parse(canonical(c)) == c` for every command, and
    /// `canonical` is injective over commands, so journals are stable.
    pub fn canonical(&self) -> String {
        match self {
            Command::Ping => r#"{"op":"ping"}"#.to_string(),
            Command::List => r#"{"op":"list"}"#.to_string(),
            Command::Metrics => r#"{"op":"metrics"}"#.to_string(),
            Command::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
            Command::Create(a) => format!(
                concat!(
                    r#"{{"op":"create","session":{},"seed":{},"constellation":{},"#,
                    r#""shells":{},"streams":{},"catalog":{},"zipf_alpha":{},"#,
                    r#""cache_mb":{},"duty":{},"copies_per_plane":{}}}"#
                ),
                json_str(&a.session),
                a.seed,
                json_str(&a.constellation),
                json_u32s(&a.shells),
                a.streams,
                a.catalog,
                json_f64(a.zipf_alpha),
                a.cache_mb,
                json_f64(a.duty),
                a.copies_per_plane,
            ),
            Command::Drop { session } => {
                format!(r#"{{"op":"drop","session":{}}}"#, json_str(session))
            }
            Command::Advance { session, secs } => format!(
                r#"{{"op":"advance","session":{},"secs":{}}}"#,
                json_str(session),
                secs
            ),
            Command::Fetch { session, lat, lon } => format!(
                r#"{{"op":"fetch","session":{},"lat":{},"lon":{}}}"#,
                json_str(session),
                json_f64(*lat),
                json_f64(*lon)
            ),
            Command::Traffic {
                session,
                requests,
                epochs,
                epoch_step_secs,
            } => format!(
                r#"{{"op":"traffic","session":{},"requests":{},"epochs":{},"epoch_step_secs":{}}}"#,
                json_str(session),
                requests,
                epochs,
                epoch_step_secs
            ),
            Command::Fault {
                session,
                sats,
                from_secs,
                until_secs,
                gsl,
            } => format!(
                r#"{{"op":"fault","session":{},"sats":{},"from_secs":{},"until_secs":{},"gsl":{}}}"#,
                json_str(session),
                json_u32s(sats),
                from_secs,
                until_secs.map_or("null".to_string(), |u| u.to_string()),
                gsl
            ),
            Command::Duty { session, fraction } => format!(
                r#"{{"op":"duty","session":{},"fraction":{}}}"#,
                json_str(session),
                json_f64(*fraction)
            ),
            Command::Cache {
                session,
                bytes_per_sat,
                policy,
            } => format!(
                r#"{{"op":"cache","session":{},"bytes_per_sat":{},"policy":{}}}"#,
                json_str(session),
                bytes_per_sat,
                match policy {
                    Some(name) => json_str(name),
                    None => "null".to_string(),
                }
            ),
            Command::Place { session, spec } => format!(
                r#"{{"op":"place","session":{},"spec":{}}}"#,
                json_str(session),
                match spec {
                    Some(name) => json_str(name),
                    None => "null".to_string(),
                }
            ),
            Command::Report { session } => {
                format!(r#"{{"op":"report","session":{}}}"#, json_str(session))
            }
        }
    }
}

/// Escape `s` as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Canonical float rendering: Rust's shortest round-trip `{:?}`, which is
/// deterministic and parses back to the identical bit pattern.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_u32s(xs: &[u32]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
    out
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Value::String(s)) => Ok(s.clone()),
        Some(other) => Err(format!("field {key:?} must be a string, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Value::Number(n)) => match n {
            serde_json::Number::UInt(u) => Ok(*u),
            serde_json::Number::Int(i) if *i >= 0 => Ok(*i as u64),
            serde_json::Number::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Ok(*f as u64),
            other => Err(format!(
                "field {key:?} must be a non-negative integer, got {other:?}"
            )),
        },
        Some(other) => Err(format!("field {key:?} must be a number, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Number(n)) => Ok(match n {
            serde_json::Number::UInt(u) => *u as f64,
            serde_json::Number::Int(i) => *i as f64,
            serde_json::Number::Float(f) => *f,
        }),
        Some(other) => Err(format!("field {key:?} must be a number, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(format!("field {key:?} must be a bool, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn u32s_field(v: &Value, key: &str) -> Result<Vec<u32>, String> {
    match v.get(key) {
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| match item {
                Value::Number(serde_json::Number::UInt(u)) => {
                    u32::try_from(*u).map_err(|_| format!("{u} out of range in {key:?}"))
                }
                Value::Number(serde_json::Number::Int(i)) if *i >= 0 => {
                    u32::try_from(*i).map_err(|_| format!("{i} out of range in {key:?}"))
                }
                other => Err(format!("field {key:?} must hold integers, got {other:?}")),
            })
            .collect(),
        Some(other) => Err(format!("field {key:?} must be an array, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: &Command) {
        let line = cmd.canonical();
        let back = Command::parse(&line).expect("canonical line parses");
        assert_eq!(&back, cmd, "round trip through {line}");
        // Canonical encoding is a fixed point after one round trip.
        assert_eq!(back.canonical(), line);
    }

    #[test]
    fn every_command_round_trips_canonically() {
        roundtrip(&Command::Ping);
        roundtrip(&Command::List);
        roundtrip(&Command::Metrics);
        roundtrip(&Command::Shutdown);
        roundtrip(&Command::Create(CreateArgs {
            session: "s-1".into(),
            ..CreateArgs::default()
        }));
        roundtrip(&Command::Drop {
            session: "s".into(),
        });
        roundtrip(&Command::Advance {
            session: "s".into(),
            secs: 120,
        });
        roundtrip(&Command::Fetch {
            session: "s".into(),
            lat: -25.966,
            lon: 32.583,
        });
        roundtrip(&Command::Traffic {
            session: "s".into(),
            requests: 10_000,
            epochs: 2,
            epoch_step_secs: 157,
        });
        roundtrip(&Command::Fault {
            session: "s".into(),
            sats: vec![1, 5, 9],
            from_secs: 300,
            until_secs: Some(600),
            gsl: false,
        });
        roundtrip(&Command::Fault {
            session: "s".into(),
            sats: vec![],
            from_secs: 0,
            until_secs: None,
            gsl: true,
        });
        roundtrip(&Command::Duty {
            session: "s".into(),
            fraction: 0.3,
        });
        roundtrip(&Command::Cache {
            session: "s".into(),
            bytes_per_sat: 1 << 30,
            policy: None,
        });
        roundtrip(&Command::Cache {
            session: "s".into(),
            bytes_per_sat: 1 << 30,
            policy: Some("s3fifo".into()),
        });
        roundtrip(&Command::Place {
            session: "s".into(),
            spec: None,
        });
        roundtrip(&Command::Place {
            session: "s".into(),
            spec: Some("perplane-2:budget-500:cap-64:coop".into()),
        });
        roundtrip(&Command::Report {
            session: "s".into(),
        });
    }

    #[test]
    fn parse_tolerates_client_key_order_and_defaults() {
        let cmd = Command::parse(r#"{ "session": "a", "op": "create", "seed": 7 }"#).unwrap();
        match cmd {
            Command::Create(a) => {
                assert_eq!(a.session, "a");
                assert_eq!(a.seed, 7);
                assert_eq!(a.constellation, "test");
                assert_eq!(a.streams, 4);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Command::parse("not json").is_err());
        assert!(Command::parse(r#"{"op":"warp"}"#).is_err());
        assert!(Command::parse(r#"{"op":"advance","session":"a"}"#).is_err());
        assert!(Command::parse(r#"{"op":"fetch","session":"a","lat":"x","lon":0}"#).is_err());
    }

    #[test]
    fn cache_policy_is_validated_and_normalized() {
        // Aliases normalize to the canonical policy name at parse time, so
        // journals always store the canonical spelling.
        let cmd = Command::parse(
            r#"{"op":"cache","session":"s","bytes_per_sat":1024,"policy":"w-tinylfu"}"#,
        )
        .unwrap();
        match cmd {
            Command::Cache { policy, .. } => assert_eq!(policy.as_deref(), Some("tinylfu")),
            other => panic!("wrong parse: {other:?}"),
        }
        // Absent and explicit-null both mean "keep current policy".
        for line in [
            r#"{"op":"cache","session":"s","bytes_per_sat":1024}"#,
            r#"{"op":"cache","session":"s","bytes_per_sat":1024,"policy":null}"#,
        ] {
            match Command::parse(line).unwrap() {
                Command::Cache { policy, .. } => assert_eq!(policy, None),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        assert!(Command::parse(
            r#"{"op":"cache","session":"s","bytes_per_sat":1024,"policy":"belady"}"#
        )
        .is_err());
    }

    #[test]
    fn place_spec_is_validated_and_normalized() {
        // Shorthand specs normalize to the canonical full name at parse
        // time, so journals always store the explicit spelling.
        let cmd =
            Command::parse(r#"{"op":"place","session":"s","spec":"perplane-2:coop"}"#).unwrap();
        match cmd {
            Command::Place { spec, .. } => {
                assert_eq!(spec.as_deref(), Some("perplane-2:budget-10000:cap-64:coop"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // "off", null, and absent all disable placement.
        for line in [
            r#"{"op":"place","session":"s","spec":"off"}"#,
            r#"{"op":"place","session":"s","spec":null}"#,
            r#"{"op":"place","session":"s"}"#,
        ] {
            match Command::parse(line).unwrap() {
                Command::Place { spec, .. } => assert_eq!(spec, None),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        assert!(Command::parse(r#"{"op":"place","session":"s","spec":"hotspot-7"}"#).is_err());
        assert!(Command::Place {
            session: "s".into(),
            spec: None
        }
        .is_mutating());
    }

    #[test]
    fn mutating_classification_matches_journal_policy() {
        assert!(!Command::Ping.is_mutating());
        assert!(!Command::List.is_mutating());
        assert!(!Command::Metrics.is_mutating());
        assert!(!Command::Shutdown.is_mutating());
        assert!(!Command::Report {
            session: "s".into()
        }
        .is_mutating());
        assert!(Command::Create(CreateArgs::default()).is_mutating());
        assert!(Command::Advance {
            session: "s".into(),
            secs: 1
        }
        .is_mutating());
    }
}
