//! spacecdn-serve: a long-lived scenario service with live mutation,
//! record/replay, and socket telemetry.
//!
//! The batch pipeline (`spacecdn-bench` experiments) answers "what does
//! scenario X look like"; this crate answers "what does scenario X look
//! like *right now*, and what happens if I break something while it
//! runs". A daemon owns live [`session::Session`]s — each wrapping the
//! unified `Scenario` retrieval surface plus the batched traffic engine —
//! and advances a continuous virtual clock driven by client commands
//! rather than a pre-materialized event list.
//!
//! Clients speak a line-delimited JSON protocol over TCP
//! ([`protocol::Command`]): create/list/drop sessions, stream retrieval
//! requests (single `fetch`es and batched `traffic` bursts), mutate the
//! scenario mid-flight (fault injection, duty cycling, cache resizing),
//! and pull telemetry snapshots without stopping the clock.
//!
//! Determinism contract: every mutating command is journaled
//! write-ahead ([`journal::Journal`]), and replaying the journal
//! ([`journal::replay`]) reproduces the session's final report
//! byte-for-byte — at any worker thread count. The journal is both the
//! crash-recovery story and a differential oracle for the live daemon.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod journal;
pub mod protocol;
pub mod server;
pub mod session;
pub mod signal;

pub use journal::{read_journal, replay, Journal, JournalEntry};
pub use protocol::{Command, CreateArgs};
pub use server::{Daemon, ServeConfig};
pub use session::Session;
