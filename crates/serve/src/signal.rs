//! Minimal std-only POSIX signal handling for graceful shutdown.
//!
//! The workspace forbids dependencies, so SIGINT/SIGTERM are hooked with
//! one `signal(2)` FFI call each, and the handler does the only
//! async-signal-safe thing it needs to: set an `AtomicBool`. The accept
//! loop and every connection thread poll the flag (their sockets run
//! with short timeouts), drain, flush journals, and exit 0 — the
//! graceful-shutdown contract `crates/serve/tests/process.rs` pins from
//! outside the process.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        /// POSIX `signal(2)`: the handler is passed by address, the
        /// previous disposition returned likewise.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe operation in here: a relaxed-or-stronger
    // atomic store.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers that request a graceful shutdown.
/// Idempotent; call once from `main` before serving.
#[allow(unsafe_code)]
pub fn install_handlers() {
    // SAFETY: `signal` is the POSIX entry point; `on_signal` is a valid
    // `extern "C" fn(i32)` for the life of the process, and the handler
    // body is async-signal-safe (one atomic store).
    unsafe {
        ffi::signal(SIGINT, on_signal as *const () as usize);
        ffi::signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// Has a shutdown been requested (by signal or by the `shutdown`
/// protocol command)?
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Request a graceful shutdown programmatically (the `shutdown` protocol
/// command shares the signal path).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Reset the flag — for tests that start several daemons in one process.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}
