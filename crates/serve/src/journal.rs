//! Write-ahead session journals and deterministic replay.
//!
//! Every mutating command is appended to its session's journal — one
//! canonical JSON line, stamped with the virtual clock *before* the
//! command executes — and flushed before execution starts. A daemon
//! killed mid-burst therefore leaves a journal whose replay includes the
//! interrupted command in full: replay is the authority on what the
//! session's state *should* be, which is exactly the differential-oracle
//! treatment the batch engines get from their slow references.
//!
//! Line format (schema `spacecdn-journal-v1`):
//!
//! ```text
//! {"v":1,"seq":0,"clock_ns":0,"cmd":{"op":"create",...}}
//! {"v":1,"seq":1,"clock_ns":0,"cmd":{"op":"traffic",...}}
//! ```
//!
//! `seq` is strictly increasing from 0; `clock_ns` is the session clock
//! at journaling time (informational — replay re-derives all state from
//! the commands). A trailing line without a terminating newline is
//! discarded as a torn write; any malformed *interior* line is an error.

use crate::protocol::Command;
use crate::session::Session;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// An open write-ahead journal for one session.
pub struct Journal {
    file: File,
    path: PathBuf,
    seq: u64,
}

impl Journal {
    /// Create (truncate) the journal for `session` under `dir`.
    pub fn create(dir: &Path, session: &str) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{session}.jsonl"));
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Journal { file, path, seq: 0 })
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append `cmd` (canonically encoded) stamped with `clock_ns`, flush
    /// to the OS, and return the entry's sequence number. Called *before*
    /// the command executes — the write-ahead contract.
    pub fn record(&mut self, clock_ns: u64, cmd: &Command) -> io::Result<u64> {
        let seq = self.seq;
        let line = format!(
            "{{\"v\":1,\"seq\":{},\"clock_ns\":{},\"cmd\":{}}}\n",
            seq,
            clock_ns,
            cmd.canonical()
        );
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.seq += 1;
        Ok(seq)
    }
}

/// One parsed journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Strictly increasing from 0.
    pub seq: u64,
    /// Session clock when the command was journaled.
    pub clock_ns: u64,
    /// The journaled command.
    pub cmd: Command,
}

/// Parse a journal file. A torn trailing line (no terminating newline,
/// from a killed-mid-write daemon) is dropped; anything else malformed is
/// an error.
pub fn read_journal(path: &Path) -> Result<Vec<JournalEntry>, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("read {}: {e}", path.display()))?;

    let mut entries = Vec::new();
    let complete = match text.rfind('\n') {
        Some(end) => &text[..=end],
        None => "",
    };
    for (i, line) in complete.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = parse_entry(line).map_err(|e| format!("journal line {}: {e}", i + 1))?;
        if entry.seq != entries.len() as u64 {
            return Err(format!(
                "journal line {}: seq {} out of order (expected {})",
                i + 1,
                entry.seq,
                entries.len()
            ));
        }
        entries.push(entry);
    }
    Ok(entries)
}

fn parse_entry(line: &str) -> Result<JournalEntry, String> {
    let value = serde_json::parse_value(line).map_err(|e| format!("bad json: {e:?}"))?;
    let num = |key: &str| -> Result<u64, String> {
        match value.get(key) {
            Some(serde_json::Value::Number(serde_json::Number::UInt(u))) => Ok(*u),
            other => Err(format!("field {key:?} must be a u64, got {other:?}")),
        }
    };
    if num("v")? != 1 {
        return Err("unsupported journal version".to_string());
    }
    let cmd_value = value.get("cmd").ok_or("missing field \"cmd\"")?;
    // Re-encode the cmd subtree compactly and run it through the one
    // command parser, so journal parsing can never drift from protocol
    // parsing.
    let cmd = Command::parse(&serde_json::to_string(cmd_value).map_err(|e| format!("{e:?}"))?)?;
    Ok(JournalEntry {
        seq: num("seq")?,
        clock_ns: num("clock_ns")?,
        cmd,
    })
}

/// Re-execute a session journal and return the final report line —
/// byte-identical to the `{"ok":true,"report":...}` response a live
/// `report` command on the original session would have produced (at any
/// worker thread count).
///
/// The journal must open with the session's `create`; a `drop` ends
/// replay early (the report then reflects the state at the drop).
pub fn replay(path: &Path) -> Result<String, String> {
    let entries = read_journal(path)?;
    let mut session: Option<Session> = None;
    for entry in entries {
        match entry.cmd {
            Command::Create(args) => {
                if session.is_some() {
                    return Err("duplicate create in journal".to_string());
                }
                session = Some(Session::create(args)?);
            }
            Command::Drop { .. } => break,
            cmd => {
                let s = session.as_mut().ok_or("journal command before create")?;
                match cmd {
                    Command::Advance { secs, .. } => s.advance(secs),
                    Command::Fetch { lat, lon, .. } => {
                        s.fetch(lat, lon);
                    }
                    Command::Traffic {
                        requests,
                        epochs,
                        epoch_step_secs,
                        ..
                    } => {
                        s.traffic(requests, epochs, epoch_step_secs);
                    }
                    Command::Fault {
                        sats,
                        from_secs,
                        until_secs,
                        gsl,
                        ..
                    } => s.fault(&sats, from_secs, until_secs, gsl),
                    Command::Duty { fraction, .. } => s.set_duty(fraction),
                    Command::Cache {
                        bytes_per_sat,
                        policy,
                        ..
                    } => {
                        s.set_cache_bytes(bytes_per_sat);
                        if let Some(kind) = policy
                            .as_deref()
                            .and_then(spacecdn_core::traffic::PolicyKind::parse)
                        {
                            s.set_cache_policy(kind);
                        }
                    }
                    Command::Place { spec, .. } => s.set_placement(
                        spec.as_deref()
                            .and_then(spacecdn_core::placement::PlacementSpec::parse),
                    ),
                    other => return Err(format!("non-mutating command in journal: {other:?}")),
                }
            }
        }
    }
    let mut session = session.ok_or("empty journal")?;
    Ok(format!(
        "{{\"ok\":true,\"report\":{}}}",
        session.report_json()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CreateArgs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spacecdn-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_cmds() -> Vec<Command> {
        vec![
            Command::Create(CreateArgs {
                session: "j".into(),
                seed: 11,
                catalog: 200,
                streams: 2,
                ..CreateArgs::default()
            }),
            Command::Traffic {
                session: "j".into(),
                requests: 300,
                epochs: 2,
                epoch_step_secs: 60,
            },
            Command::Fault {
                session: "j".into(),
                sats: vec![1, 2, 3],
                from_secs: 90,
                until_secs: None,
                gsl: false,
            },
            Command::Advance {
                session: "j".into(),
                secs: 30,
            },
            Command::Fetch {
                session: "j".into(),
                lat: -25.97,
                lon: 32.58,
            },
        ]
    }

    #[test]
    fn journal_round_trips_and_replays_deterministically() {
        let dir = tmp_dir("roundtrip");
        let mut journal = Journal::create(&dir, "j").unwrap();
        for (i, cmd) in sample_cmds().iter().enumerate() {
            let seq = journal.record(i as u64 * 1_000, cmd).unwrap();
            assert_eq!(seq, i as u64);
        }
        let path = journal.path().to_path_buf();
        drop(journal);

        let entries = read_journal(&path).unwrap();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].cmd.session(), Some("j"));

        let a = replay(&path).unwrap();
        let b = replay(&path).unwrap();
        assert_eq!(a, b, "replay must be deterministic");
        assert!(a.starts_with("{\"ok\":true,\"report\":{\"session\":\"j\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn place_op_replays_byte_identically() {
        // A journaled `place` mutation must reproduce, on replay, the
        // exact report bytes the live session produced — including the
        // placement-sensitive decision digest.
        let args = CreateArgs {
            session: "p".into(),
            seed: 11,
            catalog: 200,
            streams: 2,
            ..CreateArgs::default()
        };
        let spec = "perplane-2:budget-400:cap-8:coop";

        let dir = tmp_dir("place");
        let mut journal = Journal::create(&dir, "p").unwrap();
        let cmds = [
            Command::Create(args.clone()),
            Command::Traffic {
                session: "p".into(),
                requests: 300,
                epochs: 1,
                epoch_step_secs: 60,
            },
            Command::Place {
                session: "p".into(),
                spec: Some(spec.into()),
            },
            Command::Traffic {
                session: "p".into(),
                requests: 300,
                epochs: 1,
                epoch_step_secs: 60,
            },
        ];
        for (i, cmd) in cmds.iter().enumerate() {
            journal.record(i as u64, cmd).unwrap();
        }
        let path = journal.path().to_path_buf();
        drop(journal);

        let mut live = Session::create(args).unwrap();
        live.traffic(300, 1, 60);
        live.set_placement(spacecdn_core::placement::PlacementSpec::parse(spec));
        live.traffic(300, 1, 60);
        let live_line = format!("{{\"ok\":true,\"report\":{}}}", live.report_json());

        assert_eq!(replay(&path).unwrap(), live_line);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_discarded() {
        let dir = tmp_dir("torn");
        let mut journal = Journal::create(&dir, "t").unwrap();
        let cmds = sample_cmds();
        journal.record(0, &cmds[0]).unwrap();
        journal.record(1, &cmds[1]).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        // Simulate a torn write: append half a line with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"v\":1,\"seq\":2,\"clock_ns\":5,\"cmd\":{\"op\":\"adv")
            .unwrap();
        drop(f);

        let entries = read_journal(&path).unwrap();
        assert_eq!(entries.len(), 2, "torn tail dropped, prefix kept");
        assert!(replay(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("c.jsonl");
        std::fs::write(
            &path,
            "garbage\n{\"v\":1,\"seq\":0,\"clock_ns\":0,\"cmd\":{\"op\":\"ping\"}}\n",
        )
        .unwrap();
        assert!(read_journal(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
