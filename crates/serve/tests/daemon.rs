//! In-process daemon integration tests: scripted client sessions over
//! real TCP sockets, and the headline determinism contract — replaying a
//! session journal reproduces the live `report` response byte-for-byte
//! at every worker thread count.

use spacecdn_serve::server::{Daemon, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Serializes tests: they share the process-wide engine thread override
/// and each runs its own daemon.
static LOCK: Mutex<()> = Mutex::new(());

struct TestDaemon {
    addr: SocketAddr,
    journal_dir: PathBuf,
    handle: JoinHandle<std::io::Result<()>>,
}

fn start_daemon(tag: &str) -> TestDaemon {
    let journal_dir =
        std::env::temp_dir().join(format!("spacecdn-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        journal_dir: journal_dir.clone(),
        port_file: None,
    };
    let daemon = Daemon::bind(&cfg).expect("bind");
    let addr = daemon.local_addr().expect("local_addr");
    let handle = std::thread::spawn(move || daemon.run());
    TestDaemon {
        addr,
        journal_dir,
        handle,
    }
}

impl TestDaemon {
    fn client(&self) -> Client {
        Client::connect(self.addr)
    }

    fn journal(&self, session: &str) -> PathBuf {
        self.journal_dir.join(format!("{session}.jsonl"))
    }

    /// Ask the daemon to shut down and wait for a clean exit.
    fn shutdown(self) {
        let mut c = self.client();
        let resp = c.send("{\"op\":\"shutdown\"}");
        assert!(resp.contains("\"shutting_down\":true"), "{resp}");
        drop(c);
        self.handle.join().expect("join").expect("daemon exits Ok");
        let _ = std::fs::remove_dir_all(&self.journal_dir);
    }
}

struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// One request line out, one response line back.
    fn send(&mut self, line: &str) -> String {
        let stream = self.reader.get_mut();
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        assert!(
            response.ends_with('\n'),
            "server closed mid-response: {response:?}"
        );
        response.trim_end().to_string()
    }

    fn ok(&mut self, line: &str) -> String {
        let resp = self.send(line);
        assert!(resp.starts_with("{\"ok\":true"), "command {line} -> {resp}");
        resp
    }
}

/// The scripted session the replay contract is pinned against: create,
/// advance, fetches, bursts, fault injection, duty cycling, cache resize.
fn run_scripted_session(c: &mut Client, name: &str) -> String {
    c.ok(&format!(
        "{{\"op\":\"create\",\"session\":\"{name}\",\"seed\":77,\"constellation\":\"test\",\
         \"streams\":2,\"catalog\":400,\"cache_mb\":4,\"copies_per_plane\":1}}"
    ));
    c.ok(&format!(
        "{{\"op\":\"advance\",\"session\":\"{name}\",\"secs\":30}}"
    ));
    c.ok(&format!(
        "{{\"op\":\"fetch\",\"session\":\"{name}\",\"lat\":-25.97,\"lon\":32.58}}"
    ));
    c.ok(&format!(
        "{{\"op\":\"traffic\",\"session\":\"{name}\",\"requests\":2000,\"epochs\":2,\"epoch_step_secs\":60}}"
    ));
    c.ok(&format!(
        "{{\"op\":\"fault\",\"session\":\"{name}\",\"sats\":[3,4,5],\"from_secs\":200,\"gsl\":false}}"
    ));
    c.ok(&format!(
        "{{\"op\":\"duty\",\"session\":\"{name}\",\"fraction\":0.7}}"
    ));
    c.ok(&format!(
        "{{\"op\":\"traffic\",\"session\":\"{name}\",\"requests\":2000,\"epochs\":2,\"epoch_step_secs\":60}}"
    ));
    c.ok(&format!(
        "{{\"op\":\"cache\",\"session\":\"{name}\",\"bytes_per_sat\":2097152}}"
    ));
    c.ok(&format!(
        "{{\"op\":\"fetch\",\"session\":\"{name}\",\"lat\":50.11,\"lon\":8.68}}"
    ));
    c.ok(&format!("{{\"op\":\"report\",\"session\":\"{name}\"}}"))
}

#[test]
fn scripted_session_replays_byte_identically_at_every_thread_count() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let daemon = start_daemon("replay");
    let mut c = daemon.client();
    let live_report = run_scripted_session(&mut c, "demo");
    let journal = daemon.journal("demo");
    assert!(journal.is_file(), "journal written at {journal:?}");

    // The ISSUE.md acceptance bar: byte-identical replay at 1/2/5/8
    // worker threads, regardless of what the live daemon used.
    for threads in [1usize, 2, 5, 8] {
        spacecdn_engine::set_thread_override(Some(threads));
        let replayed = spacecdn_serve::journal::replay(&journal)
            .unwrap_or_else(|e| panic!("replay at {threads} threads: {e}"));
        assert_eq!(
            replayed, live_report,
            "replay diverged from live report at {threads} threads"
        );
    }
    spacecdn_engine::set_thread_override(None);
    daemon.shutdown();
}

#[test]
fn live_cache_policy_mutation_journals_and_replays_byte_identically() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let daemon = start_daemon("policy");
    let mut c = daemon.client();
    c.ok(
        "{\"op\":\"create\",\"session\":\"pol\",\"seed\":9,\"constellation\":\"test\",\
         \"streams\":2,\"catalog\":400,\"cache_mb\":1,\"copies_per_plane\":1}",
    );
    c.ok("{\"op\":\"traffic\",\"session\":\"pol\",\"requests\":2000,\"epochs\":2,\"epoch_step_secs\":60}");
    // Swap the eviction policy mid-session (alias spelling on the wire;
    // the journal must store the canonical name) and burst again so the
    // new policy shapes the report.
    c.ok("{\"op\":\"cache\",\"session\":\"pol\",\"bytes_per_sat\":1048576,\"policy\":\"s3-fifo\"}");
    c.ok("{\"op\":\"traffic\",\"session\":\"pol\",\"requests\":2000,\"epochs\":2,\"epoch_step_secs\":60}");
    c.ok("{\"op\":\"cache\",\"session\":\"pol\",\"bytes_per_sat\":1048576,\"policy\":\"tinylfu\"}");
    c.ok("{\"op\":\"traffic\",\"session\":\"pol\",\"requests\":2000,\"epochs\":2,\"epoch_step_secs\":60}");
    let live_report = c.ok("{\"op\":\"report\",\"session\":\"pol\"}");

    let journal = daemon.journal("pol");
    let journal_text = std::fs::read_to_string(&journal).expect("journal readable");
    assert!(
        journal_text.contains("\"policy\":\"s3fifo\"")
            && journal_text.contains("\"policy\":\"tinylfu\""),
        "journal stores canonical policy names: {journal_text}"
    );

    for threads in [1usize, 2, 5, 8] {
        spacecdn_engine::set_thread_override(Some(threads));
        let replayed = spacecdn_serve::journal::replay(&journal)
            .unwrap_or_else(|e| panic!("replay at {threads} threads: {e}"));
        assert_eq!(
            replayed, live_report,
            "policy-mutation replay diverged from live report at {threads} threads"
        );
    }
    spacecdn_engine::set_thread_override(None);
    daemon.shutdown();
}

#[test]
fn concurrent_clients_on_distinct_sessions_stay_isolated() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let daemon = start_daemon("concurrent");

    // Two clients drive two sessions concurrently; determinism per
    // session must be unaffected by interleaving on the daemon.
    let addr = daemon.addr;
    let workers: Vec<_> = ["alpha", "beta"]
        .into_iter()
        .map(|name| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                run_scripted_session(&mut c, name)
            })
        })
        .collect();
    let reports: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Same script, same seed => identical traffic/fetch tallies; only the
    // session name differs.
    assert_eq!(
        reports[0].replace("\"session\":\"alpha\"", "\"session\":\"beta\""),
        reports[1],
        "interleaved sessions interfered with each other"
    );

    // And each journal replays to its own live report.
    for (name, live) in ["alpha", "beta"].into_iter().zip(&reports) {
        let replayed = spacecdn_serve::journal::replay(&daemon.journal(name)).unwrap();
        assert_eq!(&replayed, live);
    }

    let mut c = daemon.client();
    let list = c.ok("{\"op\":\"list\"}");
    assert!(list.contains("\"session\":\"alpha\"") && list.contains("\"session\":\"beta\""));
    daemon.shutdown();
}

#[test]
fn protocol_errors_do_not_wedge_the_connection() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let daemon = start_daemon("errors");
    let mut c = daemon.client();

    assert!(c.send("not json at all").starts_with("{\"ok\":false"));
    assert!(c
        .send("{\"op\":\"advance\",\"session\":\"ghost\",\"secs\":5}")
        .starts_with("{\"ok\":false"));
    assert!(c
        .send("{\"op\":\"create\",\"session\":\"bad name!\"}")
        .starts_with("{\"ok\":false"));

    // Connection still healthy afterwards.
    c.ok("{\"op\":\"ping\"}");
    c.ok("{\"op\":\"create\",\"session\":\"ok1\",\"catalog\":200,\"streams\":2}");
    assert!(c
        .send("{\"op\":\"create\",\"session\":\"ok1\"}")
        .contains("already exists"));

    // Metrics come back as an embedded spacecdn-metrics-v1 document.
    let metrics = c.ok("{\"op\":\"metrics\"}");
    assert!(metrics.contains("spacecdn-metrics-v1"));

    // Dropping frees the name for reuse.
    c.ok("{\"op\":\"drop\",\"session\":\"ok1\"}");
    c.ok("{\"op\":\"create\",\"session\":\"ok1\",\"catalog\":200,\"streams\":2}");
    daemon.shutdown();
}
