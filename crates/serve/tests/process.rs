//! Out-of-process daemon tests: the compiled `spacecdn-serve` binary is
//! spawned for real, discovered through `--port-file`, and killed with
//! actual POSIX signals — pinning the graceful-shutdown and
//! crash-durability contracts from outside the process.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_spacecdn-serve")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spacecdn-proc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the daemon on an ephemeral port and wait for the port file.
fn spawn_daemon(dir: &Path) -> (Child, TcpStream) {
    let port_file = dir.join("port");
    let child = Command::new(bin())
        .args([
            "--listen",
            "127.0.0.1:0",
            "--journal-dir",
            dir.join("journals").to_str().unwrap(),
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn spacecdn-serve");

    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(Instant::now() < deadline, "port file never appeared");
        std::thread::sleep(Duration::from_millis(20));
    };
    let stream = TcpStream::connect(&addr).expect("connect to daemon");
    (child, stream)
}

fn send(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn journal_path(dir: &Path, session: &str) -> PathBuf {
    dir.join("journals").join(format!("{session}.jsonl"))
}

#[test]
fn sigterm_drains_exits_zero_and_journal_replays_to_live_report() {
    let dir = tmp_dir("sigterm");
    let (mut child, mut stream) = spawn_daemon(&dir);

    let resp = send(
        &mut stream,
        "{\"op\":\"create\",\"session\":\"s\",\"seed\":5,\"streams\":2,\"catalog\":300,\"cache_mb\":4}",
    );
    assert!(resp.starts_with("{\"ok\":true"), "{resp}");
    let resp = send(
        &mut stream,
        "{\"op\":\"traffic\",\"session\":\"s\",\"requests\":1500,\"epochs\":2,\"epoch_step_secs\":60}",
    );
    assert!(resp.starts_with("{\"ok\":true"), "{resp}");
    let live_report = send(&mut stream, "{\"op\":\"report\",\"session\":\"s\"}");
    assert!(
        live_report.starts_with("{\"ok\":true,\"report\":"),
        "{live_report}"
    );

    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success());
    let exit = child.wait().expect("wait for daemon");
    assert!(exit.success(), "SIGTERM must exit 0, got {exit:?}");

    // `--replay` on the binary reproduces the live report byte-for-byte.
    let out = Command::new(bin())
        .args(["--replay", journal_path(&dir, "s").to_str().unwrap()])
        .output()
        .expect("run replay");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim_end(), live_report);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_command_drains_and_exits_zero() {
    let dir = tmp_dir("shutdown");
    let (mut child, mut stream) = spawn_daemon(&dir);
    let resp = send(
        &mut stream,
        "{\"op\":\"create\",\"session\":\"q\",\"streams\":2,\"catalog\":200}",
    );
    assert!(resp.starts_with("{\"ok\":true"), "{resp}");
    let resp = send(&mut stream, "{\"op\":\"shutdown\"}");
    assert!(resp.contains("\"shutting_down\":true"), "{resp}");
    let exit = child.wait().expect("wait for daemon");
    assert!(exit.success(), "shutdown command must exit 0, got {exit:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_burst_leaves_a_replayable_journal() {
    let dir = tmp_dir("sigkill");
    let (mut child, mut stream) = spawn_daemon(&dir);

    let resp = send(
        &mut stream,
        "{\"op\":\"create\",\"session\":\"k\",\"seed\":9,\"streams\":2,\"catalog\":300,\"cache_mb\":4}",
    );
    assert!(resp.starts_with("{\"ok\":true"), "{resp}");
    let resp = send(
        &mut stream,
        "{\"op\":\"traffic\",\"session\":\"k\",\"requests\":1000,\"epochs\":1,\"epoch_step_secs\":60}",
    );
    assert!(resp.starts_with("{\"ok\":true"), "{resp}");

    // Fire a large burst and SIGKILL the daemon while it is (very likely
    // still) executing. The command was journaled write-ahead, so the
    // journal must replay cleanly whether or not execution finished —
    // and must contain the interrupted burst.
    stream
        .write_all(
            b"{\"op\":\"traffic\",\"session\":\"k\",\"requests\":600000,\"epochs\":4,\"epoch_step_secs\":60}\n",
        )
        .unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(120));
    child.kill().expect("SIGKILL daemon");
    let _ = child.wait();

    let journal = journal_path(&dir, "k");
    let entries = spacecdn_serve::journal::read_journal(&journal).expect("journal parses");
    assert_eq!(
        entries.len(),
        3,
        "create + first burst + interrupted burst must all be journaled"
    );
    let replayed = spacecdn_serve::journal::replay(&journal).expect("journal replays");
    assert!(
        replayed.starts_with("{\"ok\":true,\"report\":"),
        "{replayed}"
    );
    // The replayed report includes the burst the daemon never finished.
    assert!(
        replayed.contains("\"requests\":601000"),
        "interrupted burst missing from replay: {replayed}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
