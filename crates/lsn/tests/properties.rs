//! Property-based tests for ISL topology and routing invariants.

use proptest::prelude::*;
use spacecdn_geo::{DetRng, SimTime};
use spacecdn_lsn::{bfs_nearest, dijkstra, dijkstra_distances, hop_distances, FaultPlan, IslGraph};
use spacecdn_orbit::shell::ShellConfig;
use spacecdn_orbit::{Constellation, SatIndex};

fn arb_shell() -> impl Strategy<Value = ShellConfig> {
    (3u32..9, 3u32..9, 0.0f64..1.0).prop_map(|(planes, sats, _)| ShellConfig {
        altitude_km: 550.0,
        inclination_deg: 53.0,
        plane_count: planes,
        sats_per_plane: sats,
        phase_factor: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_degree_and_symmetry(shell in arb_shell(), t in 0u64..20_000) {
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::from_secs(t), &FaultPlan::none());
        for i in 0..g.len() {
            let sat = SatIndex(i as u32);
            let n = g.neighbors(sat);
            // Degree ≤ 4; tiny shells may deduplicate wrap neighbours.
            prop_assert!(n.len() <= 4);
            for e in n {
                prop_assert!(
                    g.neighbors(e.to).iter().any(|b| b.to == sat),
                    "asymmetric edge"
                );
            }
        }
    }

    #[test]
    fn dijkstra_triangle_inequality(shell in arb_shell(), t in 0u64..20_000) {
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::from_secs(t), &FaultPlan::none());
        let n = g.len() as u32;
        let a = SatIndex(0);
        let b = SatIndex(n / 3);
        let m = SatIndex(2 * n / 3);
        let ab = dijkstra(&g, a, b).unwrap().length.0;
        let am = dijkstra(&g, a, m).unwrap().length.0;
        let mb = dijkstra(&g, m, b).unwrap().length.0;
        prop_assert!(ab <= am + mb + 1e-6);
    }

    #[test]
    fn dijkstra_distances_match_point_queries(shell in arb_shell(), t in 0u64..20_000) {
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::from_secs(t), &FaultPlan::none());
        let src = SatIndex(1);
        let all = dijkstra_distances(&g, src);
        for i in (0..g.len()).step_by(5) {
            let dst = SatIndex(i as u32);
            let p = dijkstra(&g, src, dst).unwrap();
            prop_assert!((all[i].0 - p.length.0).abs() < 1e-6,
                "single-source {} vs point {}", all[i].0, p.length.0);
        }
    }

    #[test]
    fn bfs_hops_lower_bound_dijkstra_hops(shell in arb_shell(), t in 0u64..20_000) {
        // The km-optimal route can never use fewer hops than the BFS
        // minimum.
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::from_secs(t), &FaultPlan::none());
        let src = SatIndex(0);
        let hops = hop_distances(&g, src);
        let km = dijkstra_distances(&g, src);
        for i in 0..g.len() {
            prop_assert!(km[i].1 >= hops[i], "sat {i}: route {} < bfs {}", km[i].1, hops[i]);
        }
    }

    #[test]
    fn random_faults_never_panic_and_paths_remain_valid(
        shell in arb_shell(),
        seed in 0u64..1000,
        frac in 0.0f64..0.5,
    ) {
        let c = Constellation::new(shell);
        let mut rng = DetRng::new(seed, "prop-faults");
        let mut faults = FaultPlan::none();
        faults.fail_random_sats(c.len(), frac, &mut rng);
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        // Any path that exists only visits alive satellites.
        let alive: Vec<SatIndex> = (0..g.len() as u32)
            .map(SatIndex)
            .filter(|&s| g.is_alive(s))
            .collect();
        if alive.len() >= 2 {
            if let Some(p) = dijkstra(&g, alive[0], alive[alive.len() - 1]) {
                for s in &p.sats {
                    prop_assert!(g.is_alive(*s));
                }
            }
        }
    }

    #[test]
    fn bfs_nearest_respects_budget(shell in arb_shell(), budget in 0u32..6) {
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        let src = SatIndex(0);
        let target = SatIndex((g.len() - 1) as u32);
        if let Some(p) = bfs_nearest(&g, src, budget, |s| s == target) {
            prop_assert!(p.hop_count() as u32 <= budget);
        } else {
            // Unreachable within budget ⇒ the true hop distance exceeds it.
            let hops = hop_distances(&g, src)[target.as_usize()];
            prop_assert!(hops > budget);
        }
    }
}
