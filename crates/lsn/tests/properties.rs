//! Property-based tests for ISL topology and routing invariants.

use proptest::prelude::*;
use spacecdn_geo::{DetRng, Geodetic, SimDuration, SimTime};
use spacecdn_lsn::{
    bfs_nearest, dijkstra, dijkstra_distances, hop_distances, FaultEvent, FaultPlan, FaultSchedule,
    IslEdge, IslGraph, SourceTables,
};
use spacecdn_orbit::shell::ShellConfig;
use spacecdn_orbit::{Constellation, SatIndex};

fn arb_shell() -> impl Strategy<Value = ShellConfig> {
    (3u32..9, 3u32..9, 0.0f64..1.0).prop_map(|(planes, sats, _)| ShellConfig {
        altitude_km: 550.0,
        inclination_deg: 53.0,
        plane_count: planes,
        sats_per_plane: sats,
        phase_factor: 0,
    })
}

/// Shells with a non-trivial Walker phasing, so the seam probe actually
/// differs from the interior one.
fn arb_phased_shell() -> impl Strategy<Value = ShellConfig> {
    (3u32..9, 3u32..9, 0u32..3).prop_map(|(planes, sats, f)| ShellConfig {
        altitude_km: 550.0,
        inclination_deg: 53.0,
        plane_count: planes,
        sats_per_plane: sats,
        phase_factor: f.min(planes - 1),
    })
}

/// Reference +Grid builder: the pre-CSR nested `Vec<Vec<IslEdge>>`
/// adjacency, transcribed from the original data plane (per-satellite edge
/// vectors, `min_by` slot probing). The CSR build must reproduce this
/// edge-for-edge — same neighbour order, bit-identical lengths.
fn reference_adjacency(
    constellation: &Constellation,
    t: SimTime,
    faults: &FaultPlan,
) -> Vec<Vec<IslEdge>> {
    let n = constellation.len();
    let positions = constellation.snapshot_ecef(t);
    let mut adjacency = vec![Vec::with_capacity(4); n];
    let mut alive = vec![true; n];

    let plane_count = constellation.config().plane_count as i64;
    let nearest_slot_offset = |from_plane: i64| -> i64 {
        let probe = constellation.sat_at(from_plane, 0);
        (0..constellation.config().sats_per_plane as i64)
            .min_by(|&a, &b| {
                let da = positions[probe.as_usize()]
                    .distance(positions[constellation.sat_at(from_plane + 1, a).as_usize()]);
                let db = positions[probe.as_usize()]
                    .distance(positions[constellation.sat_at(from_plane + 1, b).as_usize()]);
                da.0.partial_cmp(&db.0).expect("distances are finite")
            })
            .unwrap_or(0)
    };
    let interior_offset = nearest_slot_offset(0);
    let seam_offset = if plane_count > 1 {
        nearest_slot_offset(plane_count - 1)
    } else {
        interior_offset
    };
    let offset_from = |p: i64| -> i64 {
        if p.rem_euclid(plane_count) == plane_count - 1 {
            seam_offset
        } else {
            interior_offset
        }
    };

    for sat in constellation.sat_indices() {
        if faults.sat_failed(sat) {
            alive[sat.as_usize()] = false;
        }
    }
    for sat in constellation.sat_indices() {
        if !alive[sat.as_usize()] {
            continue;
        }
        let plane = constellation.plane_of(sat) as i64;
        let slot = constellation.slot_of(sat) as i64;
        let neighbours = [
            constellation.sat_at(plane, slot - 1),
            constellation.sat_at(plane, slot + 1),
            constellation.sat_at(plane - 1, slot - offset_from(plane - 1)),
            constellation.sat_at(plane + 1, slot + offset_from(plane)),
        ];
        for nb in neighbours {
            if nb == sat || !alive[nb.as_usize()] || faults.link_failed(sat, nb) {
                continue;
            }
            let length = positions[sat.as_usize()].distance(positions[nb.as_usize()]);
            adjacency[sat.as_usize()].push(IslEdge { to: nb, length });
        }
    }
    adjacency
}

/// Reference Dijkstra over the nested adjacency: the original f64
/// `partial_cmp` min-heap with index tie-breaks. Returns the node chain
/// and the exact accumulated length for path-identity regression.
fn reference_dijkstra(
    adjacency: &[Vec<IslEdge>],
    src: SatIndex,
    dst: SatIndex,
) -> Option<(Vec<SatIndex>, f64)> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Item {
        cost: f64,
        sat: u32,
    }
    impl Eq for Item {}
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .cost
                .partial_cmp(&self.cost)
                .expect("finite")
                .then_with(|| other.sat.cmp(&self.sat))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = adjacency.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src.as_usize()] = 0.0;
    heap.push(Item {
        cost: 0.0,
        sat: src.0,
    });
    while let Some(Item { cost, sat }) = heap.pop() {
        if cost > dist[sat as usize] {
            continue;
        }
        if sat == dst.0 {
            break;
        }
        for edge in &adjacency[sat as usize] {
            let next = cost + edge.length.0;
            if next < dist[edge.to.as_usize()] {
                dist[edge.to.as_usize()] = next;
                prev[edge.to.as_usize()] = sat;
                heap.push(Item {
                    cost: next,
                    sat: edge.to.0,
                });
            }
        }
    }
    if dist[dst.as_usize()].is_infinite() {
        return None;
    }
    let mut sats = vec![dst];
    let mut cur = dst.0;
    while prev[cur as usize] != u32::MAX {
        cur = prev[cur as usize];
        sats.push(SatIndex(cur));
    }
    sats.reverse();
    Some((sats, dist[dst.as_usize()]))
}

/// Reference BFS hop levels over the nested adjacency (plain queue).
fn reference_hops(adjacency: &[Vec<IslEdge>], src: SatIndex) -> Vec<u32> {
    use std::collections::VecDeque;
    let mut out = vec![u32::MAX; adjacency.len()];
    let mut queue = VecDeque::new();
    out[src.as_usize()] = 0;
    queue.push_back(src);
    while let Some(sat) = queue.pop_front() {
        let level = out[sat.as_usize()];
        for edge in &adjacency[sat.as_usize()] {
            if out[edge.to.as_usize()] == u32::MAX {
                out[edge.to.as_usize()] = level + 1;
                queue.push_back(edge.to);
            }
        }
    }
    out
}

/// A random fault plan failing both satellites and a few specific links.
fn random_faults(constellation: &Constellation, seed: u64, frac: f64) -> FaultPlan {
    let mut rng = DetRng::new(seed, "prop-csr-faults");
    let mut faults = FaultPlan::none();
    faults.fail_random_sats(constellation.len(), frac, &mut rng);
    let n = constellation.len() as u32;
    for _ in 0..4 {
        let a = SatIndex(rng.index(n as usize) as u32);
        let b = SatIndex((a.0 + 1) % n);
        faults.fail_link(a, b);
    }
    faults
}

/// [`random_faults`] plus a few GSL kills, so deltas also move the
/// servable mask (and with it the spatial index membership).
fn random_faults_with_gsl(constellation: &Constellation, seed: u64, frac: f64) -> FaultPlan {
    let mut faults = random_faults(constellation, seed, frac);
    let mut rng = DetRng::new(seed ^ 0x9e37_79b9, "prop-delta-gsl");
    for _ in 0..3 {
        faults.fail_gsl(SatIndex(rng.index(constellation.len()) as u32));
    }
    faults
}

/// Assert two graphs are identical in every observable, to the bit:
/// instant, CSR adjacency (order and length mantissas), masks, positions.
fn assert_graphs_identical(got: &IslGraph, want: &IslGraph) {
    assert_eq!(got.time(), want.time());
    assert_eq!(got.len(), want.len());
    let (go, gn, gl) = got.csr();
    let (wo, wn, wl) = want.csr();
    assert_eq!(go, wo, "CSR offsets differ");
    assert_eq!(gn, wn, "CSR neighbours differ");
    assert_eq!(gl.len(), wl.len());
    for (k, (a, b)) in gl.iter().zip(wl).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "length bits at edge {k}");
    }
    for i in 0..got.len() as u32 {
        let s = SatIndex(i);
        assert_eq!(got.is_alive(s), want.is_alive(s), "alive mask at {i}");
        assert_eq!(got.gsl_alive(s), want.gsl_alive(s), "servable mask at {i}");
        let (gp, wp) = (got.position(s), want.position(s));
        assert_eq!(gp.x.to_bits(), wp.x.to_bits(), "position x bits at {i}");
        assert_eq!(gp.y.to_bits(), wp.y.to_bits(), "position y bits at {i}");
        assert_eq!(gp.z.to_bits(), wp.z.to_bits(), "position z bits at {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apply_delta_matches_fresh_build(
        shell in arb_phased_shell(),
        t1 in 0u64..20_000,
        dt1 in 0u64..600,
        dt2 in 0u64..600,
        seed in 0u64..1000,
        frac1 in 0.0f64..0.3,
        frac2 in 0.0f64..0.3,
    ) {
        // Random schedule × random step sequence: a patched graph must be
        // edge-for-edge, bit-for-bit the freshly built one — including a
        // dt of zero (same-instant fault step) and a step *back* to the
        // first plan (heals mixed with fails), chained so the second patch
        // runs on top of the first patch's output.
        let c = Constellation::new(shell);
        let p1 = random_faults_with_gsl(&c, seed, frac1);
        let p2 = random_faults_with_gsl(&c, seed + 17, frac2);
        let time1 = SimTime::from_secs(t1);
        let time2 = SimTime::from_secs(t1 + dt1);
        let time3 = SimTime::from_secs(t1 + dt1 + dt2);
        let g1 = IslGraph::build(&c, time1, &p1);
        let (g2, _) = g1.apply_delta(&c, time2, &p2);
        assert_graphs_identical(&g2, &IslGraph::build(&c, time2, &p2));
        let (g3, _) = g2.apply_delta(&c, time3, &p1);
        assert_graphs_identical(&g3, &IslGraph::build(&c, time3, &p1));
    }

    #[test]
    fn patched_nearest_alive_matches_fresh_build(
        shell in arb_phased_shell(),
        t0 in 0u64..20_000,
        step in 1u64..15,
        seed in 0u64..1000,
        frac in 0.0f64..0.3,
    ) {
        // Walk a dense sub-15s timeline on one patched lineage so spatial
        // bound inflation accumulates across steps; nearest-satellite
        // answers must stay exactly the fresh build's the whole way.
        let c = Constellation::new(shell);
        let p = random_faults_with_gsl(&c, seed, frac);
        let mut g = IslGraph::build(&c, SimTime::from_secs(t0), &p);
        let probes = [
            Geodetic::ground(48.1, 11.6),
            Geodetic::ground(-33.9, 151.2),
            Geodetic::ground(0.0, -78.5),
            Geodetic::ground(64.1, -21.9),
        ];
        for k in 1..=8u64 {
            let t = SimTime::from_secs(t0 + k * step);
            let (next, _) = g.apply_delta(&c, t, &p);
            let fresh = IslGraph::build(&c, t, &p);
            for ground in probes {
                prop_assert_eq!(
                    next.nearest_alive(ground),
                    fresh.nearest_alive(ground),
                    "nearest diverges at step {} for {:?}", k, ground
                );
            }
            g = next;
        }
    }

    #[test]
    fn repaired_tables_match_fresh_compute(
        shell in arb_phased_shell(),
        t in 0u64..20_000,
        seed in 0u64..1000,
        frac in 0.0f64..0.25,
        kills in 1usize..4,
    ) {
        // Same-instant pure-removal step over a warmed cache: the sparse
        // dynamic-SSSP repair (or its threshold fallback) must reproduce a
        // fresh graph's tables bit-for-bit — km mantissas, route hop
        // counts and BFS levels.
        let c = Constellation::new(shell);
        let p1 = random_faults(&c, seed, frac);
        let mut p2 = p1.clone();
        let mut rng = DetRng::new(seed, "prop-repair-kills");
        for _ in 0..kills {
            p2.fail_sat(SatIndex(rng.index(c.len()) as u32));
        }
        let a = SatIndex(rng.index(c.len()) as u32);
        let b = SatIndex((a.0 + 1) % c.len() as u32);
        p2.fail_link(a, b);
        let time = SimTime::from_secs(t);
        let g1 = IslGraph::build(&c, time, &p1);
        let sources: Vec<SatIndex> = (0..c.len() as u32).step_by(3).map(SatIndex).collect();
        g1.warm_routing_cache(&sources);
        let (g2, _) = g1.apply_delta(&c, time, &p2);
        let fresh = IslGraph::build(&c, time, &p2);
        assert_graphs_identical(&g2, &fresh);
        for &src in &sources {
            let got = g2.routing_tables(src);
            let want = SourceTables::compute(&fresh, src);
            for (k, (a, b)) in got.km.iter().zip(&want.km).enumerate() {
                prop_assert_eq!(
                    a.0.to_bits(), b.0.to_bits(),
                    "km bits diverge for src {:?} dst {}", src, k
                );
                prop_assert_eq!(a.1, b.1, "route hops diverge for src {:?} dst {}", src, k);
            }
            prop_assert_eq!(&got.hops, &want.hops, "BFS levels diverge for src {:?}", src);
        }
    }

    #[test]
    fn grid_degree_and_symmetry(shell in arb_shell(), t in 0u64..20_000) {
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::from_secs(t), &FaultPlan::none());
        for i in 0..g.len() {
            let sat = SatIndex(i as u32);
            let n = g.neighbors(sat);
            // Degree ≤ 4; tiny shells may deduplicate wrap neighbours.
            prop_assert!(n.len() <= 4);
            for e in n {
                prop_assert!(
                    g.neighbors(e.to).iter().any(|b| b.to == sat),
                    "asymmetric edge"
                );
            }
        }
    }

    #[test]
    fn dijkstra_triangle_inequality(shell in arb_shell(), t in 0u64..20_000) {
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::from_secs(t), &FaultPlan::none());
        let n = g.len() as u32;
        let a = SatIndex(0);
        let b = SatIndex(n / 3);
        let m = SatIndex(2 * n / 3);
        let ab = dijkstra(&g, a, b).unwrap().length.0;
        let am = dijkstra(&g, a, m).unwrap().length.0;
        let mb = dijkstra(&g, m, b).unwrap().length.0;
        prop_assert!(ab <= am + mb + 1e-6);
    }

    #[test]
    fn dijkstra_distances_match_point_queries(shell in arb_shell(), t in 0u64..20_000) {
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::from_secs(t), &FaultPlan::none());
        let src = SatIndex(1);
        let all = dijkstra_distances(&g, src);
        for i in (0..g.len()).step_by(5) {
            let dst = SatIndex(i as u32);
            let p = dijkstra(&g, src, dst).unwrap();
            prop_assert!((all[i].0 - p.length.0).abs() < 1e-6,
                "single-source {} vs point {}", all[i].0, p.length.0);
        }
    }

    #[test]
    fn bfs_hops_lower_bound_dijkstra_hops(shell in arb_shell(), t in 0u64..20_000) {
        // The km-optimal route can never use fewer hops than the BFS
        // minimum.
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::from_secs(t), &FaultPlan::none());
        let src = SatIndex(0);
        let hops = hop_distances(&g, src);
        let km = dijkstra_distances(&g, src);
        for i in 0..g.len() {
            prop_assert!(km[i].1 >= hops[i], "sat {i}: route {} < bfs {}", km[i].1, hops[i]);
        }
    }

    #[test]
    fn random_faults_never_panic_and_paths_remain_valid(
        shell in arb_shell(),
        seed in 0u64..1000,
        frac in 0.0f64..0.5,
    ) {
        let c = Constellation::new(shell);
        let mut rng = DetRng::new(seed, "prop-faults");
        let mut faults = FaultPlan::none();
        faults.fail_random_sats(c.len(), frac, &mut rng);
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        // Any path that exists only visits alive satellites.
        let alive: Vec<SatIndex> = (0..g.len() as u32)
            .map(SatIndex)
            .filter(|&s| g.is_alive(s))
            .collect();
        if alive.len() >= 2 {
            if let Some(p) = dijkstra(&g, alive[0], alive[alive.len() - 1]) {
                for s in &p.sats {
                    prop_assert!(g.is_alive(*s));
                }
            }
        }
    }

    #[test]
    fn csr_adjacency_matches_nested_reference(
        shell in arb_phased_shell(),
        t in 0u64..20_000,
        seed in 0u64..1000,
        frac in 0.0f64..0.4,
    ) {
        // The CSR build must be edge-for-edge identical to the nested
        // reference builder: same neighbour order, bit-identical lengths —
        // on pristine and randomly faulted topologies alike.
        let c = Constellation::new(shell);
        let faults = random_faults(&c, seed, frac);
        let time = SimTime::from_secs(t);
        let g = IslGraph::build(&c, time, &faults);
        let reference = reference_adjacency(&c, time, &faults);
        prop_assert_eq!(reference.len(), g.len());
        for (i, reference_row) in reference.iter().enumerate() {
            let sat = SatIndex(i as u32);
            let row: Vec<IslEdge> = g.neighbors(sat).iter().collect();
            prop_assert_eq!(
                row.len(), reference_row.len(),
                "degree mismatch at sat {}", i
            );
            for (k, (got, want)) in row.iter().zip(reference_row).enumerate() {
                prop_assert_eq!(got.to, want.to, "neighbour order at sat {} slot {}", i, k);
                prop_assert_eq!(
                    got.length.0.to_bits(), want.length.0.to_bits(),
                    "length bits at sat {} slot {}", i, k
                );
            }
            // The raw CSR row views the same edges.
            let (nbrs, lens) = g.neighbor_row(sat.0);
            prop_assert_eq!(nbrs.len(), reference_row.len());
            for (k, want) in reference_row.iter().enumerate() {
                prop_assert_eq!(nbrs[k], want.to.0);
                prop_assert_eq!(lens[k].to_bits(), want.length.0.to_bits());
            }
        }
    }

    #[test]
    fn routing_unchanged_vs_reference_on_faulted_graph(
        shell in arb_phased_shell(),
        seed in 0u64..1000,
        frac in 0.0f64..0.35,
    ) {
        // Regression: the CSR data plane's Dijkstra (bit-pattern heap) and
        // BFS (frontier kernel) must return exactly the paths and hop
        // levels the original nested implementation did.
        let c = Constellation::new(shell);
        let faults = random_faults(&c, seed, frac);
        let g = IslGraph::build(&c, SimTime::from_secs(431), &faults);
        let reference = reference_adjacency(&c, SimTime::from_secs(431), &faults);

        let n = g.len() as u32;
        let sources = [SatIndex(0), SatIndex(n / 2), SatIndex(n - 1)];
        for &src in &sources {
            if !g.is_alive(src) {
                continue;
            }
            prop_assert_eq!(
                hop_distances(&g, src),
                reference_hops(&reference, src),
                "BFS levels diverge from {:?}", src
            );
            for &dst in &sources {
                if !g.is_alive(dst) || src == dst {
                    continue;
                }
                let got = dijkstra(&g, src, dst);
                let want = reference_dijkstra(&reference, src, dst);
                match (got, want) {
                    (None, None) => {}
                    (Some(p), Some((sats, km))) => {
                        prop_assert_eq!(&p.sats, &sats, "path diverges {:?}→{:?}", src, dst);
                        prop_assert_eq!(
                            p.length.0.to_bits(), km.to_bits(),
                            "length bits diverge {:?}→{:?}", src, dst
                        );
                    }
                    (got, want) => prop_assert!(
                        false,
                        "reachability diverges {:?}→{:?}: got {:?} want {:?}",
                        src, dst, got.map(|p| p.sats), want.map(|w| w.0)
                    ),
                }
            }
        }
    }

    #[test]
    fn fault_plan_digest_insertion_order_insensitive(seed in 0u64..1000, n in 1usize..40) {
        // The snapshot pool keys on the digest, so two plans with the same
        // content must digest identically no matter how they were built —
        // and a clone must digest like its original.
        let mut rng = DetRng::new(seed, "prop-plan-digest");
        let members: Vec<(u8, u32, u32)> = (0..n)
            .map(|_| (rng.index(3) as u8, rng.index(200) as u32, rng.index(200) as u32))
            .collect();
        let build = |order: &[usize]| {
            let mut p = FaultPlan::none();
            for &i in order {
                let (kind, a, b) = members[i];
                match kind {
                    0 => { p.fail_sat(SatIndex(a)); }
                    1 => { p.fail_link(SatIndex(a), SatIndex(b)); }
                    _ => { p.fail_gsl(SatIndex(a)); }
                }
            }
            p
        };
        let forward: Vec<usize> = (0..n).collect();
        let shuffled = rng.sample_indices(n, n);
        let a = build(&forward);
        let b = build(&shuffled);
        prop_assert_eq!(a.digest(), b.digest(), "insertion order changed the digest");
        prop_assert_eq!(a.digest(), a.clone().digest(), "clone changed the digest");
        // Content sensitivity: adding one distinct member must change it.
        let mut c = a.clone();
        c.fail_gsl(SatIndex(100_000));
        prop_assert!(a.digest() != c.digest(), "digest blind to extra GSL fault");
    }

    #[test]
    fn schedule_digest_event_order_insensitive(seed in 0u64..1000, n in 1usize..24) {
        let mut rng = DetRng::new(seed, "prop-sched-digest");
        let events: Vec<FaultEvent> = (0..n)
            .map(|_| {
                let from = SimTime(rng.index(10_000) as u64);
                match rng.index(3) {
                    0 => FaultEvent::SatOutage {
                        sat: SatIndex(rng.index(300) as u32),
                        from,
                        until: if rng.chance(0.5) {
                            Some(SimTime(from.0 + 1 + rng.index(10_000) as u64))
                        } else {
                            None
                        },
                    },
                    1 => FaultEvent::GslOutage {
                        sat: SatIndex(rng.index(300) as u32),
                        from,
                        until: Some(SimTime(from.0 + 1 + rng.index(10_000) as u64)),
                    },
                    _ => FaultEvent::IslFlap {
                        a: SatIndex(rng.index(300) as u32),
                        b: SatIndex(rng.index(300) as u32),
                        from,
                        up: SimDuration(1 + rng.index(5000) as u64),
                        down: SimDuration(1 + rng.index(5000) as u64),
                    },
                }
            })
            .collect();
        let build = |order: &[usize]| {
            let mut s = FaultSchedule::none();
            for &i in order {
                s.push(events[i]);
            }
            s
        };
        let forward: Vec<usize> = (0..n).collect();
        let shuffled = rng.sample_indices(n, n);
        let a = build(&forward);
        let b = build(&shuffled);
        prop_assert_eq!(a.digest(), b.digest(), "event order changed the digest");
        prop_assert_eq!(a.digest(), a.clone().digest(), "clone changed the digest");
        // Dropping any one event must change the digest (events are
        // distinct with overwhelming probability; tolerate duplicates by
        // only asserting when the dropped event is unique).
        let dropped = &events[0];
        if events.iter().filter(|e| *e == dropped).count() == 1 {
            let without: Vec<usize> = (1..n).collect();
            prop_assert!(a.digest() != build(&without).digest(), "digest blind to an event");
        }
        // And the lowered plan at any instant is order-insensitive too.
        let t = SimTime(rng.index(30_000) as u64);
        prop_assert_eq!(a.plan_at(t).digest(), b.plan_at(t).digest());
    }

    #[test]
    fn flap_lowering_matches_phase_arithmetic(
        from in 0u64..5000,
        up in 1u64..4000,
        down in 1u64..4000,
        t in 0u64..40_000,
    ) {
        // An ISL flap is pure modular arithmetic: up-dwell first from the
        // phase origin, then down-dwell, repeating. The lowered plan must
        // agree with the closed form at every instant.
        let (a, b) = (SatIndex(3), SatIndex(8));
        let mut s = FaultSchedule::none();
        s.isl_flap(a, b, SimTime(from), SimDuration(up), SimDuration(down));
        let expect_down = t >= from && (t - from) % (up + down) >= up;
        prop_assert_eq!(
            s.plan_at(SimTime(t)).link_failed(a, b),
            expect_down,
            "flap phase arithmetic diverges at t={}", t
        );
    }

    #[test]
    fn bfs_nearest_respects_budget(shell in arb_shell(), budget in 0u32..6) {
        let c = Constellation::new(shell);
        let g = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        let src = SatIndex(0);
        let target = SatIndex((g.len() - 1) as u32);
        if let Some(p) = bfs_nearest(&g, src, budget, |s| s == target) {
            prop_assert!(p.hop_count() as u32 <= budget);
        } else {
            // Unreachable within budget ⇒ the true hop distance exceeds it.
            let hops = hop_distances(&g, src)[target.as_usize()];
            prop_assert!(hops > budget);
        }
    }
}
