//! Epoch-scoped routing cache.
//!
//! Campaign code asks the same snapshot for full single-source routing
//! tables over and over: every synthetic RTT measurement from a city runs
//! a Dijkstra from that city's overhead satellite, and every retrieval
//! trial additionally wants BFS hop levels from the same source. Within
//! one snapshot the graph never changes, so those tables are pure
//! functions of (snapshot, source) — the cache memoizes them behind an
//! `RwLock` so concurrent experiment tasks share a single computation per
//! source satellite.
//!
//! The cache is owned by (and shares the lifetime of) one [`IslGraph`];
//! rebuilding the snapshot for the next epoch starts from an empty cache,
//! which is what keeps entries trivially consistent — there is no
//! invalidation, keys live exactly as long as the topology they describe.
//!
//! `std::sync::RwLock` is used rather than `parking_lot` because the
//! build environment is offline (no crates.io access; see `vendor/`) and
//! the lock is held only for a `HashMap` probe or insert — the uncontended
//! fast path is a compare-exchange either way.

use crate::routing::{dijkstra_distances, hop_distances};
use crate::topology::IslGraph;
use spacecdn_orbit::SatIndex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Memoized single-source routing tables for one source satellite in one
/// snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceTables {
    /// Per-destination `(kilometres, hop count)` of the cheapest-by-distance
    /// path, exactly as [`dijkstra_distances`] returns it.
    pub km: Vec<(f64, u32)>,
    /// Per-destination BFS hop levels, exactly as [`hop_distances`]
    /// returns them.
    pub hops: Vec<u32>,
}

impl SourceTables {
    /// Compute the tables directly (the uncached path).
    pub fn compute(graph: &IslGraph, src: SatIndex) -> Self {
        SourceTables {
            km: dijkstra_distances(graph, src),
            hops: hop_distances(graph, src),
        }
    }
}

/// Per-snapshot memo of [`SourceTables`] keyed by source satellite.
#[derive(Default)]
pub struct RoutingCache {
    tables: RwLock<HashMap<u32, Arc<SourceTables>>>,
}

impl RoutingCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tables for `src`, computing and memoizing them on first use.
    ///
    /// Two tasks racing on an uncached source may both compute the tables;
    /// the first insert wins and the duplicate is dropped. The result is a
    /// pure function of the graph, so either copy is identical — the race
    /// costs duplicated work once, never divergent answers.
    pub fn tables_for(&self, graph: &IslGraph, src: SatIndex) -> Arc<SourceTables> {
        if let Some(hit) = self.tables.read().expect("cache lock poisoned").get(&src.0) {
            return Arc::clone(hit);
        }
        let computed = Arc::new(SourceTables::compute(graph, src));
        let mut writer = self.tables.write().expect("cache lock poisoned");
        Arc::clone(writer.entry(src.0).or_insert(computed))
    }

    /// Number of source satellites with memoized tables.
    pub fn cached_sources(&self) -> usize {
        self.tables.read().expect("cache lock poisoned").len()
    }
}

impl fmt::Debug for RoutingCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutingCache")
            .field("cached_sources", &self.cached_sources())
            .finish()
    }
}

/// In-process cache kill switch: 0 = follow the environment, 1 = forced
/// off, 2 = forced on.
static CACHE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Environment default, read once: `SPACECDN_NO_ROUTING_CACHE=1` disables
/// memoization (used to measure the pre-cache baseline).
fn env_cache_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var("SPACECDN_NO_ROUTING_CACHE").is_ok_and(|v| v != "0" && !v.is_empty())
    })
}

/// Force the routing cache on or off for this process, overriding
/// `SPACECDN_NO_ROUTING_CACHE`. `None` restores environment behaviour.
/// Benchmarks use this to time cached vs uncached in a single run.
pub fn set_routing_cache_override(enabled: Option<bool>) {
    let code = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    CACHE_OVERRIDE.store(code, Ordering::SeqCst);
}

/// Is table memoization active? Routing *answers* are identical either
/// way; only the amount of recomputation differs.
pub fn routing_cache_enabled() -> bool {
    match CACHE_OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => !env_cache_disabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use spacecdn_geo::SimTime;
    use spacecdn_orbit::shell::shells;
    use spacecdn_orbit::Constellation;

    fn graph() -> IslGraph {
        let c = Constellation::new(shells::starlink_shell1());
        IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none())
    }

    #[test]
    fn cached_tables_match_direct_computation() {
        let g = graph();
        let cache = RoutingCache::new();
        let src = SatIndex(123);
        let cached = cache.tables_for(&g, src);
        let direct = SourceTables::compute(&g, src);
        assert_eq!(*cached, direct);
    }

    #[test]
    fn second_lookup_shares_the_allocation() {
        let g = graph();
        let cache = RoutingCache::new();
        let a = cache.tables_for(&g, SatIndex(7));
        let b = cache.tables_for(&g, SatIndex(7));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.cached_sources(), 1);
    }

    #[test]
    fn distinct_sources_get_distinct_entries() {
        let g = graph();
        let cache = RoutingCache::new();
        cache.tables_for(&g, SatIndex(1));
        cache.tables_for(&g, SatIndex(2));
        assert_eq!(cache.cached_sources(), 2);
    }

    #[test]
    fn override_toggles_enablement() {
        set_routing_cache_override(Some(false));
        assert!(!routing_cache_enabled());
        set_routing_cache_override(Some(true));
        assert!(routing_cache_enabled());
        set_routing_cache_override(None);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let g = graph();
        let cache = RoutingCache::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.tables_for(&g, SatIndex(55))))
                .collect();
            let tables: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for t in &tables[1..] {
                assert_eq!(**t, *tables[0]);
            }
        });
        assert_eq!(cache.cached_sources(), 1);
    }
}
