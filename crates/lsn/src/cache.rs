//! Epoch-scoped routing cache.
//!
//! Campaign code asks the same snapshot for full single-source routing
//! tables over and over: every synthetic RTT measurement from a city runs
//! a Dijkstra from that city's overhead satellite, and every retrieval
//! trial additionally wants BFS hop levels from the same source. Within
//! one snapshot the graph never changes, so those tables are pure
//! functions of (snapshot, source) — the cache memoizes them behind an
//! `RwLock` so concurrent experiment tasks share a single computation per
//! source satellite.
//!
//! The cache is owned by (and shares the lifetime of) one [`IslGraph`];
//! rebuilding the snapshot for the next epoch starts from an empty cache,
//! which is what keeps entries trivially consistent — there is no
//! invalidation, keys live exactly as long as the topology they describe.
//!
//! `std::sync::RwLock` is used rather than `parking_lot` because the
//! build environment is offline (no crates.io access; see `vendor/`) and
//! the lock is held only for a `HashMap` probe or insert — the uncontended
//! fast path is a compare-exchange either way.

use crate::routing::{dijkstra_distances, hop_distances, source_tables_many};
use crate::topology::IslGraph;
use spacecdn_orbit::SatIndex;
use spacecdn_telemetry::LazyCounter;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Cache-wide registry counters, aggregated across every `RoutingCache`
/// instance in the process. Racy: two tasks racing on an uncached source
/// may both miss, so the hit/miss split depends on scheduling.
static CACHE_HIT: LazyCounter = LazyCounter::racy("lsn.routing_cache.hit");
static CACHE_MISS: LazyCounter = LazyCounter::racy("lsn.routing_cache.miss");
static CACHE_REVERSE_HIT: LazyCounter = LazyCounter::racy("lsn.routing_cache.reverse_hit");
static CACHE_WARMED: LazyCounter = LazyCounter::racy("lsn.routing_cache.warmed_sources");
/// Misses answered with a carried hop table from the previous epoch's
/// cache (the BFS half skipped; only the Dijkstra half recomputed). Racy
/// for the same reason as the hit/miss split.
static CACHE_HOP_SEED: LazyCounter = LazyCounter::racy("lsn.routing_cache.hop_seed_hits");

/// Memoized single-source routing tables for one source satellite in one
/// snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceTables {
    /// Per-destination `(kilometres, hop count)` of the cheapest-by-distance
    /// path, exactly as [`dijkstra_distances`] returns it.
    pub km: Vec<(f64, u32)>,
    /// Per-destination BFS hop levels, exactly as [`hop_distances`]
    /// returns them.
    pub hops: Vec<u32>,
}

impl SourceTables {
    /// Compute the tables directly (the uncached path).
    pub fn compute(graph: &IslGraph, src: SatIndex) -> Self {
        SourceTables {
            km: dijkstra_distances(graph, src),
            hops: hop_distances(graph, src),
        }
    }
}

/// Per-snapshot memo of [`SourceTables`] keyed by source satellite.
#[derive(Default)]
pub struct RoutingCache {
    tables: RwLock<HashMap<u32, Arc<SourceTables>>>,
    /// Hop tables inherited from the previous epoch's cache by
    /// [`IslGraph::apply_delta`] when the step changed edge *lengths* but
    /// not the adjacency structure. BFS levels depend only on structure,
    /// so a miss with a seed recomputes just the Dijkstra half and clones
    /// the seed's hop levels — bit-identical to a fresh BFS by definition.
    hop_seeds: HashMap<u32, Arc<SourceTables>>,
    /// Pairwise hop queries answered from the *destination*'s table (the
    /// +Grid is undirected, so BFS levels read the same both ways).
    reverse_hits: AtomicU64,
}

impl RoutingCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache seeded by delta advancement: `tables` are entries carried or
    /// repaired whole (both halves exact for the new snapshot), `hop_seeds`
    /// are entries whose *hop* half alone is still exact (see
    /// [`Self::hop_seeds`]).
    pub(crate) fn carried(
        tables: HashMap<u32, Arc<SourceTables>>,
        hop_seeds: HashMap<u32, Arc<SourceTables>>,
    ) -> Self {
        RoutingCache {
            tables: RwLock::new(tables),
            hop_seeds,
            ..Self::default()
        }
    }

    /// The memoized tables, for carrying into a successor cache.
    pub(crate) fn tables_snapshot(&self) -> HashMap<u32, Arc<SourceTables>> {
        self.tables.read().expect("cache lock poisoned").clone()
    }

    /// Every table whose *hop* half is valid for any snapshot with this
    /// cache's adjacency structure: memoized tables plus still-unconsumed
    /// seeds (so a chain of structure-preserving steps keeps carrying hop
    /// tables even across epochs where nothing was queried).
    pub(crate) fn hop_seed_snapshot(&self) -> HashMap<u32, Arc<SourceTables>> {
        let mut seeds = self.hop_seeds.clone();
        for (src, t) in self.tables.read().expect("cache lock poisoned").iter() {
            seeds.insert(*src, Arc::clone(t));
        }
        seeds
    }

    /// The tables for `src`, computing and memoizing them on first use.
    ///
    /// Two tasks racing on an uncached source may both compute the tables;
    /// the first insert wins and the duplicate is dropped. The result is a
    /// pure function of the graph, so either copy is identical — the race
    /// costs duplicated work once, never divergent answers.
    pub fn tables_for(&self, graph: &IslGraph, src: SatIndex) -> Arc<SourceTables> {
        if let Some(hit) = self.tables.read().expect("cache lock poisoned").get(&src.0) {
            CACHE_HIT.incr();
            return Arc::clone(hit);
        }
        CACHE_MISS.incr();
        let computed = Arc::new(self.compute_with_seed(graph, src));
        let mut writer = self.tables.write().expect("cache lock poisoned");
        Arc::clone(writer.entry(src.0).or_insert(computed))
    }

    /// [`SourceTables::compute`], except the BFS half is cloned from a
    /// carried hop seed when one exists (see [`Self::hop_seeds`]).
    fn compute_with_seed(&self, graph: &IslGraph, src: SatIndex) -> SourceTables {
        match self.hop_seeds.get(&src.0) {
            Some(seed) => {
                CACHE_HOP_SEED.incr();
                SourceTables {
                    km: dijkstra_distances(graph, src),
                    hops: seed.hops.clone(),
                }
            }
            None => SourceTables::compute(graph, src),
        }
    }

    /// Minimum hop count between `from` and `to`, exploiting
    /// undirectedness: BFS hop levels are integers and exactly symmetric on
    /// an undirected graph, so a table memoized for *either* endpoint
    /// answers the query — tables for `s` also serve queries *to* `s`, and
    /// pairwise sweeps stop computing both directions. Only when neither
    /// endpoint has a table yet is one computed (and memoized, for `from`).
    ///
    /// Kilometre tables get no such reverse path: a float path sum
    /// accumulated in the opposite edge order can differ in the final bits,
    /// and campaign output must stay byte-identical.
    pub fn hops_between(&self, graph: &IslGraph, from: SatIndex, to: SatIndex) -> u32 {
        {
            let reader = self.tables.read().expect("cache lock poisoned");
            if let Some(t) = reader.get(&from.0) {
                CACHE_HIT.incr();
                return t.hops[to.as_usize()];
            }
            if let Some(t) = reader.get(&to.0) {
                self.reverse_hits.fetch_add(1, Ordering::Relaxed);
                CACHE_REVERSE_HIT.incr();
                return t.hops[from.as_usize()];
            }
        }
        self.tables_for(graph, from).hops[to.as_usize()]
    }

    /// How many pairwise hop queries were served from the reverse table.
    pub fn reverse_hits(&self) -> u64 {
        self.reverse_hits.load(Ordering::Relaxed)
    }

    /// Compute and memoize tables for every not-yet-cached source in
    /// `sources`, batched through [`source_tables_many`] so one scratch
    /// working set serves the whole sweep and the map's write lock is taken
    /// once. Tables are bitwise identical to on-demand computation, so
    /// warming can never change an answer.
    pub fn warm(&self, graph: &IslGraph, sources: &[SatIndex]) {
        let mut seen = HashSet::new();
        let missing: Vec<SatIndex> = {
            let reader = self.tables.read().expect("cache lock poisoned");
            sources
                .iter()
                .copied()
                .filter(|s| seen.insert(s.0) && !reader.contains_key(&s.0))
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        CACHE_WARMED.add(missing.len() as u64);
        let (seeded, unseeded): (Vec<SatIndex>, Vec<SatIndex>) = missing
            .iter()
            .copied()
            .partition(|s| self.hop_seeds.contains_key(&s.0));
        let computed = source_tables_many(graph, &unseeded);
        let mut writer = self.tables.write().expect("cache lock poisoned");
        for (src, (km, hops)) in unseeded.iter().zip(computed) {
            writer
                .entry(src.0)
                .or_insert_with(|| Arc::new(SourceTables { km, hops }));
        }
        for src in seeded {
            let tables = self.compute_with_seed(graph, src);
            writer.entry(src.0).or_insert_with(|| Arc::new(tables));
        }
    }

    /// Number of source satellites with memoized tables.
    pub fn cached_sources(&self) -> usize {
        self.tables.read().expect("cache lock poisoned").len()
    }
}

impl fmt::Debug for RoutingCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutingCache")
            .field("cached_sources", &self.cached_sources())
            .finish()
    }
}

/// In-process cache kill switch: 0 = follow the environment, 1 = forced
/// off, 2 = forced on.
static CACHE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Environment default, read once: `SPACECDN_NO_ROUTING_CACHE=1` disables
/// memoization (used to measure the pre-cache baseline).
fn env_cache_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var("SPACECDN_NO_ROUTING_CACHE").is_ok_and(|v| v != "0" && !v.is_empty())
    })
}

/// Force the routing cache on or off for this process, overriding
/// `SPACECDN_NO_ROUTING_CACHE`. `None` restores environment behaviour.
/// Benchmarks use this to time cached vs uncached in a single run.
pub fn set_routing_cache_override(enabled: Option<bool>) {
    let code = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    CACHE_OVERRIDE.store(code, Ordering::SeqCst);
}

/// Is table memoization active? Routing *answers* are identical either
/// way; only the amount of recomputation differs.
pub fn routing_cache_enabled() -> bool {
    match CACHE_OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => !env_cache_disabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use spacecdn_geo::SimTime;
    use spacecdn_orbit::shell::shells;
    use spacecdn_orbit::Constellation;

    fn graph() -> IslGraph {
        let c = Constellation::new(shells::starlink_shell1());
        IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none())
    }

    #[test]
    fn cached_tables_match_direct_computation() {
        let g = graph();
        let cache = RoutingCache::new();
        let src = SatIndex(123);
        let cached = cache.tables_for(&g, src);
        let direct = SourceTables::compute(&g, src);
        assert_eq!(*cached, direct);
    }

    #[test]
    fn second_lookup_shares_the_allocation() {
        let g = graph();
        let cache = RoutingCache::new();
        let a = cache.tables_for(&g, SatIndex(7));
        let b = cache.tables_for(&g, SatIndex(7));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.cached_sources(), 1);
    }

    #[test]
    fn distinct_sources_get_distinct_entries() {
        let g = graph();
        let cache = RoutingCache::new();
        cache.tables_for(&g, SatIndex(1));
        cache.tables_for(&g, SatIndex(2));
        assert_eq!(cache.cached_sources(), 2);
    }

    #[test]
    fn override_toggles_enablement() {
        set_routing_cache_override(Some(false));
        assert!(!routing_cache_enabled());
        set_routing_cache_override(Some(true));
        assert!(routing_cache_enabled());
        set_routing_cache_override(None);
    }

    #[test]
    fn hops_between_serves_reverse_queries_from_one_table() {
        let g = graph();
        let cache = RoutingCache::new();
        let (a, b) = (SatIndex(10), SatIndex(900));
        let forward = cache.hops_between(&g, a, b);
        assert_eq!(cache.cached_sources(), 1);
        assert_eq!(cache.reverse_hits(), 0);
        // The opposite direction reads a's table backwards: no new entry.
        let reverse = cache.hops_between(&g, b, a);
        assert_eq!(forward, reverse);
        assert_eq!(cache.cached_sources(), 1);
        assert_eq!(cache.reverse_hits(), 1);
        assert_eq!(forward, hop_distances(&g, a)[b.as_usize()]);
    }

    #[test]
    fn hops_between_symmetric_on_faulted_graph() {
        let c = Constellation::new(shells::starlink_shell1());
        let mut faults = FaultPlan::none();
        for s in [4u32, 90, 91, 700, 1200] {
            faults.fail_sat(SatIndex(s));
        }
        let g = IslGraph::build(&c, SimTime::from_secs(311), &faults);
        for (a, b) in [(0u32, 1583u32), (5, 710), (89, 92), (700, 701)] {
            let fwd = RoutingCache::new().hops_between(&g, SatIndex(a), SatIndex(b));
            let rev = RoutingCache::new().hops_between(&g, SatIndex(b), SatIndex(a));
            assert_eq!(fwd, rev, "hop distance {a}<->{b} asymmetric");
        }
    }

    #[test]
    fn warm_matches_on_demand_tables() {
        let c = Constellation::new(shells::starlink_shell1());
        let mut faults = FaultPlan::none();
        faults.fail_sat(SatIndex(123));
        let g = IslGraph::build(&c, SimTime::from_secs(59), &faults);
        let cache = RoutingCache::new();
        // Duplicates and already-cached sources are both skipped.
        cache.tables_for(&g, SatIndex(7));
        let sources = [SatIndex(7), SatIndex(42), SatIndex(42), SatIndex(1000)];
        cache.warm(&g, &sources);
        assert_eq!(cache.cached_sources(), 3);
        for src in [SatIndex(7), SatIndex(42), SatIndex(1000)] {
            assert_eq!(*cache.tables_for(&g, src), SourceTables::compute(&g, src));
        }
        // Re-warming is a no-op.
        cache.warm(&g, &sources);
        assert_eq!(cache.cached_sources(), 3);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let g = graph();
        let cache = RoutingCache::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.tables_for(&g, SatIndex(55))))
                .collect();
            let tables: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for t in &tables[1..] {
                assert_eq!(**t, *tables[0]);
            }
        });
        assert_eq!(cache.cached_sources(), 1);
    }
}
