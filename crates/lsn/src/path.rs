//! End-to-end Starlink paths.
//!
//! A Starlink packet's life (§2): user terminal → overhead satellite →
//! zero or more ISLs → satellite over a gateway → gateway → PoP, where it
//! finally gets a public IP and meets the terrestrial Internet. This module
//! composes the pieces from [`crate::topology`], [`crate::routing`] and
//! [`crate::access`] into one RTT, and provides the SpaceCDN fetch RTT used
//! throughout §4's experiments.

use crate::access::AccessModel;
use crate::routing::{dijkstra, IslPath};
use crate::topology::IslGraph;
use spacecdn_geo::{DetRng, Geodetic, Km, Latency};
use spacecdn_orbit::SatIndex;

/// A fully resolved user → PoP path through the constellation.
#[derive(Debug, Clone)]
pub struct StarlinkPath {
    /// Satellite serving the user terminal.
    pub up_sat: SatIndex,
    /// Satellite over the gateway serving the PoP.
    pub down_sat: SatIndex,
    /// Slant range from user to `up_sat`.
    pub up_slant: Km,
    /// Slant range from the gateway to `down_sat`.
    pub down_slant: Km,
    /// The ISL chain between `up_sat` and `down_sat` (single satellite when
    /// they coincide — a pure bent pipe).
    pub isl: IslPath,
    /// Full round-trip time user ↔ PoP.
    pub rtt: Latency,
}

impl StarlinkPath {
    /// ISL hop count of the space segment.
    pub fn isl_hops(&self) -> usize {
        self.isl.hop_count()
    }
}

/// Resolve the user → PoP path at the snapshot's instant.
///
/// `gateway` is the ground position of the PoP's gateway antenna park (we
/// model it co-located with the PoP city; real deployments put gateways
/// within a few hundred kilometres, which changes the RTT by < 2 ms).
/// When `rng` is provided, user-link scheduling jitter is sampled; otherwise
/// the median is used. Returns `None` when faults leave the user or gateway
/// without a reachable satellite, or partition the grid between them.
pub fn starlink_rtt_to_pop(
    graph: &IslGraph,
    access: &AccessModel,
    user: Geodetic,
    gateway: Geodetic,
    mut rng: Option<&mut DetRng>,
) -> Option<StarlinkPath> {
    let (up_sat, up_slant) = graph.nearest_alive(user)?;
    let (down_sat, down_slant) = graph.nearest_alive(gateway)?;
    let isl = dijkstra(graph, up_sat, down_sat)?;

    let user_link = match rng.as_mut() {
        Some(r) => access.user_link_rtt_sample(up_slant, r),
        None => access.user_link_rtt_median(up_slant),
    };
    let rtt = user_link
        + isl.propagation.round_trip()
        + access.isl_processing(isl.hop_count())
        + access.ground_leg_rtt(down_slant);

    Some(StarlinkPath {
        up_sat,
        down_sat,
        up_slant,
        down_slant,
        isl,
        rtt,
    })
}

/// RTT of a SpaceCDN fetch (§4): user → overhead satellite → ISL chain to
/// the caching satellite and back. No gateway, no PoP — that is the entire
/// point of the design.
///
/// `isl` is the path from the user's overhead satellite to the satellite
/// holding the object (single-element when the overhead satellite itself
/// caches it).
pub fn spacecdn_fetch_rtt(
    access: &AccessModel,
    up_slant: Km,
    isl: &IslPath,
    mut rng: Option<&mut DetRng>,
) -> Latency {
    let user_link = match rng.as_mut() {
        Some(r) => access.user_link_rtt_sample(up_slant, r),
        None => access.user_link_rtt_median(up_slant),
    };
    user_link + isl.propagation.round_trip() + access.isl_processing(isl.hop_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::routing::bfs_nearest;
    use spacecdn_geo::SimTime;
    use spacecdn_orbit::shell::shells;
    use spacecdn_orbit::Constellation;

    fn setup() -> (Constellation, IslGraph, AccessModel) {
        let c = Constellation::new(shells::starlink_shell1());
        let g = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        (c, g, AccessModel::default())
    }

    #[test]
    fn pop_local_path_in_table1_band() {
        // Madrid user, Madrid PoP: Table 1 says ~33 ms.
        let (_, g, access) = setup();
        let madrid = Geodetic::ground(40.42, -3.70);
        let p = starlink_rtt_to_pop(&g, &access, madrid, madrid, None).unwrap();
        assert!(p.isl_hops() <= 3, "local path shouldn't need many ISLs");
        assert!((28.0..48.0).contains(&p.rtt.ms()), "got {}", p.rtt);
    }

    #[test]
    fn maputo_to_frankfurt_pure_isl_band() {
        // Pure ISL haul over +Grid for ~8 800 km is expensive (~180–300 ms):
        // north-south travel pays 1 977 km intra-plane hops plus dozens of
        // plane crossings. The production path model (spacecdn-core) also
        // considers coming down at an intermediate gateway and riding
        // submarine fibre, which is what lands in the paper's ~139–160 ms
        // band; this test pins the pure-ISL component.
        let (_, g, access) = setup();
        let maputo = Geodetic::ground(-25.97, 32.57);
        let frankfurt = Geodetic::ground(50.11, 8.68);
        let p = starlink_rtt_to_pop(&g, &access, maputo, frankfurt, None).unwrap();
        assert!(p.isl_hops() >= 10, "intercontinental path needs many ISLs");
        assert!(
            (140.0..320.0).contains(&p.rtt.ms()),
            "got {} over {} hops",
            p.rtt,
            p.isl_hops()
        );
    }

    #[test]
    fn rtt_grows_with_pop_distance() {
        // A PoP-local path is always cheaper than hauling a third of the way
        // around the planet.
        let (_, g, access) = setup();
        let london = Geodetic::ground(51.5, -0.13);
        let tokyo = Geodetic::ground(35.68, 139.69);
        let near = starlink_rtt_to_pop(&g, &access, london, london, None).unwrap();
        let far = starlink_rtt_to_pop(&g, &access, london, tokyo, None).unwrap();
        assert!(far.rtt.ms() > near.rtt.ms() + 30.0);
    }

    #[test]
    fn sampled_path_jitters() {
        let (_, g, access) = setup();
        let city = Geodetic::ground(51.5, -0.13);
        let mut rng = DetRng::new(9, "path");
        let base = starlink_rtt_to_pop(&g, &access, city, city, None)
            .unwrap()
            .rtt;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..20 {
            let p = starlink_rtt_to_pop(&g, &access, city, city, Some(&mut rng)).unwrap();
            seen.insert((p.rtt.ms() * 1e3) as i64);
            // Jitter is bounded: within a few× of the median path.
            assert!(p.rtt.ms() > base.ms() * 0.5 && p.rtt.ms() < base.ms() * 3.0);
        }
        assert!(seen.len() > 15);
    }

    #[test]
    fn spacecdn_fetch_cheaper_than_bent_pipe_for_far_pops() {
        // Fetching from a cache 5 hops away beats hauling to Frankfurt.
        let (c, g, access) = setup();
        let maputo = Geodetic::ground(-25.97, 32.57);
        let frankfurt = Geodetic::ground(50.11, 8.68);
        let (up_sat, up_slant) = g.nearest_alive(maputo).unwrap();
        let target = c.sat_at(c.plane_of(up_sat) as i64 + 3, c.slot_of(up_sat) as i64 + 2);
        let isl = bfs_nearest(&g, up_sat, 10, |s| s == target).unwrap();
        let fetch = spacecdn_fetch_rtt(&access, up_slant, &isl, None);
        let bent = starlink_rtt_to_pop(&g, &access, maputo, frankfurt, None).unwrap();
        assert!(
            fetch.ms() < bent.rtt.ms() / 2.0,
            "fetch {} vs bent-pipe {}",
            fetch,
            bent.rtt
        );
    }

    #[test]
    fn spacecdn_overhead_sat_fetch_is_fast() {
        // Content on the satellite directly overhead: ~15 ms.
        let (_, g, access) = setup();
        let city = Geodetic::ground(40.0, -3.7);
        let (up_sat, up_slant) = g.nearest_alive(city).unwrap();
        let isl = bfs_nearest(&g, up_sat, 0, |s| s == up_sat).unwrap();
        let fetch = spacecdn_fetch_rtt(&access, up_slant, &isl, None);
        assert!((10.0..25.0).contains(&fetch.ms()), "got {fetch}");
    }

    #[test]
    fn dead_constellation_yields_none() {
        let c = Constellation::new(shells::test_shell());
        let mut faults = FaultPlan::none();
        for s in c.sat_indices() {
            faults.fail_sat(s);
        }
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        let p = starlink_rtt_to_pop(
            &g,
            &AccessModel::default(),
            Geodetic::ground(0.0, 0.0),
            Geodetic::ground(1.0, 1.0),
            None,
        );
        assert!(p.is_none());
    }
}
