//! Fault injection for satellites and ISLs.
//!
//! Real constellations always operate degraded: satellites deorbit, laser
//! terminals lose lock, and links near the orbital seam churn. Experiments
//! use a [`FaultPlan`] to knock out satellites or individual links and then
//! measure how routing and SpaceCDN retrieval degrade — the same style of
//! fault injection smoltcp builds into its examples.
//!
//! A [`FaultPlan`] is an *instantaneous* kill set. A [`FaultSchedule`] is a
//! deterministic *timeline* of fault events — satellite death and recovery
//! windows, ISL flaps with configurable up/down dwell, GSL (ground-link)
//! outages, seam-biased churn — that lowers to a `FaultPlan` at any epoch
//! via [`FaultSchedule::plan_at`]. The lowered plan carries the same
//! content [`FaultPlan::digest`] the engine's snapshot pool keys on, so
//! two schedule instants that degrade the fleet identically share one
//! built snapshot, and any instant that differs can never alias one.

use crate::topology::IslGraph;
use spacecdn_geo::{DetRng, SimDuration, SimTime};
use spacecdn_orbit::{Constellation, SatIndex};
use std::collections::HashSet;

/// A set of failed satellites and ISLs applied when building a topology
/// snapshot.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    failed_sats: HashSet<SatIndex>,
    /// Failed links, stored with endpoints ordered (min, max).
    failed_links: HashSet<(SatIndex, SatIndex)>,
    /// Satellites whose *ground* (user/gateway) link is down but whose
    /// laser terminals still relay — the inverse of an ISL failure.
    failed_gsls: HashSet<SatIndex>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Mark a satellite as failed (all four of its ISLs and its user/gateway
    /// links go down).
    pub fn fail_sat(&mut self, sat: SatIndex) -> &mut Self {
        self.failed_sats.insert(sat);
        self
    }

    /// Mark one ISL as failed (direction-agnostic).
    pub fn fail_link(&mut self, a: SatIndex, b: SatIndex) -> &mut Self {
        self.failed_links.insert(Self::key(a, b));
        self
    }

    /// Mark a satellite's ground link (user/gateway radio) as failed. The
    /// satellite keeps relaying over its ISLs — it just cannot serve
    /// terminals or gateways until the GSL recovers.
    pub fn fail_gsl(&mut self, sat: SatIndex) -> &mut Self {
        self.failed_gsls.insert(sat);
        self
    }

    /// Fail a uniformly random fraction of satellites.
    pub fn fail_random_sats(&mut self, total: usize, fraction: f64, rng: &mut DetRng) -> &mut Self {
        let k = ((total as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        for idx in rng.sample_indices(total, k) {
            self.failed_sats.insert(SatIndex(idx as u32));
        }
        self
    }

    /// Is this satellite down?
    pub fn sat_failed(&self, sat: SatIndex) -> bool {
        self.failed_sats.contains(&sat)
    }

    /// Is this link down (either because it failed or an endpoint did)?
    pub fn link_failed(&self, a: SatIndex, b: SatIndex) -> bool {
        self.sat_failed(a) || self.sat_failed(b) || self.failed_links.contains(&Self::key(a, b))
    }

    /// Is this satellite's ground link down (because the GSL failed or the
    /// whole satellite did)?
    pub fn gsl_failed(&self, sat: SatIndex) -> bool {
        self.sat_failed(sat) || self.failed_gsls.contains(&sat)
    }

    /// Number of failed satellites.
    pub fn failed_sat_count(&self) -> usize {
        self.failed_sats.len()
    }

    /// Number of satellites with a failed ground link (not counting whole
    /// satellite failures).
    pub fn failed_gsl_count(&self) -> usize {
        self.failed_gsls.len()
    }

    /// True when the plan fails nothing at all.
    pub fn is_empty(&self) -> bool {
        self.failed_sats.is_empty() && self.failed_links.is_empty() && self.failed_gsls.is_empty()
    }

    /// Content digest of the plan, stable across processes and runs.
    ///
    /// Members are hashed in sorted order (the `HashSet`s iterate in an
    /// arbitrary, seed-dependent order), so two plans failing the same
    /// satellites and links always digest identically — the property the
    /// engine's snapshot pool keys rely on.
    pub fn digest(&self) -> u64 {
        let mut sats: Vec<u32> = self.failed_sats.iter().map(|s| s.0).collect();
        sats.sort_unstable();
        let mut links: Vec<(u32, u32)> =
            self.failed_links.iter().map(|&(a, b)| (a.0, b.0)).collect();
        links.sort_unstable();

        // FNV-1a, 64-bit: tiny, dependency-free, and stable by definition.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(sats.len() as u64);
        for s in sats {
            mix(s as u64);
        }
        mix(links.len() as u64);
        for (a, b) in links {
            mix(((a as u64) << 32) | b as u64);
        }
        let mut gsls: Vec<u32> = self.failed_gsls.iter().map(|s| s.0).collect();
        gsls.sort_unstable();
        mix(gsls.len() as u64);
        for g in gsls {
            mix(g as u64);
        }
        h
    }

    /// Difference between this plan and `next`, as the sorted sets of
    /// satellites, explicit links and GSLs that newly fail or heal when
    /// stepping from `self` to `next`.
    ///
    /// The delta is *exact*: applying it to the masks derived from `self`
    /// reproduces the masks derived from `next` member-for-member, which is
    /// what lets [`IslGraph::apply_delta`] patch a snapshot instead of
    /// rebuilding it. Link entries are the explicit (min, max)-keyed kills
    /// only — edges implied by whole-satellite failures are carried by the
    /// sat sets.
    pub fn diff(&self, next: &FaultPlan) -> FaultPlanDelta {
        fn sat_diff(a: &HashSet<SatIndex>, b: &HashSet<SatIndex>) -> Vec<SatIndex> {
            let mut out: Vec<SatIndex> = b.difference(a).copied().collect();
            out.sort_unstable_by_key(|s| s.0);
            out
        }
        fn link_diff(
            a: &HashSet<(SatIndex, SatIndex)>,
            b: &HashSet<(SatIndex, SatIndex)>,
        ) -> Vec<(SatIndex, SatIndex)> {
            let mut out: Vec<(SatIndex, SatIndex)> = b.difference(a).copied().collect();
            out.sort_unstable_by_key(|&(x, y)| (x.0, y.0));
            out
        }
        FaultPlanDelta {
            failed_sats: sat_diff(&self.failed_sats, &next.failed_sats),
            healed_sats: sat_diff(&next.failed_sats, &self.failed_sats),
            failed_links: link_diff(&self.failed_links, &next.failed_links),
            healed_links: link_diff(&next.failed_links, &self.failed_links),
            failed_gsls: sat_diff(&self.failed_gsls, &next.failed_gsls),
            healed_gsls: sat_diff(&next.failed_gsls, &self.failed_gsls),
        }
    }

    fn key(a: SatIndex, b: SatIndex) -> (SatIndex, SatIndex) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// Exact set difference between two [`FaultPlan`]s, produced by
/// [`FaultPlan::diff`]. All vectors are sorted by satellite index for
/// deterministic iteration.
#[derive(Debug, Clone, Default)]
pub struct FaultPlanDelta {
    /// Satellites failed in `next` but not in `prev`.
    pub failed_sats: Vec<SatIndex>,
    /// Satellites failed in `prev` but not in `next` (recovered).
    pub healed_sats: Vec<SatIndex>,
    /// Explicit (min, max)-keyed link kills added in `next`.
    pub failed_links: Vec<(SatIndex, SatIndex)>,
    /// Explicit link kills removed in `next`.
    pub healed_links: Vec<(SatIndex, SatIndex)>,
    /// Ground-link kills added in `next`.
    pub failed_gsls: Vec<SatIndex>,
    /// Ground-link kills removed in `next`.
    pub healed_gsls: Vec<SatIndex>,
}

impl FaultPlanDelta {
    /// True when the two plans are identical.
    pub fn is_empty(&self) -> bool {
        !self.is_structural() && self.failed_gsls.is_empty() && self.healed_gsls.is_empty()
    }

    /// True when the delta changes the ISL adjacency structure — any
    /// satellite or explicit link change. GSL-only deltas leave the CSR
    /// arrays untouched (only the servable mask moves).
    pub fn is_structural(&self) -> bool {
        !self.failed_sats.is_empty()
            || !self.healed_sats.is_empty()
            || !self.failed_links.is_empty()
            || !self.healed_links.is_empty()
    }

    /// True when the structural part is pure removal: edges only disappear
    /// (new sat/link kills), never reappear. Pure-removal deltas admit
    /// sparse shortest-path repair; anything that adds edges forces a full
    /// per-source recompute.
    pub fn is_pure_removal(&self) -> bool {
        self.healed_sats.is_empty() && self.healed_links.is_empty()
    }
}

/// One event on a fault timeline. All events are *additive*: lowering a
/// schedule ORs every active event into the plan, so event order never
/// matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The satellite is down from `from` until `until` (forever when
    /// `None`): all four ISLs and the ground link go with it.
    SatOutage {
        /// The failing satellite.
        sat: SatIndex,
        /// First instant the satellite is down (inclusive).
        from: SimTime,
        /// First instant the satellite is back (exclusive end of the
        /// outage); `None` means it never recovers.
        until: Option<SimTime>,
    },
    /// The satellite's ground link is down for a window; its laser
    /// terminals keep relaying.
    GslOutage {
        /// The satellite losing its ground link.
        sat: SatIndex,
        /// First instant the GSL is down (inclusive).
        from: SimTime,
        /// Exclusive recovery instant; `None` means never.
        until: Option<SimTime>,
    },
    /// A flapping laser link: from `from` on, the link repeats an
    /// up-dwell of `up` followed by a down-dwell of `down`. Before `from`
    /// (and whenever `up + down` is zero) the link is healthy.
    IslFlap {
        /// One endpoint.
        a: SatIndex,
        /// The other endpoint (direction-agnostic).
        b: SatIndex,
        /// Phase origin of the flap cycle.
        from: SimTime,
        /// How long the link stays up each cycle.
        up: SimDuration,
        /// How long it stays down each cycle.
        down: SimDuration,
    },
}

impl FaultEvent {
    /// Is the event degrading the fleet at instant `t`?
    fn active_at(&self, t: SimTime) -> bool {
        match *self {
            FaultEvent::SatOutage { from, until, .. }
            | FaultEvent::GslOutage { from, until, .. } => {
                t.0 >= from.0 && until.is_none_or(|u| t.0 < u.0)
            }
            FaultEvent::IslFlap { from, up, down, .. } => {
                let period = up.0 + down.0;
                if t.0 < from.0 || period == 0 {
                    return false;
                }
                (t.0 - from.0) % period >= up.0
            }
        }
    }

    /// Canonical encoding for [`FaultSchedule::digest`]: a fixed-width
    /// word tuple whose ordering is content ordering.
    fn encode(&self) -> [u64; 5] {
        // `until: None` encodes as u64::MAX — unreachable as a real
        // SimTime in practice and ordered after every finite instant.
        let unbounded = u64::MAX;
        match *self {
            FaultEvent::SatOutage { sat, from, until } => {
                [0, sat.0 as u64, from.0, until.map_or(unbounded, |u| u.0), 0]
            }
            FaultEvent::GslOutage { sat, from, until } => {
                [1, sat.0 as u64, from.0, until.map_or(unbounded, |u| u.0), 0]
            }
            FaultEvent::IslFlap {
                a,
                b,
                from,
                up,
                down,
            } => {
                let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                [2, ((lo as u64) << 32) | hi as u64, from.0, up.0, down.0]
            }
        }
    }
}

/// A deterministic timeline of fault events.
///
/// Schedules are *value objects*: building one never touches a topology.
/// Experiments lower the schedule at each epoch with [`Self::plan_at`] and
/// hand the resulting [`FaultPlan`] to the snapshot layer; the plan's
/// digest keys the engine's snapshot pool, so repeating instants of a
/// periodic schedule (a flap cycle revisiting the same phase) reuse built
/// snapshots for free.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule: every instant lowers to [`FaultPlan::none`].
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Number of events on the timeline.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the timeline has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw events (diagnostic access).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Append one event.
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// A satellite outage window (`until: None` = permanent death).
    pub fn sat_outage(
        &mut self,
        sat: SatIndex,
        from: SimTime,
        until: Option<SimTime>,
    ) -> &mut Self {
        self.push(FaultEvent::SatOutage { sat, from, until })
    }

    /// A ground-link outage window.
    pub fn gsl_outage(
        &mut self,
        sat: SatIndex,
        from: SimTime,
        until: Option<SimTime>,
    ) -> &mut Self {
        self.push(FaultEvent::GslOutage { sat, from, until })
    }

    /// A flapping ISL with the given up/down dwell.
    pub fn isl_flap(
        &mut self,
        a: SatIndex,
        b: SatIndex,
        from: SimTime,
        up: SimDuration,
        down: SimDuration,
    ) -> &mut Self {
        self.push(FaultEvent::IslFlap {
            a,
            b,
            from,
            up,
            down,
        })
    }

    /// Kill a uniformly random `fraction` of `total` satellites at `at`,
    /// permanently.
    ///
    /// Selection truncates one seed-determined permutation, so the same
    /// `rng` seed/stream yields *nested* kill sets for increasing
    /// fractions — the property degradation sweeps rely on for monotone
    /// curves.
    pub fn random_sat_failures(
        &mut self,
        total: usize,
        fraction: f64,
        at: SimTime,
        rng: &mut DetRng,
    ) -> &mut Self {
        let k = ((total as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        for idx in rng.sample_indices(total, k) {
            self.sat_outage(SatIndex(idx as u32), at, None);
        }
        self
    }

    /// Give a random `fraction` of `total` satellites one outage window
    /// each: start uniform in `[0, horizon)`, duration exponential with
    /// the given mean (at least 1 ms). Satellites chosen first keep their
    /// windows as the fraction grows (nested selection, see
    /// [`Self::random_sat_failures`]).
    pub fn random_sat_outages(
        &mut self,
        total: usize,
        fraction: f64,
        horizon: SimDuration,
        mean_outage: SimDuration,
        rng: &mut DetRng,
    ) -> &mut Self {
        let k = ((total as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        for idx in rng.sample_indices(total, k) {
            let start = rng.uniform(0.0, horizon.0.max(1) as f64) as u64;
            let dwell = (rng.exponential(mean_outage.0 as f64) as u64).max(1);
            self.sat_outage(
                SatIndex(idx as u32),
                SimTime(start),
                Some(SimTime(start + dwell)),
            );
        }
        self
    }

    /// Give a random `fraction` of `total` satellites one GSL outage
    /// window each (same window model as [`Self::random_sat_outages`]).
    pub fn random_gsl_outages(
        &mut self,
        total: usize,
        fraction: f64,
        horizon: SimDuration,
        mean_outage: SimDuration,
        rng: &mut DetRng,
    ) -> &mut Self {
        let k = ((total as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        for idx in rng.sample_indices(total, k) {
            let start = rng.uniform(0.0, horizon.0.max(1) as f64) as u64;
            let dwell = (rng.exponential(mean_outage.0 as f64) as u64).max(1);
            self.gsl_outage(
                SatIndex(idx as u32),
                SimTime(start),
                Some(SimTime(start + dwell)),
            );
        }
        self
    }

    /// Flap a random `fraction` of the graph's undirected ISLs with the
    /// given dwell. Each flapped link gets a random phase origin within
    /// one cycle so the fleet's flaps desynchronise (lockstep flapping
    /// would alternate between two global topologies, which no real
    /// constellation does).
    pub fn random_isl_flaps(
        &mut self,
        graph: &IslGraph,
        fraction: f64,
        up: SimDuration,
        down: SimDuration,
        rng: &mut DetRng,
    ) -> &mut Self {
        let links = undirected_links(graph, |_, _| true);
        self.flap_selected(&links, fraction, up, down, rng)
    }

    /// Seam-biased churn: flap a `fraction` of the *seam* inter-plane
    /// links — the ones joining the first and last orbital planes, where
    /// Walker phasing makes pointing hardest and real constellations see
    /// the most link churn. Interior links are untouched.
    pub fn seam_churn(
        &mut self,
        graph: &IslGraph,
        constellation: &Constellation,
        fraction: f64,
        up: SimDuration,
        down: SimDuration,
        rng: &mut DetRng,
    ) -> &mut Self {
        let last = constellation.config().plane_count.saturating_sub(1);
        if last < 2 {
            return self; // no distinct seam with fewer than 3 planes
        }
        let links = undirected_links(graph, |a, b| {
            let (pa, pb) = (constellation.plane_of(a), constellation.plane_of(b));
            (pa == 0 && pb == last) || (pa == last && pb == 0)
        });
        self.flap_selected(&links, fraction, up, down, rng)
    }

    fn flap_selected(
        &mut self,
        links: &[(SatIndex, SatIndex)],
        fraction: f64,
        up: SimDuration,
        down: SimDuration,
        rng: &mut DetRng,
    ) -> &mut Self {
        let k = ((links.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let period = (up.0 + down.0).max(1);
        for idx in rng.sample_indices(links.len(), k) {
            let (a, b) = links[idx];
            let phase = rng.uniform(0.0, period as f64) as u64;
            self.isl_flap(a, b, SimTime(phase), up, down);
        }
        self
    }

    /// Lower the timeline to the instantaneous kill set at `t`.
    ///
    /// Events are additive, so the result is independent of event order;
    /// the returned plan's [`FaultPlan::digest`] is therefore a pure
    /// function of *what is degraded at `t`* — exactly what the engine's
    /// snapshot pool needs to share snapshots across repeating schedule
    /// phases and to never alias differing ones.
    pub fn plan_at(&self, t: SimTime) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for event in &self.events {
            if !event.active_at(t) {
                continue;
            }
            match *event {
                FaultEvent::SatOutage { sat, .. } => {
                    plan.fail_sat(sat);
                }
                FaultEvent::GslOutage { sat, .. } => {
                    plan.fail_gsl(sat);
                }
                FaultEvent::IslFlap { a, b, .. } => {
                    plan.fail_link(a, b);
                }
            }
        }
        plan
    }

    /// Content digest of the timeline, stable across processes, clones
    /// and event insertion order (events commute, so the digest sorts
    /// their canonical encodings first).
    pub fn digest(&self) -> u64 {
        let mut rows: Vec<[u64; 5]> = self.events.iter().map(FaultEvent::encode).collect();
        rows.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(rows.len() as u64);
        for row in rows {
            for word in row {
                mix(word);
            }
        }
        h
    }
}

/// Every undirected link of `graph` passing `keep`, in ascending
/// `(min, max)` endpoint order — a deterministic enumeration for the
/// random flap generators.
fn undirected_links(
    graph: &IslGraph,
    keep: impl Fn(SatIndex, SatIndex) -> bool,
) -> Vec<(SatIndex, SatIndex)> {
    let mut links = Vec::new();
    for i in 0..graph.len() as u32 {
        let a = SatIndex(i);
        for e in graph.neighbors(a) {
            if a.0 < e.to.0 && keep(a, e.to) {
                links.push((a, e.to));
            }
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fails_nothing() {
        let p = FaultPlan::none();
        assert!(!p.sat_failed(SatIndex(0)));
        assert!(!p.link_failed(SatIndex(0), SatIndex(1)));
        assert_eq!(p.failed_sat_count(), 0);
    }

    #[test]
    fn sat_failure_takes_links_down() {
        let mut p = FaultPlan::none();
        p.fail_sat(SatIndex(3));
        assert!(p.sat_failed(SatIndex(3)));
        assert!(p.link_failed(SatIndex(3), SatIndex(4)));
        assert!(p.link_failed(SatIndex(2), SatIndex(3)));
        assert!(!p.link_failed(SatIndex(1), SatIndex(2)));
    }

    #[test]
    fn link_failure_is_direction_agnostic() {
        let mut p = FaultPlan::none();
        p.fail_link(SatIndex(7), SatIndex(2));
        assert!(p.link_failed(SatIndex(2), SatIndex(7)));
        assert!(p.link_failed(SatIndex(7), SatIndex(2)));
        assert!(!p.sat_failed(SatIndex(7)));
    }

    #[test]
    fn random_failures_hit_requested_fraction() {
        let mut rng = DetRng::new(5, "faults");
        let mut p = FaultPlan::none();
        p.fail_random_sats(1000, 0.1, &mut rng);
        assert_eq!(p.failed_sat_count(), 100);
        // Deterministic for the same seed/stream.
        let mut rng2 = DetRng::new(5, "faults");
        let mut p2 = FaultPlan::none();
        p2.fail_random_sats(1000, 0.1, &mut rng2);
        for i in 0..1000u32 {
            assert_eq!(p.sat_failed(SatIndex(i)), p2.sat_failed(SatIndex(i)));
        }
    }

    #[test]
    fn digest_is_order_independent_and_content_sensitive() {
        let mut a = FaultPlan::none();
        a.fail_sat(SatIndex(9));
        a.fail_sat(SatIndex(2));
        a.fail_link(SatIndex(5), SatIndex(1));
        let mut b = FaultPlan::none();
        b.fail_link(SatIndex(1), SatIndex(5));
        b.fail_sat(SatIndex(2));
        b.fail_sat(SatIndex(9));
        assert_eq!(a.digest(), b.digest(), "same content must digest alike");
        assert_ne!(a.digest(), FaultPlan::none().digest());

        let mut c = FaultPlan::none();
        c.fail_sat(SatIndex(9));
        c.fail_sat(SatIndex(2));
        assert_ne!(a.digest(), c.digest(), "dropping a link must change it");
    }

    #[test]
    fn fraction_clamps() {
        let mut rng = DetRng::new(5, "faults");
        let mut p = FaultPlan::none();
        p.fail_random_sats(50, 2.0, &mut rng);
        assert_eq!(p.failed_sat_count(), 50);
    }

    #[test]
    fn gsl_failure_keeps_isls_up() {
        let mut p = FaultPlan::none();
        p.fail_gsl(SatIndex(3));
        assert!(p.gsl_failed(SatIndex(3)));
        assert!(!p.sat_failed(SatIndex(3)));
        assert!(!p.link_failed(SatIndex(3), SatIndex(4)));
        assert_eq!(p.failed_gsl_count(), 1);
        // A whole-satellite failure implies the GSL is down too.
        let mut q = FaultPlan::none();
        q.fail_sat(SatIndex(7));
        assert!(q.gsl_failed(SatIndex(7)));
        assert_eq!(q.failed_gsl_count(), 0);
    }

    #[test]
    fn gsl_failures_change_the_digest() {
        let mut a = FaultPlan::none();
        a.fail_sat(SatIndex(2));
        let mut b = a.clone();
        b.fail_gsl(SatIndex(9));
        assert_ne!(a.digest(), b.digest());
        let mut c = FaultPlan::none();
        c.fail_sat(SatIndex(2));
        c.fail_gsl(SatIndex(9));
        assert_eq!(b.digest(), c.digest());
    }

    #[test]
    fn outage_window_boundaries() {
        let mut s = FaultSchedule::none();
        s.sat_outage(
            SatIndex(5),
            SimTime::from_secs(100),
            Some(SimTime::from_secs(200)),
        );
        assert!(!s.plan_at(SimTime::from_secs(99)).sat_failed(SatIndex(5)));
        // Down from `from` (inclusive) until `until` (exclusive).
        assert!(s.plan_at(SimTime::from_secs(100)).sat_failed(SatIndex(5)));
        assert!(s.plan_at(SimTime::from_secs(199)).sat_failed(SatIndex(5)));
        assert!(!s.plan_at(SimTime::from_secs(200)).sat_failed(SatIndex(5)));
        // Permanent death never recovers.
        let mut p = FaultSchedule::none();
        p.sat_outage(SatIndex(6), SimTime::EPOCH, None);
        assert!(p
            .plan_at(SimTime::from_secs(1 << 30))
            .sat_failed(SatIndex(6)));
    }

    #[test]
    fn flap_cycles_through_up_and_down_dwell() {
        let (a, b) = (SatIndex(1), SatIndex(2));
        let mut s = FaultSchedule::none();
        s.isl_flap(
            a,
            b,
            SimTime::from_secs(10),
            SimDuration::from_secs(60),
            SimDuration::from_secs(20),
        );
        // Healthy before the phase origin.
        assert!(!s.plan_at(SimTime::from_secs(0)).link_failed(a, b));
        // Up dwell first: [10, 70) up, [70, 90) down, then repeat.
        assert!(!s.plan_at(SimTime::from_secs(10)).link_failed(a, b));
        assert!(!s.plan_at(SimTime::from_secs(69)).link_failed(a, b));
        assert!(s.plan_at(SimTime::from_secs(70)).link_failed(a, b));
        assert!(s.plan_at(SimTime::from_secs(89)).link_failed(a, b));
        assert!(!s.plan_at(SimTime::from_secs(90)).link_failed(a, b));
        assert!(s.plan_at(SimTime::from_secs(70 + 80)).link_failed(a, b));
        // Zero dwell = no flap at all.
        let mut z = FaultSchedule::none();
        z.isl_flap(a, b, SimTime::EPOCH, SimDuration(0), SimDuration(0));
        assert!(!z.plan_at(SimTime::from_secs(5)).link_failed(a, b));
    }

    #[test]
    fn gsl_outage_lowers_to_gsl_only_failure() {
        let mut s = FaultSchedule::none();
        s.gsl_outage(SatIndex(4), SimTime::EPOCH, Some(SimTime::from_secs(50)));
        let p = s.plan_at(SimTime::from_secs(10));
        assert!(p.gsl_failed(SatIndex(4)));
        assert!(!p.sat_failed(SatIndex(4)));
        assert!(!p.link_failed(SatIndex(4), SatIndex(5)));
        assert!(!s.plan_at(SimTime::from_secs(50)).gsl_failed(SatIndex(4)));
    }

    #[test]
    fn empty_schedule_lowers_to_pristine_plan() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        let p = s.plan_at(SimTime::from_secs(123));
        assert!(p.is_empty());
        assert_eq!(p.digest(), FaultPlan::none().digest());
    }

    #[test]
    fn schedule_digest_order_insensitive_and_content_sensitive() {
        let mut a = FaultSchedule::none();
        a.sat_outage(SatIndex(1), SimTime::EPOCH, None);
        a.isl_flap(
            SatIndex(2),
            SatIndex(3),
            SimTime::EPOCH,
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
        );
        let mut b = FaultSchedule::none();
        b.isl_flap(
            SatIndex(3),
            SatIndex(2), // endpoint order is canonicalised too
            SimTime::EPOCH,
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
        );
        b.sat_outage(SatIndex(1), SimTime::EPOCH, None);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
        let mut c = a.clone();
        c.gsl_outage(SatIndex(9), SimTime::EPOCH, None);
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a.digest(), FaultSchedule::none().digest());
    }

    #[test]
    fn nested_failure_fractions_share_kill_sets() {
        // Same seed/stream ⇒ the 10 % kill set is a subset of the 20 % one.
        let plans: Vec<FaultPlan> = [0.1, 0.2]
            .iter()
            .map(|&f| {
                let mut rng = DetRng::new(11, "nested");
                let mut s = FaultSchedule::none();
                s.random_sat_failures(500, f, SimTime::EPOCH, &mut rng);
                s.plan_at(SimTime::from_secs(1))
            })
            .collect();
        assert_eq!(plans[0].failed_sat_count(), 50);
        assert_eq!(plans[1].failed_sat_count(), 100);
        for i in 0..500u32 {
            if plans[0].sat_failed(SatIndex(i)) {
                assert!(plans[1].sat_failed(SatIndex(i)), "kill sets not nested");
            }
        }
    }

    #[test]
    fn random_outage_windows_recover() {
        let mut rng = DetRng::new(3, "windows");
        let mut s = FaultSchedule::none();
        s.random_sat_outages(
            200,
            0.3,
            SimDuration::from_secs(1000),
            SimDuration::from_secs(120),
            &mut rng,
        );
        assert_eq!(s.len(), 60);
        // Far beyond every window, the fleet is pristine again.
        assert!(s.plan_at(SimTime::from_secs(1_000_000)).is_empty());
        // Somewhere inside the horizon, at least one outage is active.
        let active = (0..10u64)
            .map(|k| s.plan_at(SimTime::from_secs(k * 100)).failed_sat_count())
            .max()
            .unwrap();
        assert!(active > 0, "no outage ever active");
    }
}
