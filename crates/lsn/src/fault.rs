//! Fault injection for satellites and ISLs.
//!
//! Real constellations always operate degraded: satellites deorbit, laser
//! terminals lose lock, and links near the orbital seam churn. Experiments
//! use a [`FaultPlan`] to knock out satellites or individual links and then
//! measure how routing and SpaceCDN retrieval degrade — the same style of
//! fault injection smoltcp builds into its examples.

use spacecdn_geo::DetRng;
use spacecdn_orbit::SatIndex;
use std::collections::HashSet;

/// A set of failed satellites and ISLs applied when building a topology
/// snapshot.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    failed_sats: HashSet<SatIndex>,
    /// Failed links, stored with endpoints ordered (min, max).
    failed_links: HashSet<(SatIndex, SatIndex)>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Mark a satellite as failed (all four of its ISLs and its user/gateway
    /// links go down).
    pub fn fail_sat(&mut self, sat: SatIndex) -> &mut Self {
        self.failed_sats.insert(sat);
        self
    }

    /// Mark one ISL as failed (direction-agnostic).
    pub fn fail_link(&mut self, a: SatIndex, b: SatIndex) -> &mut Self {
        self.failed_links.insert(Self::key(a, b));
        self
    }

    /// Fail a uniformly random fraction of satellites.
    pub fn fail_random_sats(&mut self, total: usize, fraction: f64, rng: &mut DetRng) -> &mut Self {
        let k = ((total as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        for idx in rng.sample_indices(total, k) {
            self.failed_sats.insert(SatIndex(idx as u32));
        }
        self
    }

    /// Is this satellite down?
    pub fn sat_failed(&self, sat: SatIndex) -> bool {
        self.failed_sats.contains(&sat)
    }

    /// Is this link down (either because it failed or an endpoint did)?
    pub fn link_failed(&self, a: SatIndex, b: SatIndex) -> bool {
        self.sat_failed(a) || self.sat_failed(b) || self.failed_links.contains(&Self::key(a, b))
    }

    /// Number of failed satellites.
    pub fn failed_sat_count(&self) -> usize {
        self.failed_sats.len()
    }

    /// Content digest of the plan, stable across processes and runs.
    ///
    /// Members are hashed in sorted order (the `HashSet`s iterate in an
    /// arbitrary, seed-dependent order), so two plans failing the same
    /// satellites and links always digest identically — the property the
    /// engine's snapshot pool keys rely on.
    pub fn digest(&self) -> u64 {
        let mut sats: Vec<u32> = self.failed_sats.iter().map(|s| s.0).collect();
        sats.sort_unstable();
        let mut links: Vec<(u32, u32)> =
            self.failed_links.iter().map(|&(a, b)| (a.0, b.0)).collect();
        links.sort_unstable();

        // FNV-1a, 64-bit: tiny, dependency-free, and stable by definition.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(sats.len() as u64);
        for s in sats {
            mix(s as u64);
        }
        mix(links.len() as u64);
        for (a, b) in links {
            mix(((a as u64) << 32) | b as u64);
        }
        h
    }

    fn key(a: SatIndex, b: SatIndex) -> (SatIndex, SatIndex) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fails_nothing() {
        let p = FaultPlan::none();
        assert!(!p.sat_failed(SatIndex(0)));
        assert!(!p.link_failed(SatIndex(0), SatIndex(1)));
        assert_eq!(p.failed_sat_count(), 0);
    }

    #[test]
    fn sat_failure_takes_links_down() {
        let mut p = FaultPlan::none();
        p.fail_sat(SatIndex(3));
        assert!(p.sat_failed(SatIndex(3)));
        assert!(p.link_failed(SatIndex(3), SatIndex(4)));
        assert!(p.link_failed(SatIndex(2), SatIndex(3)));
        assert!(!p.link_failed(SatIndex(1), SatIndex(2)));
    }

    #[test]
    fn link_failure_is_direction_agnostic() {
        let mut p = FaultPlan::none();
        p.fail_link(SatIndex(7), SatIndex(2));
        assert!(p.link_failed(SatIndex(2), SatIndex(7)));
        assert!(p.link_failed(SatIndex(7), SatIndex(2)));
        assert!(!p.sat_failed(SatIndex(7)));
    }

    #[test]
    fn random_failures_hit_requested_fraction() {
        let mut rng = DetRng::new(5, "faults");
        let mut p = FaultPlan::none();
        p.fail_random_sats(1000, 0.1, &mut rng);
        assert_eq!(p.failed_sat_count(), 100);
        // Deterministic for the same seed/stream.
        let mut rng2 = DetRng::new(5, "faults");
        let mut p2 = FaultPlan::none();
        p2.fail_random_sats(1000, 0.1, &mut rng2);
        for i in 0..1000u32 {
            assert_eq!(p.sat_failed(SatIndex(i)), p2.sat_failed(SatIndex(i)));
        }
    }

    #[test]
    fn digest_is_order_independent_and_content_sensitive() {
        let mut a = FaultPlan::none();
        a.fail_sat(SatIndex(9));
        a.fail_sat(SatIndex(2));
        a.fail_link(SatIndex(5), SatIndex(1));
        let mut b = FaultPlan::none();
        b.fail_link(SatIndex(1), SatIndex(5));
        b.fail_sat(SatIndex(2));
        b.fail_sat(SatIndex(9));
        assert_eq!(a.digest(), b.digest(), "same content must digest alike");
        assert_ne!(a.digest(), FaultPlan::none().digest());

        let mut c = FaultPlan::none();
        c.fail_sat(SatIndex(9));
        c.fail_sat(SatIndex(2));
        assert_ne!(a.digest(), c.digest(), "dropping a link must change it");
    }

    #[test]
    fn fraction_clamps() {
        let mut rng = DetRng::new(5, "faults");
        let mut p = FaultPlan::none();
        p.fail_random_sats(50, 2.0, &mut rng);
        assert_eq!(p.failed_sat_count(), 50);
    }
}
