//! Route dynamics: how fast paths through the constellation churn.
//!
//! §2's core claim is that LSN infrastructure *moves*: the serving
//! satellite changes within minutes and the ISL path between two ground
//! points is continuously re-planned. For CDNs this is the difference
//! between "map the user once" and "the map is stale before the DNS TTL
//! expires". This module measures path lifetime and the latency
//! discontinuities at re-route events.

use crate::fault::FaultPlan;
use crate::routing::dijkstra;
use crate::topology::IslGraph;
use spacecdn_geo::{Geodetic, SimDuration, SimTime};
use spacecdn_orbit::{Constellation, SatIndex};

/// One sampled route between two ground points.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSample {
    /// Sample instant.
    pub t: SimTime,
    /// Satellites of the route, endpoint-serving satellites included.
    pub sats: Vec<SatIndex>,
    /// One-way ISL propagation, ms.
    pub propagation_ms: f64,
}

/// Churn statistics over a sampled interval.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Number of samples taken.
    pub samples: usize,
    /// Samples at which the satellite sequence differed from the previous
    /// sample.
    pub route_changes: usize,
    /// Mean route lifetime, seconds.
    pub mean_route_lifetime_s: f64,
    /// Largest one-way propagation jump at a route change, ms.
    pub max_reroute_jump_ms: f64,
}

/// Sample the route between `a` and `b` every `step` for `duration`.
pub fn route_samples(
    constellation: &Constellation,
    a: Geodetic,
    b: Geodetic,
    start: SimTime,
    duration: SimDuration,
    step: SimDuration,
) -> Vec<RouteSample> {
    assert!(step > SimDuration::ZERO, "sampling step must be positive");
    let mut out = Vec::new();
    let mut t = start;
    let end = start + duration;
    while t <= end {
        let graph = IslGraph::build(constellation, t, &FaultPlan::none());
        if let (Some((sa, _)), Some((sb, _))) = (graph.nearest_alive(a), graph.nearest_alive(b)) {
            if let Some(path) = dijkstra(&graph, sa, sb) {
                out.push(RouteSample {
                    t,
                    sats: path.sats,
                    propagation_ms: path.propagation.ms(),
                });
            }
        }
        t += step;
    }
    out
}

/// Summarise a route-sample series.
pub fn churn_report(samples: &[RouteSample], step: SimDuration) -> Option<ChurnReport> {
    if samples.len() < 2 {
        return None;
    }
    let mut changes = 0;
    let mut max_jump: f64 = 0.0;
    for w in samples.windows(2) {
        if w[0].sats != w[1].sats {
            changes += 1;
            max_jump = max_jump.max((w[1].propagation_ms - w[0].propagation_ms).abs());
        }
    }
    let span_s = (samples.len() - 1) as f64 * step.as_secs_f64();
    Some(ChurnReport {
        samples: samples.len(),
        route_changes: changes,
        mean_route_lifetime_s: if changes > 0 {
            span_s / changes as f64
        } else {
            span_s
        },
        max_reroute_jump_ms: max_jump,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacecdn_orbit::shell::shells;

    fn sample_pair(minutes: u64) -> Vec<RouteSample> {
        let c = Constellation::new(shells::starlink_shell1());
        route_samples(
            &c,
            Geodetic::ground(-25.97, 32.57), // Maputo
            Geodetic::ground(50.11, 8.68),   // Frankfurt
            SimTime::EPOCH,
            SimDuration::from_mins(minutes),
            SimDuration::from_secs(30),
        )
    }

    #[test]
    fn routes_always_found_for_midlatitude_pair() {
        let samples = sample_pair(10);
        assert_eq!(samples.len(), 21); // 0..=600s every 30s
        for s in &samples {
            assert!(s.sats.len() >= 2);
            assert!(s.propagation_ms > 20.0 && s.propagation_ms < 150.0);
        }
    }

    #[test]
    fn long_route_churns_within_minutes() {
        let samples = sample_pair(20);
        let report = churn_report(&samples, SimDuration::from_secs(30)).unwrap();
        assert!(report.route_changes >= 3, "{report:?}");
        assert!(
            report.mean_route_lifetime_s < 600.0,
            "routes should not survive 10 minutes: {report:?}"
        );
        // Re-routes move endpoints by at most a hop or two: jumps stay
        // bounded (no teleporting).
        assert!(report.max_reroute_jump_ms < 40.0, "{report:?}");
    }

    #[test]
    fn consecutive_samples_latency_continuous() {
        // Within a route's lifetime latency drifts smoothly; across
        // re-routes it may jump but stays bounded (asserted above). Drift
        // between adjacent samples of the SAME route is sub-millisecond
        // per 30 s.
        let samples = sample_pair(10);
        for w in samples.windows(2) {
            if w[0].sats == w[1].sats {
                assert!(
                    (w[0].propagation_ms - w[1].propagation_ms).abs() < 3.0,
                    "same-route drift too large"
                );
            }
        }
    }

    #[test]
    fn degenerate_series() {
        assert!(churn_report(&[], SimDuration::from_secs(30)).is_none());
        let one = sample_pair(0);
        assert!(churn_report(&one, SimDuration::from_secs(30)).is_none());
    }
}
