//! Lat/lon grid spatial index over snapshot satellite positions.
//!
//! `nearest_alive` used to scan all 1584 satellites per call; campaigns
//! call it for every (city, epoch) pair and every retrieval trial. This
//! index buckets alive satellites into fixed lat/lon cells at build time
//! and answers nearest-satellite queries by scanning only the cells whose
//! *conservative* distance lower bound can beat the best candidate found
//! so far.
//!
//! The result is exactly the linear scan's answer — including its
//! tie-break (lowest satellite index wins at equal distance) — because
//! candidate cells are pruned with a provable lower bound and surviving
//! members are compared with the same exact `(distance, index)` ordering
//! the scan uses. The bound per cell: members lie inside a cone around
//! the cell's mean direction `u` with angular radius `rho`, at radius
//! `r ∈ [r_min, r_max]` from Earth's centre. For a query point at radius
//! `gn` and angle `alpha` from `u`, every member sits at central angle
//! `theta ≥ theta_min = max(0, alpha - rho)`, so
//! `d² = gn² + r² - 2·gn·r·cos(theta)` is bounded below by taking `r_min`
//! in the quadratic term and the endpoint of `[r_min, r_max]` that
//! minimizes the cross term (each term minimized independently — the sum
//! of minima never exceeds the true minimum). A 1 m slack absorbs
//! floating-point rounding in the bound itself.

use spacecdn_geo::{Ecef, Km};
use spacecdn_orbit::SatIndex;
use spacecdn_telemetry::LazyCounter;
use std::sync::Arc;

/// Query counters. Stable: `nearest` is a pure function of (snapshot,
/// query point) and campaigns issue a deterministic query sequence, so
/// both the query count and the per-query scan/prune split are identical
/// at any thread count.
static SPATIAL_QUERIES: LazyCounter = LazyCounter::stable("lsn.spatial.queries");
static SPATIAL_CELLS_SCANNED: LazyCounter = LazyCounter::stable("lsn.spatial.cells_scanned");
static SPATIAL_CELLS_PRUNED: LazyCounter = LazyCounter::stable("lsn.spatial.cells_pruned");

/// Cell granularity in degrees. 15° keeps the non-empty cell count near
/// 200 for Shell 1 (so the per-query bound pass is ~8× cheaper than the
/// full scan) while leaving several satellites per cell to amortize it.
const CELL_DEG: f64 = 15.0;
/// Slack subtracted from each cell's distance lower bound, in km, to
/// absorb floating-point rounding. 1 m is ~10⁴ × the worst-case error at
/// these magnitudes and costs no measurable pruning power.
const BOUND_SLACK_KM: f64 = 1e-3;

/// Accumulated drift (km of bound inflation) beyond which
/// [`SpatialIndex::advanced`] refuses to patch and demands a full rebuild.
/// At Shell 1 altitude satellites move ~8.1 km/s in ECEF, so at 5 s epoch
/// steps this re-tightens the bounds roughly every ten steps, keeping the
/// inflated cones within ~3.5° of the freshly built ones — pruning stays
/// effective while the rebuild cost is amortized ~10×.
const REBUILD_DRIFT_KM: f64 = 400.0;

#[derive(Debug, Clone)]
struct Cell {
    /// Unit mean direction of the members.
    unit: [f64; 3],
    /// Cosine/sine of the member cone's angular radius around `unit`,
    /// precomputed so query-time bounds need no trigonometry (`acos` per
    /// cell would cost more than the scan the index avoids).
    cos_rho: f64,
    sin_rho: f64,
    /// Radius range of members from Earth's centre, km.
    r_min: f64,
    r_max: f64,
    /// Member satellite indices, ascending. Shared between an index and
    /// its [`SpatialIndex::advanced`] successors so a patch step clones
    /// refcounts, not vectors.
    members: Arc<Vec<u32>>,
}

/// Grid index over the alive satellites of one snapshot.
#[derive(Debug, Clone, Default)]
pub struct SpatialIndex {
    cells: Vec<Cell>,
    /// Total bound inflation applied since the last full build, km.
    drift_km: f64,
}

fn norm(v: [f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn as_array(p: Ecef) -> [f64; 3] {
    [p.x, p.y, p.z]
}

impl SpatialIndex {
    /// Bucket the alive satellites of a snapshot. `positions` and `alive`
    /// are parallel arrays as held by the ISL graph.
    pub fn build(positions: &[Ecef], alive: &[bool]) -> Self {
        let lon_cells = (360.0 / CELL_DEG).ceil() as usize;
        let lat_cells = (180.0 / CELL_DEG).ceil() as usize;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); lon_cells * lat_cells];
        for (i, pos) in positions.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let geo = pos.to_geodetic();
            let lat_i = (((geo.lat_deg + 90.0) / CELL_DEG) as usize).min(lat_cells - 1);
            let lon_i = (((geo.lon_deg + 180.0) / CELL_DEG) as usize).min(lon_cells - 1);
            buckets[lat_i * lon_cells + lon_i].push(i as u32);
        }

        let mut cells = Vec::new();
        for members in buckets {
            if members.is_empty() {
                continue;
            }
            let mut sum = [0.0f64; 3];
            let mut r_min = f64::INFINITY;
            let mut r_max = 0.0f64;
            for &m in &members {
                let p = as_array(positions[m as usize]);
                let r = norm(p);
                r_min = r_min.min(r);
                r_max = r_max.max(r);
                sum[0] += p[0] / r;
                sum[1] += p[1] / r;
                sum[2] += p[2] / r;
            }
            let sum_norm = norm(sum);
            // Members of one lat/lon cell always share a hemisphere, so the
            // mean direction cannot vanish; guard anyway.
            let unit = if sum_norm > 1e-12 {
                [sum[0] / sum_norm, sum[1] / sum_norm, sum[2] / sum_norm]
            } else {
                [1.0, 0.0, 0.0]
            };
            let mut rho = 0.0f64;
            for &m in &members {
                let p = as_array(positions[m as usize]);
                let cos_angle = (dot(p, unit) / norm(p)).clamp(-1.0, 1.0);
                rho = rho.max(cos_angle.acos());
            }
            // Angular slack absorbs acos rounding before the cosine pair
            // is frozen for query-time bounds.
            let rho = rho + 1e-9;
            cells.push(Cell {
                unit,
                cos_rho: rho.cos(),
                sin_rho: rho.sin(),
                r_min,
                r_max,
                members: Arc::new(members),
            });
        }
        SpatialIndex {
            cells,
            drift_km: 0.0,
        }
    }

    /// Advance this index to a new snapshot without rebucketing: every
    /// cell's conservative bounds are inflated by `step_drift_km` (an upper
    /// bound on how far any member moved since the previous snapshot),
    /// `removed` satellites leave their cells and `added` satellites join
    /// as fresh singleton cells built from their `positions` entry.
    ///
    /// Returns `None` once the drift accumulated since the last full
    /// [`SpatialIndex::build`] would exceed `REBUILD_DRIFT_KM` (400 km) —
    /// the caller rebuilds, resetting the inflation.
    ///
    /// Exactness: `nearest` answers only require that membership equals the
    /// servable set (maintained exactly here) and that each cell's bound
    /// never exceeds the true member distance. A member that moved by at
    /// most `d` stays within `[r_min - d, r_max + d]` of Earth's centre
    /// (triangle inequality) and within `asin(d / (r_min - d))` of its old
    /// direction (the tangent-line bound from radius `≥ r_min - d`), so the
    /// widened interval plus the angle-added cone remain valid lower-bound
    /// inputs. Query results are therefore bit-identical to a fresh build's;
    /// only the *pruning* (and the stable scan counters) can differ.
    pub fn advanced(
        &self,
        positions: &[Ecef],
        removed: &[u32],
        added: &[u32],
        step_drift_km: f64,
    ) -> Option<SpatialIndex> {
        let drift_km = self.drift_km + step_drift_km;
        if drift_km > REBUILD_DRIFT_KM {
            return None;
        }
        let mut cells = self.cells.clone();
        if step_drift_km > 0.0 {
            for cell in &mut cells {
                cell.r_max += step_drift_km;
                cell.r_min = (cell.r_min - step_drift_km).max(0.0);
                let (sin_a, cos_a) = if cell.r_min > step_drift_km {
                    let a = (step_drift_km / cell.r_min).min(1.0).asin();
                    a.sin_cos()
                } else {
                    (1.0, 0.0) // degenerate geometry: open the cone fully
                };
                let cos_rho = cell.cos_rho * cos_a - cell.sin_rho * sin_a;
                let sin_rho = cell.sin_rho * cos_a + cell.cos_rho * sin_a;
                if sin_rho < 0.0 {
                    // rho + a passed pi: the cone covers the whole sphere.
                    cell.cos_rho = -1.0;
                    cell.sin_rho = 0.0;
                } else {
                    cell.cos_rho = cos_rho;
                    cell.sin_rho = sin_rho;
                }
            }
        }
        for &r in removed {
            for cell in &mut cells {
                if let Ok(at) = cell.members.binary_search(&r) {
                    Arc::make_mut(&mut cell.members).remove(at);
                    break;
                }
            }
        }
        cells.retain(|c| !c.members.is_empty());
        for &a in added {
            let p = as_array(positions[a as usize]);
            let r = norm(p);
            let unit = if r > 1e-12 {
                [p[0] / r, p[1] / r, p[2] / r]
            } else {
                [1.0, 0.0, 0.0]
            };
            // Same 1e-9 angular slack a fresh singleton cell would get.
            let rho = 1e-9f64;
            cells.push(Cell {
                unit,
                cos_rho: rho.cos(),
                sin_rho: rho.sin(),
                r_min: r,
                r_max: r,
                members: Arc::new(vec![a]),
            });
        }
        Some(SpatialIndex { cells, drift_km })
    }

    /// Lower bound on the distance from `g` (radius `gn`, unit `gu`) to
    /// any member of `cell`, minus [`BOUND_SLACK_KM`]. Trig-free:
    /// `cos(theta_min) = cos(max(0, alpha - rho))` expands to
    /// `cosα·cosρ + sinα·sinρ` when `alpha > rho`, and 1 otherwise —
    /// both cases need only the dot product and one square root.
    fn cell_lower_bound(cell: &Cell, gn: f64, gu: [f64; 3]) -> f64 {
        let cos_a = dot(gu, cell.unit).clamp(-1.0, 1.0);
        let cos_t = if cos_a >= cell.cos_rho {
            1.0 // the query direction lies inside the cone: theta_min = 0
        } else {
            let sin_a = (1.0 - cos_a * cos_a).max(0.0).sqrt();
            cos_a * cell.cos_rho + sin_a * cell.sin_rho
        };
        let cross_r = if cos_t > 0.0 { cell.r_max } else { cell.r_min };
        let d2 = gn * gn + cell.r_min * cell.r_min - 2.0 * gn * cross_r * cos_t;
        d2.max(0.0).sqrt() - BOUND_SLACK_KM
    }

    /// The alive satellite nearest to `ground`, with the exact semantics
    /// of the linear scan: minimal `(distance, index)` lexicographically.
    /// `None` when the index is empty (every satellite failed).
    pub fn nearest(&self, positions: &[Ecef], ground: Ecef) -> Option<(SatIndex, Km)> {
        if self.cells.is_empty() {
            return None;
        }
        SPATIAL_QUERIES.incr();
        let g = as_array(ground);
        let gn = norm(g);
        if gn <= 0.0 || gn.is_nan() {
            // Degenerate query point (Earth's centre or NaN coordinates):
            // every bound argument below would be ill-defined, fall back to
            // scanning all members.
            return self.scan_all(positions, ground);
        }
        let gu = [g[0] / gn, g[1] / gn, g[2] / gn];

        // Seed the incumbent from the cell with the smallest lower bound
        // (no sort: one min pass beats sorting the whole bound list), then
        // sweep the rest, skipping any cell whose bound proves every member
        // strictly farther than the incumbent — the slack makes the bound
        // strict, so a skipped member cannot even tie. Scan order doesn't
        // affect the answer: the `(distance, index)` comparison is a total
        // order, so the surviving minimum is the linear scan's.
        let bounds: Vec<f64> = self
            .cells
            .iter()
            .map(|c| Self::cell_lower_bound(c, gn, gu))
            .collect();
        let seed = bounds
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .expect("cells non-empty when gn > 0 and index non-empty");

        let mut best: Option<(SatIndex, Km)> = None;
        let scan_cell = |cell_i: usize, best: &mut Option<(SatIndex, Km)>| {
            for &m in self.cells[cell_i].members.iter() {
                let d = positions[m as usize].distance(ground);
                let better = match *best {
                    None => true,
                    Some((bi, bd)) => d.0 < bd.0 || (d.0 == bd.0 && m < bi.0),
                };
                if better {
                    *best = Some((SatIndex(m), d));
                }
            }
        };
        scan_cell(seed, &mut best);
        let mut scanned = 1u64;
        for (cell_i, &bound) in bounds.iter().enumerate() {
            if cell_i == seed {
                continue;
            }
            if let Some((_, bd)) = best {
                if bound > bd.0 {
                    continue;
                }
            }
            scan_cell(cell_i, &mut best);
            scanned += 1;
        }
        SPATIAL_CELLS_SCANNED.add(scanned);
        SPATIAL_CELLS_PRUNED.add(self.cells.len() as u64 - scanned);
        best
    }

    fn scan_all(&self, positions: &[Ecef], ground: Ecef) -> Option<(SatIndex, Km)> {
        let mut best: Option<(SatIndex, Km)> = None;
        for cell in &self.cells {
            for &m in cell.members.iter() {
                let d = positions[m as usize].distance(ground);
                let better = match best {
                    None => true,
                    Some((bi, bd)) => d.0 < bd.0 || (d.0 == bd.0 && m < bi.0),
                };
                if better {
                    best = Some((SatIndex(m), d));
                }
            }
        }
        best
    }

    /// Number of non-empty cells (diagnostic).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of indexed satellites (diagnostic).
    pub fn member_count(&self) -> usize {
        self.cells.iter().map(|c| c.members.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacecdn_geo::Geodetic;

    fn ring_positions(n: usize, alt_km: f64) -> Vec<Ecef> {
        (0..n)
            .map(|i| {
                let lon = -180.0 + 360.0 * i as f64 / n as f64;
                let lat = 50.0 * ((i as f64) * 0.7).sin();
                Geodetic::at_altitude(lat, lon, alt_km).to_ecef()
            })
            .collect()
    }

    fn linear_nearest(positions: &[Ecef], alive: &[bool], g: Ecef) -> Option<(SatIndex, Km)> {
        let mut best: Option<(SatIndex, Km)> = None;
        for (i, pos) in positions.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let d = pos.distance(g);
            if best.is_none_or(|(_, bd)| d.0 < bd.0) {
                best = Some((SatIndex(i as u32), d));
            }
        }
        best
    }

    #[test]
    fn matches_linear_scan_everywhere() {
        let positions = ring_positions(400, 550.0);
        let alive = vec![true; positions.len()];
        let index = SpatialIndex::build(&positions, &alive);
        assert_eq!(index.member_count(), 400);
        for lat in (-80..=80).step_by(17) {
            for lon in (-180..180).step_by(23) {
                let g = Geodetic::ground(lat as f64, lon as f64).to_ecef();
                assert_eq!(
                    index.nearest(&positions, g),
                    linear_nearest(&positions, &alive, g),
                    "mismatch at lat={lat} lon={lon}"
                );
            }
        }
    }

    #[test]
    fn respects_alive_mask() {
        let positions = ring_positions(100, 550.0);
        let mut alive = vec![true; positions.len()];
        for i in (0..100).step_by(3) {
            alive[i] = false;
        }
        let index = SpatialIndex::build(&positions, &alive);
        assert_eq!(index.member_count(), alive.iter().filter(|a| **a).count());
        let g = Geodetic::ground(10.0, 20.0).to_ecef();
        assert_eq!(
            index.nearest(&positions, g),
            linear_nearest(&positions, &alive, g)
        );
    }

    #[test]
    fn empty_index_yields_none() {
        let positions = ring_positions(10, 550.0);
        let alive = vec![false; positions.len()];
        let index = SpatialIndex::build(&positions, &alive);
        assert_eq!(index.cell_count(), 0);
        assert!(index
            .nearest(&positions, Geodetic::ground(0.0, 0.0).to_ecef())
            .is_none());
    }

    #[test]
    fn advanced_index_stays_exact() {
        // Drift the whole ring eastward in small steps, folding removals and
        // re-additions in, and never rebuild: the conservatively inflated
        // bounds must keep every nearest answer identical to a linear scan.
        let n = 300usize;
        let step_deg = 0.5f64;
        let positions_at = |k: usize| -> Vec<Ecef> {
            (0..n)
                .map(|i| {
                    let lon = -180.0 + 360.0 * i as f64 / n as f64 + step_deg * k as f64;
                    let lat = 50.0 * ((i as f64) * 0.7).sin();
                    Geodetic::at_altitude(lat, lon, 550.0).to_ecef()
                })
                .collect()
        };
        let mut positions = positions_at(0);
        let mut alive = vec![true; n];
        let mut index = SpatialIndex::build(&positions, &alive);
        for k in 1..=6usize {
            let next = positions_at(k);
            let step_drift = positions
                .iter()
                .zip(&next)
                .map(|(a, b)| a.distance(*b).0)
                .fold(0.0f64, f64::max);
            positions = next;
            // Kill one member and resurrect the previous victim each step.
            let dead = (k * 37) % n;
            let back = ((k - 1) * 37) % n;
            let mut removed = vec![dead as u32];
            let mut added = Vec::new();
            if k > 1 && back != dead {
                alive[back] = true;
                added.push(back as u32);
            }
            alive[dead] = false;
            removed.retain(|&r| !added.contains(&r));
            added.retain(|&a| a != dead as u32);
            index = index
                .advanced(&positions, &removed, &added, step_drift)
                .expect("drift budget exhausted");
            for lat in (-75..=75).step_by(25) {
                for lon in (-180..180).step_by(40) {
                    let g = Geodetic::ground(lat as f64, lon as f64).to_ecef();
                    assert_eq!(
                        index.nearest(&positions, g),
                        linear_nearest(&positions, &alive, g),
                        "mismatch at step {k} lat={lat} lon={lon}"
                    );
                }
            }
        }
    }

    #[test]
    fn advanced_gives_up_past_drift_budget() {
        let positions = ring_positions(50, 550.0);
        let alive = vec![true; positions.len()];
        let index = SpatialIndex::build(&positions, &alive);
        let part = index
            .advanced(&positions, &[], &[], REBUILD_DRIFT_KM * 0.6)
            .expect("first step within budget");
        assert!(part
            .advanced(&positions, &[], &[], REBUILD_DRIFT_KM * 0.6)
            .is_none());
    }

    #[test]
    fn prunes_most_cells() {
        let positions = ring_positions(1000, 550.0);
        let alive = vec![true; positions.len()];
        let index = SpatialIndex::build(&positions, &alive);
        // Sanity on the geometry that makes the index worthwhile.
        assert!(index.cell_count() > 20, "got {}", index.cell_count());
        assert!(
            index.cell_count() < positions.len() / 2,
            "got {}",
            index.cell_count()
        );
    }
}
