//! The Starlink access model: everything between a user's packet leaving
//! the terminal and arriving at the network's edge.
//!
//! The user link is a scheduled Ku/Ka radio channel: beyond pure slant-range
//! propagation (~2–4 ms one-way is negligible), terminals wait for uplink
//! grants aligned to Starlink's 15 ms frame schedule, and packets cross the
//! satellite's modem, the gateway's RF/fibre boundary and the PoP's
//! carrier-grade NAT. We model those as:
//!
//! - a log-normal **user-link scheduling overhead** per round trip,
//! - fixed **gateway** and **PoP processing** costs,
//! - a small fibre RTT between gateway and PoP,
//! - per-ISL-hop **switching latency** for packets routed through space.
//!
//! Calibration anchors from the paper's Table 1: countries with a local PoP
//! (Spain, Japan) observe ~33–34 ms median min-RTT to their optimal CDN; the
//! extra latency of far-homed countries must be explained almost entirely by
//! the ISL path (Mozambique ~139 ms over ~8 800 km).

use serde::{Deserialize, Serialize};
use spacecdn_geo::propagation::{propagation_delay, Medium};
use spacecdn_geo::{DetRng, Km, Latency};

/// Calibrated latency overheads of the Starlink data path.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccessModel {
    /// Median round-trip user-link scheduling overhead, ms.
    pub ka_sched_median_ms: f64,
    /// Log-normal sigma of the scheduling overhead.
    pub ka_sched_sigma: f64,
    /// Gateway (ground station) processing per round trip, ms.
    pub gateway_processing_ms: f64,
    /// PoP processing (CGNAT, aggregation) per round trip, ms.
    pub pop_processing_ms: f64,
    /// Switching latency added per ISL hop per round trip, ms.
    pub isl_hop_processing_ms: f64,
    /// Fibre RTT between a gateway and its PoP, ms.
    pub gs_pop_fiber_rtt_ms: f64,
}

impl Default for AccessModel {
    fn default() -> Self {
        AccessModel {
            ka_sched_median_ms: 10.0,
            ka_sched_sigma: 0.35,
            gateway_processing_ms: 6.0,
            pop_processing_ms: 8.0,
            isl_hop_processing_ms: 1.2,
            gs_pop_fiber_rtt_ms: 2.0,
        }
    }
}

impl AccessModel {
    /// Round-trip latency of the user radio link for a given slant range:
    /// two-way propagation plus the scheduling overhead (median, no noise).
    pub fn user_link_rtt_median(&self, slant: Km) -> Latency {
        self.user_link_rtt_with_overhead(slant, self.ka_sched_median_ms)
    }

    /// Sampled round-trip user-link latency (log-normal scheduling jitter).
    pub fn user_link_rtt_sample(&self, slant: Km, rng: &mut DetRng) -> Latency {
        self.user_link_rtt_with_overhead(slant, self.sched_overhead_ms_sample(rng))
    }

    /// One log-normal draw of the Ka-band scheduling overhead, in ms.
    ///
    /// Exposed separately from [`AccessModel::user_link_rtt_sample`] so
    /// batched engines can draw the jitter once per request and combine it
    /// with many candidate slant ranges without re-consuming the RNG.
    pub fn sched_overhead_ms_sample(&self, rng: &mut DetRng) -> f64 {
        rng.log_normal_median(self.ka_sched_median_ms, self.ka_sched_sigma)
    }

    /// User-link RTT from a slant range and an already-drawn (or median)
    /// scheduling overhead in ms. The composition point for
    /// [`AccessModel::sched_overhead_ms_sample`].
    pub fn user_link_rtt_with_overhead(&self, slant: Km, sched_overhead_ms: f64) -> Latency {
        propagation_delay(slant, Medium::Vacuum).round_trip() + Latency::from_ms(sched_overhead_ms)
    }

    /// Round-trip latency of the space→ground leg at a gateway: two-way
    /// slant propagation, gateway processing, the gateway↔PoP fibre and
    /// PoP processing.
    pub fn ground_leg_rtt(&self, gateway_slant: Km) -> Latency {
        propagation_delay(gateway_slant, Medium::Vacuum).round_trip()
            + Latency::from_ms(
                self.gateway_processing_ms + self.gs_pop_fiber_rtt_ms + self.pop_processing_ms,
            )
    }

    /// Round-trip switching cost of an ISL chain with `hops` hops.
    pub fn isl_processing(&self, hops: usize) -> Latency {
        Latency::from_ms(self.isl_hop_processing_ms * hops as f64)
    }

    /// Minimum possible bent-pipe RTT for a PoP-local user (diagnostic /
    /// calibration): user link + ground leg with typical ~700 km slants and
    /// no ISL hops.
    pub fn pop_local_floor(&self) -> Latency {
        self.user_link_rtt_median(Km(700.0)) + self.ground_leg_rtt(Km(700.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_link_dominated_by_scheduling() {
        let m = AccessModel::default();
        let rtt = m.user_link_rtt_median(Km(600.0));
        // 2×600 km at c is 4 ms; scheduling adds 10 ms.
        assert!((rtt.ms() - 14.0).abs() < 0.2, "got {rtt}");
    }

    #[test]
    fn pop_local_floor_matches_table1_band() {
        // Table 1: Spain 33 ms, Japan 34 ms median min-RTT. Our PoP-local
        // floor (before the CDN leg, which is ~0 for a co-located site)
        // must land in the low 30s.
        let floor = AccessModel::default().pop_local_floor().ms();
        assert!((28.0..40.0).contains(&floor), "got {floor}");
    }

    #[test]
    fn sampled_rtt_jitters_above_propagation() {
        let m = AccessModel::default();
        let mut rng = DetRng::new(3, "access");
        let prop_only = propagation_delay(Km(600.0), Medium::Vacuum).round_trip();
        let mut values = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let s = m.user_link_rtt_sample(Km(600.0), &mut rng);
            assert!(s.ms() > prop_only.ms());
            values.insert((s.ms() * 1e4) as i64);
        }
        assert!(values.len() > 90, "samples should vary");
    }

    #[test]
    fn sampled_median_near_configured_median() {
        let m = AccessModel::default();
        let mut rng = DetRng::new(4, "access-median");
        let mut sched: Vec<f64> = (0..10_001)
            .map(|_| {
                m.user_link_rtt_sample(Km(0.0), &mut rng).ms() // isolates the overhead
            })
            .collect();
        sched.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sched[sched.len() / 2];
        assert!((median - 10.0).abs() < 0.5, "got {median}");
    }

    #[test]
    fn isl_processing_linear_in_hops() {
        let m = AccessModel::default();
        assert_eq!(m.isl_processing(0), Latency::ZERO);
        let ten = m.isl_processing(10).ms();
        assert!((ten - 12.0).abs() < 1e-9, "got {ten}");
    }

    #[test]
    fn ground_leg_component_sum() {
        let m = AccessModel::default();
        let leg = m.ground_leg_rtt(Km(0.0)).ms();
        assert!((leg - 16.0).abs() < 1e-9, "got {leg}");
    }
}
