//! ISL load accounting: where the laser backbone concentrates traffic.
//!
//! Every bent-pipe flow from a far-homed country crosses dozens of ISLs;
//! aggregate demand therefore concentrates on the links feeding popular
//! gateway corridors. This module routes a demand matrix over the +Grid
//! and accumulates per-link load, so experiments can ask the question the
//! paper's design implicitly raises: *how much backbone capacity does
//! serving content from orbit free up?*

use crate::routing::dijkstra;
use crate::topology::IslGraph;
use spacecdn_orbit::SatIndex;
use std::collections::HashMap;

/// Undirected link key with canonical endpoint ordering.
fn key(a: SatIndex, b: SatIndex) -> (SatIndex, SatIndex) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// Per-link accumulated load.
#[derive(Debug, Clone, Default)]
pub struct LinkLoad {
    /// Load per undirected ISL, in the caller's demand unit (e.g. Gbit/s).
    loads: HashMap<(SatIndex, SatIndex), f64>,
    /// Total demand routed.
    total_demand: f64,
    /// Demand that could not be routed (disconnected endpoints).
    unrouted: f64,
}

impl LinkLoad {
    /// An empty accumulator.
    pub fn new() -> Self {
        LinkLoad::default()
    }

    /// Route `demand` units from `src` to `dst` over the cheapest path and
    /// charge every traversed link.
    pub fn route(&mut self, graph: &IslGraph, src: SatIndex, dst: SatIndex, demand: f64) {
        if demand <= 0.0 {
            return;
        }
        self.total_demand += demand;
        if src == dst {
            return; // no ISL traversed
        }
        match dijkstra(graph, src, dst) {
            Some(path) => {
                for w in path.sats.windows(2) {
                    *self.loads.entry(key(w[0], w[1])).or_insert(0.0) += demand;
                }
            }
            None => self.unrouted += demand,
        }
    }

    /// Number of links carrying any load.
    pub fn loaded_links(&self) -> usize {
        self.loads.len()
    }

    /// The heaviest link and its load, if any. Ties break on the larger
    /// link key so the winner never depends on `HashMap` iteration order.
    pub fn max_link(&self) -> Option<((SatIndex, SatIndex), f64)> {
        self.loads
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .expect("finite")
                    .then_with(|| ((a.0 .0).0, (a.0 .1).0).cmp(&((b.0 .0).0, (b.0 .1).0)))
            })
            .map(|(k, v)| (*k, *v))
    }

    /// Load quantile across loaded links (`q` in `[0, 1]`); `None` when no
    /// link carries load.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.loads.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.loads.values().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pos = (q.clamp(0.0, 1.0) * (v.len() - 1) as f64).round() as usize;
        Some(v[pos])
    }

    /// Sum of load × links (total link-traversals, the backbone's work).
    ///
    /// Summed in canonical (sorted link key) order: `HashMap` iteration
    /// order is seeded per instance, and float addition is not
    /// associative, so summing in iteration order made the total's last
    /// bits — and every artefact derived from it — drift between runs.
    pub fn total_link_work(&self) -> f64 {
        let mut entries: Vec<(u32, u32, f64)> = self
            .loads
            .iter()
            .map(|(&(a, b), &v)| (a.0, b.0, v))
            .collect();
        entries.sort_unstable_by_key(|&(a, b, _)| (a, b));
        entries.iter().map(|&(_, _, v)| v).sum()
    }

    /// Demand that found no path.
    pub fn unrouted(&self) -> f64 {
        self.unrouted
    }

    /// Total demand offered.
    pub fn total_demand(&self) -> f64 {
        self.total_demand
    }

    /// Mean number of ISL hops per unit of demand (link work ÷ demand).
    pub fn mean_hops(&self) -> f64 {
        if self.total_demand <= 0.0 {
            0.0
        } else {
            self.total_link_work() / self.total_demand
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use spacecdn_geo::SimTime;
    use spacecdn_orbit::shell::shells;
    use spacecdn_orbit::Constellation;

    fn setup() -> (Constellation, IslGraph) {
        let c = Constellation::new(shells::starlink_shell1());
        let g = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        (c, g)
    }

    #[test]
    fn single_flow_charges_every_path_link() {
        let (c, g) = setup();
        let src = c.sat_at(0, 0);
        let dst = c.sat_at(5, 2);
        let mut load = LinkLoad::new();
        load.route(&g, src, dst, 2.0);
        let hops = dijkstra(&g, src, dst).unwrap().hop_count();
        assert_eq!(load.loaded_links(), hops);
        assert!((load.total_link_work() - 2.0 * hops as f64).abs() < 1e-9);
        assert!((load.mean_hops() - hops as f64).abs() < 1e-9);
    }

    #[test]
    fn overlapping_flows_accumulate() {
        let (c, g) = setup();
        let a = c.sat_at(0, 0);
        let b = c.sat_at(1, 0);
        let mut load = LinkLoad::new();
        load.route(&g, a, b, 1.0);
        load.route(&g, a, b, 3.0);
        let (_, max) = load.max_link().unwrap();
        assert!((max - 4.0).abs() < 1e-9);
    }

    #[test]
    fn same_endpoint_routes_nothing() {
        let (_, g) = setup();
        let mut load = LinkLoad::new();
        load.route(&g, SatIndex(7), SatIndex(7), 5.0);
        assert_eq!(load.loaded_links(), 0);
        assert_eq!(load.total_demand(), 5.0);
        assert_eq!(load.unrouted(), 0.0);
    }

    #[test]
    fn zero_and_negative_demand_ignored() {
        let (c, g) = setup();
        let mut load = LinkLoad::new();
        load.route(&g, c.sat_at(0, 0), c.sat_at(3, 3), 0.0);
        load.route(&g, c.sat_at(0, 0), c.sat_at(3, 3), -1.0);
        assert_eq!(load.total_demand(), 0.0);
        assert_eq!(load.loaded_links(), 0);
    }

    #[test]
    fn disconnected_demand_counted_unrouted() {
        let c = Constellation::new(shells::starlink_shell1());
        let mut faults = FaultPlan::none();
        // Island satellite 10 by failing all four neighbours' links.
        let sat = SatIndex(10);
        let g0 = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        for e in g0.neighbors(sat) {
            faults.fail_link(sat, e.to);
        }
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        let mut load = LinkLoad::new();
        load.route(&g, sat, SatIndex(100), 2.5);
        assert_eq!(load.unrouted(), 2.5);
    }

    #[test]
    fn quantiles_ordered() {
        let (c, g) = setup();
        let mut load = LinkLoad::new();
        for i in 0..20i64 {
            load.route(&g, c.sat_at(i, 0), c.sat_at(i + 8, 4), 1.0);
        }
        let p50 = load.quantile(0.5).unwrap();
        let p99 = load.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(load.max_link().unwrap().1 >= p99);
    }
}
