//! The LEO satellite network substrate: ISL topology, routing, the Starlink
//! access model, and end-to-end path construction.
//!
//! This crate is the reproduction's stand-in for the parts of xeoverse the
//! paper relies on. It models:
//!
//! - the **+Grid ISL topology** ([`topology`]): every satellite keeps four
//!   laser links — fore/aft within its plane, left/right to the adjacent
//!   planes — the arrangement deployed on Starlink v1.5+ and assumed by the
//!   paper's "n ISL hops" experiments;
//! - **routing** over that graph ([`routing`]): latency-weighted Dijkstra
//!   and hop-bounded BFS (the "is a copy within n hops?" primitive of §4);
//! - the **bent-pipe access model** ([`access`]): user link scheduling,
//!   gateway and PoP processing, calibrated against the PoP-local latencies
//!   in the paper's Table 1 (Spain 33 ms, Japan 34 ms);
//! - **end-to-end paths** ([`path`]): user terminal → overhead satellite →
//!   ISL chain → gateway near the home PoP → PoP, the route every Starlink
//!   packet takes before it ever meets a CDN;
//! - **fault injection** ([`fault`]) and a **bufferbloat model**
//!   ([`bufferbloat`]) for loaded-latency experiments (§3.2 observes
//!   > 200 ms under active downloads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod bufferbloat;
pub mod cache;
pub mod dynamics;
pub mod fault;
pub mod load;
pub mod path;
pub mod routing;
pub mod spatial;
pub mod topology;

pub use access::AccessModel;
pub use bufferbloat::BufferbloatModel;
pub use cache::{set_routing_cache_override, RoutingCache, SourceTables};
pub use dynamics::{churn_report, route_samples, ChurnReport};
pub use fault::{FaultEvent, FaultPlan, FaultPlanDelta, FaultSchedule};
pub use load::LinkLoad;
pub use path::{spacecdn_fetch_rtt, starlink_rtt_to_pop, StarlinkPath};
pub use routing::{
    bfs_nearest, dijkstra, dijkstra_distances, dijkstra_distances_into, hop_distances,
    hop_distances_into, hop_distances_many, repair_dijkstra_table, source_tables_many, IslPath,
    RepairOutcome,
};
pub use spatial::SpatialIndex;
pub use topology::{IslEdge, IslGraph, Neighbors, PatchStats};
