//! Routing over the ISL graph.
//!
//! Two primitives cover every experiment in the paper:
//!
//! - **latency-weighted Dijkstra** for the bent-pipe backhaul (user's
//!   overhead satellite → satellite over the gateway), and for finding the
//!   *cheapest* cached copy;
//! - **hop-bounded BFS** for the §4 question "is a copy within n ISL
//!   hops?", where hops — not kilometres — are the budget.
//!
//! All kernels walk the graph's CSR rows (see [`IslGraph::csr`]) — three
//! flat arrays indexed by satellite — rather than per-node edge lists, and
//! share per-thread scratch working sets so steady-state walks allocate
//! only their output. The batched `_many` entry points additionally reuse
//! one scratch borrow and one frontier buffer across many sources.

use crate::topology::IslGraph;
use spacecdn_geo::{Km, Latency};
use spacecdn_orbit::SatIndex;
use spacecdn_telemetry::LazyCounter;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Kernel invocation counters. Racy: the routing cache absorbs a
/// scheduling-dependent share of would-be runs (racing tasks may both
/// compute an uncached table), so run counts vary with thread interleaving.
static DIJKSTRA_RUNS: LazyCounter = LazyCounter::racy("lsn.dijkstra.runs");
static BFS_RUNS: LazyCounter = LazyCounter::racy("lsn.bfs.runs");
/// Scratch borrow outcomes: `reuse` = the thread-local working set served
/// the walk, `fresh` = a reentrant call fell back to new buffers.
static SCRATCH_REUSE: LazyCounter = LazyCounter::racy("lsn.scratch.reuse");
static SCRATCH_FRESH: LazyCounter = LazyCounter::racy("lsn.scratch.fresh");

/// A routed path through the constellation.
#[derive(Debug, Clone, PartialEq)]
pub struct IslPath {
    /// Satellites visited, source first, destination last. A single-element
    /// path means source == destination.
    pub sats: Vec<SatIndex>,
    /// Total geometric length of all hops.
    pub length: Km,
    /// One-way propagation delay over all hops (no processing).
    pub propagation: Latency,
}

impl IslPath {
    /// Number of ISL hops (satellites minus one).
    pub fn hop_count(&self) -> usize {
        self.sats.len().saturating_sub(1)
    }
}

/// Heap entry ordered by path cost, packed into one `u128` key: the cost's
/// raw IEEE-754 bit pattern in the high 64 bits, the satellite index in the
/// low 32. For non-negative finite floats the unsigned bit pattern is
/// monotonic in the value, so a plain integer compare of the packed key
/// orders by (cost, index-ascending) — exactly the pop order the original
/// `partial_cmp`-with-tie-break heap produced, in a single comparison.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapItem(u128);

impl HeapItem {
    #[inline]
    fn new(cost: f64, sat: u32) -> Self {
        debug_assert!(cost >= 0.0, "negative path cost");
        HeapItem(((cost.to_bits() as u128) << 32) | sat as u128)
    }

    #[inline]
    fn cost(&self) -> f64 {
        f64::from_bits((self.0 >> 32) as u64)
    }

    #[inline]
    fn sat(&self) -> u32 {
        self.0 as u32
    }
}

/// Min-priority-queue over [`HeapItem`] keys, backed by the std max-heap
/// on the complemented key (`!key` reverses the unsigned order, so one
/// integer compare replaces the old cost-then-index two-step).
///
/// Dijkstra pushes each satellite only on a strict cost improvement, so
/// every live key is unique and any correct min-priority-queue pops the
/// identical sequence — the backing container is free to differ
/// structurally without affecting byte-identity.
struct MinHeap {
    inner: std::collections::BinaryHeap<u128>,
}

impl MinHeap {
    fn new() -> Self {
        MinHeap {
            inner: std::collections::BinaryHeap::new(),
        }
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    #[inline]
    fn push(&mut self, key: HeapItem) {
        self.inner.push(!key.0);
    }

    #[inline]
    fn pop(&mut self) -> Option<HeapItem> {
        self.inner.pop().map(|k| HeapItem(!k))
    }
}

/// Sentinel in the scratch `prev` array: no predecessor recorded.
const NO_PREV: u32 = u32::MAX;

/// Reusable per-thread working memory for the graph walks below.
///
/// Campaigns run these routines millions of times; allocating `dist` /
/// `prev` / heap storage per call dominated their cost. The arrays are
/// epoch-stamped: `stamp[i] == epoch` means slot `i` was written during
/// the current walk, anything else reads as "unvisited" — so resetting
/// between walks is a single counter increment, not an O(n) fill.
struct Scratch {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<f64>,
    prev: Vec<u32>,
    heap: MinHeap,
    queue: VecDeque<(u32, u32)>,
    /// Current/next BFS wavefronts for the frontier-swap kernel.
    frontier: Vec<u32>,
    next_front: Vec<u32>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            epoch: 0,
            stamp: Vec::new(),
            dist: Vec::new(),
            prev: Vec::new(),
            heap: MinHeap::new(),
            queue: VecDeque::new(),
            frontier: Vec::new(),
            next_front: Vec::new(),
        }
    }

    /// Start a walk over a graph with `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() != n {
            self.stamp = vec![0; n];
            self.dist = vec![f64::INFINITY; n];
            self.prev = vec![NO_PREV; n];
            self.epoch = 0;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp counter wrapped (once per ~4 billion walks): clear the
            // stale stamps so old epochs can't alias the new one.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.queue.clear();
    }

    #[inline]
    fn visited(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    #[inline]
    fn dist(&self, i: usize) -> f64 {
        if self.visited(i) {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn record(&mut self, i: usize, dist: f64, prev: u32) {
        self.stamp[i] = self.epoch;
        self.dist[i] = dist;
        self.prev[i] = prev;
    }

    /// Rebuild the node chain ending at `last` from the `prev` links.
    fn trace_path(&self, last: SatIndex) -> Vec<SatIndex> {
        let mut sats = vec![last];
        let mut cur = last;
        while self.prev[cur.as_usize()] != NO_PREV {
            cur = SatIndex(self.prev[cur.as_usize()]);
            sats.push(cur);
        }
        sats.reverse();
        sats
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Run `f` with this thread's scratch buffers. A reentrant call (a BFS
/// target predicate invoking routing again) falls back to fresh buffers
/// instead of panicking on the `RefCell`.
fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            SCRATCH_REUSE.incr();
            f(&mut scratch)
        }
        Err(_) => {
            SCRATCH_FRESH.incr();
            f(&mut Scratch::new())
        }
    })
}

/// Latency-weighted shortest path between two satellites. `None` when the
/// destination is unreachable (faults can partition the grid).
pub fn dijkstra(graph: &IslGraph, src: SatIndex, dst: SatIndex) -> Option<IslPath> {
    if !graph.is_alive(src) || !graph.is_alive(dst) {
        return None;
    }
    if src == dst {
        return Some(IslPath {
            sats: vec![src],
            length: Km::ZERO,
            propagation: Latency::ZERO,
        });
    }
    let (offsets, nbrs, lens) = graph.csr();
    DIJKSTRA_RUNS.incr();
    with_scratch(|s| {
        s.begin(graph.len());
        s.record(src.as_usize(), 0.0, NO_PREV);
        s.heap.push(HeapItem::new(0.0, src.0));

        while let Some(item) = s.heap.pop() {
            let cost = item.cost();
            let sat = item.sat() as usize;
            if cost > s.dist(sat) {
                continue;
            }
            if item.sat() == dst.0 {
                break;
            }
            let (lo, hi) = (offsets[sat] as usize, offsets[sat + 1] as usize);
            for (&to, &len) in nbrs[lo..hi].iter().zip(&lens[lo..hi]) {
                let next = cost + len;
                if next < s.dist(to as usize) {
                    s.record(to as usize, next, item.sat());
                    s.heap.push(HeapItem::new(next, to));
                }
            }
        }

        let total = s.dist(dst.as_usize());
        if total.is_infinite() {
            return None;
        }
        let sats = s.trace_path(dst);
        debug_assert_eq!(sats.first(), Some(&src));
        let length = Km(total);
        Some(IslPath {
            sats,
            length,
            propagation: spacecdn_geo::propagation::propagation_delay(
                length,
                spacecdn_geo::Medium::Vacuum,
            ),
        })
    })
}

/// The [`dijkstra_distances`] kernel against caller scratch and output.
fn dijkstra_distances_with(
    s: &mut Scratch,
    graph: &IslGraph,
    src: SatIndex,
    out: &mut Vec<(f64, u32)>,
) {
    let n = graph.len();
    out.clear();
    out.resize(n, (f64::INFINITY, u32::MAX));
    if !graph.is_alive(src) {
        return;
    }
    DIJKSTRA_RUNS.incr();
    out[src.as_usize()] = (0.0, 0);
    let (offsets, nbrs, lens) = graph.csr();
    s.begin(n);
    s.heap.push(HeapItem::new(0.0, src.0));
    while let Some(item) = s.heap.pop() {
        let cost = item.cost();
        let sat = item.sat() as usize;
        if cost > out[sat].0 {
            continue;
        }
        let hops = out[sat].1;
        let (lo, hi) = (offsets[sat] as usize, offsets[sat + 1] as usize);
        // Zipped slice iteration: one bounds check per row, not per edge.
        for (&to, &len) in nbrs[lo..hi].iter().zip(&lens[lo..hi]) {
            let next = cost + len;
            let slot = &mut out[to as usize];
            if next < slot.0 {
                *slot = (next, hops + 1);
                s.heap.push(HeapItem::new(next, to));
            }
        }
    }
}

/// The [`hop_distances`] kernel: level-synchronous BFS swapping two
/// wavefront buffers instead of driving a deque of (node, depth) pairs.
/// The output array doubles as the visited set.
fn hop_distances_with(s: &mut Scratch, graph: &IslGraph, src: SatIndex, out: &mut Vec<u32>) {
    let n = graph.len();
    out.clear();
    out.resize(n, u32::MAX);
    if !graph.is_alive(src) {
        return;
    }
    BFS_RUNS.incr();
    out[src.as_usize()] = 0;
    let (offsets, nbrs, _) = graph.csr();
    // Disjoint borrows of the two wavefront buffers so the expansion loop
    // iterates one while pushing the other without per-index checks.
    let Scratch {
        frontier,
        next_front,
        ..
    } = s;
    frontier.clear();
    next_front.clear();
    frontier.push(src.0);
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        for &satu in frontier.iter() {
            let sat = satu as usize;
            let (lo, hi) = (offsets[sat] as usize, offsets[sat + 1] as usize);
            for &nb in &nbrs[lo..hi] {
                let slot = &mut out[nb as usize];
                if *slot == u32::MAX {
                    *slot = level;
                    next_front.push(nb);
                }
            }
        }
        std::mem::swap(frontier, next_front);
        next_front.clear();
    }
}

/// Single-source shortest paths: for every satellite, the (kilometres,
/// hop-count) of the cheapest-by-distance path from `src`. Unreachable or
/// failed satellites get `(f64::INFINITY, u32::MAX)`. One call costs one
/// Dijkstra; use it when many destinations share a source (e.g. scoring all
/// gateways).
pub fn dijkstra_distances(graph: &IslGraph, src: SatIndex) -> Vec<(f64, u32)> {
    let mut out = Vec::new();
    dijkstra_distances_into(graph, src, &mut out);
    out
}

/// [`dijkstra_distances`] writing into a caller-owned buffer (cleared and
/// resized), so sweeps over many sources can recycle one allocation.
pub fn dijkstra_distances_into(graph: &IslGraph, src: SatIndex, out: &mut Vec<(f64, u32)>) {
    with_scratch(|s| dijkstra_distances_with(s, graph, src, out));
}

/// Hop distances (BFS levels) from `src` to every satellite; `u32::MAX`
/// marks unreachable or failed satellites.
pub fn hop_distances(graph: &IslGraph, src: SatIndex) -> Vec<u32> {
    let mut out = Vec::new();
    hop_distances_into(graph, src, &mut out);
    out
}

/// [`hop_distances`] writing into a caller-owned buffer (cleared and
/// resized), so sweeps over many sources can recycle one allocation.
pub fn hop_distances_into(graph: &IslGraph, src: SatIndex, out: &mut Vec<u32>) {
    with_scratch(|s| hop_distances_with(s, graph, src, out));
}

/// Batched [`hop_distances`] over many sources: one scratch borrow and one
/// pair of wavefront buffers serve the whole batch, so per-source setup is
/// just the output allocation. Results are identical to per-source calls.
pub fn hop_distances_many(graph: &IslGraph, sources: &[SatIndex]) -> Vec<Vec<u32>> {
    with_scratch(|s| {
        sources
            .iter()
            .map(|&src| {
                let mut out = Vec::new();
                hop_distances_with(s, graph, src, &mut out);
                out
            })
            .collect()
    })
}

/// One source's routing tables as raw vectors: the `(km, hop-count)`
/// Dijkstra table and the BFS hop-level table.
pub type RawSourceTables = (Vec<(f64, u32)>, Vec<u32>);

/// Batched single-source tables: for each source, its
/// ([`dijkstra_distances`], [`hop_distances`]) pair, computed under one
/// scratch borrow. The cache-warming entry point
/// ([`IslGraph::warm_routing_cache`]) drains this into the routing cache.
pub fn source_tables_many(graph: &IslGraph, sources: &[SatIndex]) -> Vec<RawSourceTables> {
    with_scratch(|s| {
        sources
            .iter()
            .map(|&src| {
                let mut km = Vec::new();
                let mut hops = Vec::new();
                dijkstra_distances_with(s, graph, src, &mut km);
                hop_distances_with(s, graph, src, &mut hops);
                (km, hops)
            })
            .collect()
    })
}

/// Result of a successful [`repair_dijkstra_table`] call.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired `(km, hop-count)` table, bit-identical to a fresh
    /// [`dijkstra_distances`] run over the new graph.
    pub table: Vec<(f64, u32)>,
    /// How many vertices were re-relaxed (the dirty-region size).
    pub repaired: usize,
}

/// Sparse repair of a single-source `(km, hop-count)` table after a
/// *pure-removal* structural delta (edges only disappeared, none appeared,
/// and edge lengths are unchanged — i.e. a same-epoch fault step).
///
/// `removed_edges` lists every removed *directed* edge as
/// `(from, to, old_length_km)`. `old` is the table computed over
/// `old_graph`; `max_dirty` caps the affected region — when the dirty set
/// grows past it the repair declines (`None`) and the caller falls back to
/// a full recompute.
///
/// Bit-identity argument: a fresh Dijkstra's final entry for `v` is the
/// value-determined recurrence `out[v] = out[u*] + len(u*, v)` (that exact
/// float add), where `u*` is the minimum-`(dist, index)` member of
/// `argmin_u(out[u] + len)` — pop order plus strict-`<`
/// first-improvement-wins makes the earliest-popping tie parent the
/// writer. Removals never create shorter paths, so a vertex whose old
/// optimal (and tie-optimal) parents all survive keeps bit-identical
/// values. The dirty flood below marks the complement conservatively:
/// heads of removed edges that satisfied the recurrence *with float
/// equality*, then every vertex equality-parented through a dirty one
/// (supersets are safe — re-relaxing an unaffected vertex reproduces its
/// bits). Re-running Dijkstra seeded with every clean in-neighbour of the
/// dirty region replays exactly the relaxations the fresh run performs
/// into and inside that region, in the same `(dist, index)` pop order, so
/// every repaired entry — mantissas and hop counts — matches the fresh
/// run's. The timeline oracle and `properties.rs` proptests enforce this
/// end to end.
pub fn repair_dijkstra_table(
    old_graph: &IslGraph,
    new_graph: &IslGraph,
    src: SatIndex,
    removed_edges: &[(u32, u32, f64)],
    old: &[(f64, u32)],
    max_dirty: usize,
) -> Option<RepairOutcome> {
    let n = new_graph.len();
    debug_assert_eq!(old.len(), n);
    if !new_graph.is_alive(src) {
        // A dead source's fresh table is all-unreachable, including the
        // source slot itself (the kernel returns before seeding it).
        return Some(RepairOutcome {
            table: vec![(f64::INFINITY, u32::MAX); n],
            repaired: n,
        });
    }

    // Phase 1: flood the potentially-affected region over the *old* graph.
    let mut dirty = vec![false; n];
    let mut dirty_list: Vec<u32> = Vec::new();
    let push_dirty = |v: u32, dirty: &mut Vec<bool>, list: &mut Vec<u32>| {
        if !dirty[v as usize] && old[v as usize].0.is_finite() {
            dirty[v as usize] = true;
            list.push(v);
        }
    };
    for &(u, v, len) in removed_edges {
        if old[u as usize].0 + len == old[v as usize].0 {
            push_dirty(v, &mut dirty, &mut dirty_list);
        }
    }
    let (old_offsets, old_nbrs, old_lens) = old_graph.csr();
    let mut head = 0;
    while head < dirty_list.len() {
        if dirty_list.len() > max_dirty {
            return None;
        }
        let v = dirty_list[head] as usize;
        head += 1;
        let (lo, hi) = (old_offsets[v] as usize, old_offsets[v + 1] as usize);
        for (&w, &len) in old_nbrs[lo..hi].iter().zip(&old_lens[lo..hi]) {
            if old[v].0 + len == old[w as usize].0 {
                push_dirty(w, &mut dirty, &mut dirty_list);
            }
        }
    }
    if dirty_list.len() > max_dirty {
        return None;
    }
    if dirty_list.is_empty() {
        return Some(RepairOutcome {
            table: old.to_vec(),
            repaired: 0,
        });
    }

    // Phase 2: re-relax the dirty region over the *new* graph, seeded with
    // its clean boundary at their (final, hence fresh) distances.
    let mut out = old.to_vec();
    for &v in &dirty_list {
        out[v as usize] = (f64::INFINITY, u32::MAX);
    }
    let mut heap = MinHeap::new();
    let (offsets, nbrs, lens) = new_graph.csr();
    let mut seeded = vec![false; n];
    for &v in &dirty_list {
        let v = v as usize;
        let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
        for &u in &nbrs[lo..hi] {
            let ui = u as usize;
            if !dirty[ui] && !seeded[ui] && out[ui].0.is_finite() {
                seeded[ui] = true;
                heap.push(HeapItem::new(out[ui].0, u));
            }
        }
    }
    if dirty[src.as_usize()] {
        // Defensive: the source's zero distance can never satisfy the
        // equality flood, but re-seed it exactly as the kernel would.
        out[src.as_usize()] = (0.0, 0);
        heap.push(HeapItem::new(0.0, src.0));
    }
    while let Some(item) = heap.pop() {
        let cost = item.cost();
        let sat = item.sat() as usize;
        if cost > out[sat].0 {
            continue;
        }
        let hops = out[sat].1;
        let (lo, hi) = (offsets[sat] as usize, offsets[sat + 1] as usize);
        for (&to, &len) in nbrs[lo..hi].iter().zip(&lens[lo..hi]) {
            let next = cost + len;
            let slot = &mut out[to as usize];
            if next < slot.0 {
                *slot = (next, hops + 1);
                heap.push(HeapItem::new(next, to));
            }
        }
    }
    Some(RepairOutcome {
        table: out,
        repaired: dirty_list.len(),
    })
}

/// BFS from `src` for the nearest satellite (in hops) satisfying
/// `is_target`, limited to `max_hops`. Returns the full path. Ties at equal
/// hop count resolve to the first target discovered in deterministic BFS
/// order. The source itself is considered (zero hops).
pub fn bfs_nearest(
    graph: &IslGraph,
    src: SatIndex,
    max_hops: u32,
    mut is_target: impl FnMut(SatIndex) -> bool,
) -> Option<IslPath> {
    if !graph.is_alive(src) {
        return None;
    }
    if is_target(src) {
        return Some(IslPath {
            sats: vec![src],
            length: Km::ZERO,
            propagation: Latency::ZERO,
        });
    }
    let (offsets, nbrs, _) = graph.csr();
    BFS_RUNS.incr();
    with_scratch(|s| {
        s.begin(graph.len());
        s.record(src.as_usize(), 0.0, NO_PREV);
        s.queue.push_back((src.0, 0u32));

        while let Some((sat, hops)) = s.queue.pop_front() {
            if hops >= max_hops {
                continue;
            }
            let (lo, hi) = (
                offsets[sat as usize] as usize,
                offsets[sat as usize + 1] as usize,
            );
            for &nb in &nbrs[lo..hi] {
                if s.visited(nb as usize) {
                    continue;
                }
                s.record(nb as usize, 0.0, sat);
                if is_target(SatIndex(nb)) {
                    // Reconstruct and measure the path.
                    let sats = s.trace_path(SatIndex(nb));
                    let mut length = Km::ZERO;
                    for w in sats.windows(2) {
                        length += graph.position(w[0]).distance(graph.position(w[1]));
                    }
                    return Some(IslPath {
                        sats,
                        length,
                        propagation: spacecdn_geo::propagation::propagation_delay(
                            length,
                            spacecdn_geo::Medium::Vacuum,
                        ),
                    });
                }
                s.queue.push_back((nb, hops + 1));
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use spacecdn_geo::SimTime;
    use spacecdn_orbit::shell::shells;
    use spacecdn_orbit::Constellation;

    fn shell1_graph() -> (Constellation, IslGraph) {
        let c = Constellation::new(shells::starlink_shell1());
        let g = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        (c, g)
    }

    #[test]
    fn trivial_path_to_self() {
        let (_, g) = shell1_graph();
        let p = dijkstra(&g, SatIndex(7), SatIndex(7)).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.length, Km::ZERO);
    }

    #[test]
    fn single_hop_matches_edge_length() {
        let (c, g) = shell1_graph();
        let a = SatIndex(0);
        let b = c.sat_at(0, 1);
        let p = dijkstra(&g, a, b).unwrap();
        assert_eq!(p.hop_count(), 1);
        let edge_len = g.neighbors(a).iter().find(|e| e.to == b).unwrap().length.0;
        assert!((p.length.0 - edge_len).abs() < 1e-9);
    }

    #[test]
    fn path_is_connected_chain() {
        let (c, g) = shell1_graph();
        let p = dijkstra(&g, SatIndex(0), c.sat_at(36, 11)).unwrap();
        assert!(p.hop_count() >= 2);
        for w in p.sats.windows(2) {
            assert!(
                g.neighbors(w[0]).iter().any(|e| e.to == w[1]),
                "non-adjacent consecutive satellites"
            );
        }
    }

    #[test]
    fn dijkstra_prefers_short_inter_plane_hops() {
        // Walk the inter-plane neighbour chain three planes east; Dijkstra
        // to that satellite should use exactly those 3 cheap hops.
        let (c, g) = shell1_graph();
        let src = c.sat_at(0, 0);
        let mut cur = src;
        let mut expected_len = 0.0;
        for _ in 0..3 {
            let next = g
                .neighbors(cur)
                .iter()
                .find(|e| c.plane_of(e.to) == (c.plane_of(cur) + 1) % 72)
                .expect("east inter-plane link");
            expected_len += next.length.0;
            cur = next.to;
        }
        let p = dijkstra(&g, src, cur).unwrap();
        assert_eq!(p.hop_count(), 3);
        assert!(
            (p.length.0 - expected_len).abs() < 1e-6,
            "got {}",
            p.length.0
        );
        assert!(p.length.0 < 3.0 * 1500.0, "got {}", p.length.0);
    }

    #[test]
    fn dijkstra_symmetric_cost() {
        let (c, g) = shell1_graph();
        let a = c.sat_at(5, 3);
        let b = c.sat_at(40, 15);
        let ab = dijkstra(&g, a, b).unwrap();
        let ba = dijkstra(&g, b, a).unwrap();
        assert!((ab.length.0 - ba.length.0).abs() < 1e-6);
    }

    #[test]
    fn heap_item_bit_order_matches_float_order() {
        // The heap's integer ordering trick requires bit-pattern order to
        // agree with numeric order for every non-negative cost.
        let costs = [0.0, 1e-12, 0.5, 1.0, 550.0, 1970.5, 1e9, f64::INFINITY];
        for w in costs.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} !< {}", w[0], w[1]);
        }
        let mut heap = MinHeap::new();
        heap.push(HeapItem::new(2.0, 9));
        heap.push(HeapItem::new(1.0, 7));
        heap.push(HeapItem::new(1.0, 3));
        assert_eq!(heap.pop().unwrap().sat(), 3, "min cost, min index first");
        assert_eq!(heap.pop().unwrap().sat(), 7);
        assert_eq!(heap.pop().unwrap().sat(), 9);
    }

    #[test]
    fn grid_is_fully_connected() {
        let (_, g) = shell1_graph();
        let d = hop_distances(&g, SatIndex(0));
        assert!(d.iter().all(|&h| h != u32::MAX));
        // Grid diameter of a 72×22 torus is 36 + 11 = 47.
        let max = *d.iter().max().unwrap();
        assert_eq!(max, 47, "unexpected diameter {max}");
    }

    #[test]
    fn hop_distances_match_bfs_nearest() {
        let (c, g) = shell1_graph();
        let src = c.sat_at(10, 10);
        let dst = c.sat_at(14, 12);
        let d = hop_distances(&g, src)[dst.as_usize()];
        let p = bfs_nearest(&g, src, 64, |s| s == dst).unwrap();
        assert_eq!(p.hop_count() as u32, d);
    }

    #[test]
    fn batched_kernels_match_single_source_calls() {
        let c = Constellation::new(shells::starlink_shell1());
        let mut faults = FaultPlan::none();
        faults.fail_sat(SatIndex(300));
        faults.fail_sat(SatIndex(301));
        let g = IslGraph::build(&c, SimTime::from_secs(77), &faults);
        let sources = [SatIndex(0), SatIndex(300), SatIndex(512), SatIndex(1583)];

        let hops_batch = hop_distances_many(&g, &sources);
        let tables_batch = source_tables_many(&g, &sources);
        for (i, &src) in sources.iter().enumerate() {
            assert_eq!(hops_batch[i], hop_distances(&g, src), "hops for {src:?}");
            assert_eq!(
                tables_batch[i].0,
                dijkstra_distances(&g, src),
                "km for {src:?}"
            );
            assert_eq!(tables_batch[i].1, hops_batch[i], "bfs for {src:?}");
        }
    }

    #[test]
    fn into_variants_recycle_buffers_across_graphs() {
        let big = Constellation::new(shells::starlink_shell1());
        let small = Constellation::new(shells::test_shell());
        let g1 = IslGraph::build(&big, SimTime::EPOCH, &FaultPlan::none());
        let g2 = IslGraph::build(&small, SimTime::EPOCH, &FaultPlan::none());
        let mut km = Vec::new();
        let mut hops = Vec::new();
        dijkstra_distances_into(&g1, SatIndex(9), &mut km);
        hop_distances_into(&g1, SatIndex(9), &mut hops);
        assert_eq!(km.len(), g1.len());
        assert_eq!(km, dijkstra_distances(&g1, SatIndex(9)));
        // Shrinking to a smaller graph must resize, not read stale slots.
        dijkstra_distances_into(&g2, SatIndex(9), &mut km);
        hop_distances_into(&g2, SatIndex(9), &mut hops);
        assert_eq!(km.len(), g2.len());
        assert_eq!(hops, hop_distances(&g2, SatIndex(9)));
    }

    #[test]
    fn bfs_respects_hop_budget() {
        let (c, g) = shell1_graph();
        let src = c.sat_at(0, 0);
        let dst = c.sat_at(10, 0); // 10 hops away
        assert!(bfs_nearest(&g, src, 9, |s| s == dst).is_none());
        assert!(bfs_nearest(&g, src, 10, |s| s == dst).is_some());
    }

    #[test]
    fn bfs_zero_hops_only_source() {
        let (_, g) = shell1_graph();
        let src = SatIndex(0);
        assert!(bfs_nearest(&g, src, 0, |s| s == src).is_some());
        assert!(bfs_nearest(&g, src, 0, |s| s == SatIndex(1)).is_none());
    }

    #[test]
    fn bfs_finds_nearest_of_many() {
        let (c, g) = shell1_graph();
        let src = c.sat_at(0, 0);
        let near = c.sat_at(2, 0); // 2 hops
        let far = c.sat_at(20, 0); // 20 hops
        let targets = [near, far];
        let p = bfs_nearest(&g, src, 30, |s| targets.contains(&s)).unwrap();
        assert_eq!(*p.sats.last().unwrap(), near);
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn routing_around_failures() {
        let c = Constellation::new(shells::starlink_shell1());
        let a = c.sat_at(0, 0);
        let b = c.sat_at(2, 0);
        let mid = c.sat_at(1, 0);
        let mut faults = FaultPlan::none();
        faults.fail_sat(mid);
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        let p = dijkstra(&g, a, b).unwrap();
        assert!(!p.sats.contains(&mid));
        assert!(p.hop_count() >= 3, "detour must be longer");
    }

    #[test]
    fn unreachable_with_dead_endpoint() {
        let c = Constellation::new(shells::starlink_shell1());
        let mut faults = FaultPlan::none();
        faults.fail_sat(SatIndex(5));
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        assert!(dijkstra(&g, SatIndex(0), SatIndex(5)).is_none());
        assert!(dijkstra(&g, SatIndex(5), SatIndex(0)).is_none());
        assert!(bfs_nearest(&g, SatIndex(5), 10, |_| true).is_none());
    }

    #[test]
    fn dijkstra_no_worse_than_bfs_path_length() {
        // Dijkstra optimises kilometres; its path length must be ≤ any
        // hop-minimal path's length.
        let (c, g) = shell1_graph();
        let src = c.sat_at(3, 5);
        let dst = c.sat_at(30, 16);
        let dj = dijkstra(&g, src, dst).unwrap();
        let bfs = bfs_nearest(&g, src, 64, |s| s == dst).unwrap();
        assert!(dj.length.0 <= bfs.length.0 + 1e-6);
    }
}
