//! Routing over the ISL graph.
//!
//! Two primitives cover every experiment in the paper:
//!
//! - **latency-weighted Dijkstra** for the bent-pipe backhaul (user's
//!   overhead satellite → satellite over the gateway), and for finding the
//!   *cheapest* cached copy;
//! - **hop-bounded BFS** for the §4 question "is a copy within n ISL
//!   hops?", where hops — not kilometres — are the budget.

use crate::topology::IslGraph;
use spacecdn_geo::{Km, Latency};
use spacecdn_orbit::SatIndex;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A routed path through the constellation.
#[derive(Debug, Clone, PartialEq)]
pub struct IslPath {
    /// Satellites visited, source first, destination last. A single-element
    /// path means source == destination.
    pub sats: Vec<SatIndex>,
    /// Total geometric length of all hops.
    pub length: Km,
    /// One-way propagation delay over all hops (no processing).
    pub propagation: Latency,
}

impl IslPath {
    /// Number of ISL hops (satellites minus one).
    pub fn hop_count(&self) -> usize {
        self.sats.len().saturating_sub(1)
    }
}

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    sat: SatIndex,
}
impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; tie-break on index for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are finite")
            .then_with(|| other.sat.0.cmp(&self.sat.0))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Sentinel in the scratch `prev` array: no predecessor recorded.
const NO_PREV: u32 = u32::MAX;

/// Reusable per-thread working memory for the graph walks below.
///
/// Campaigns run these routines millions of times; allocating `dist` /
/// `prev` / heap storage per call dominated their cost. The arrays are
/// epoch-stamped: `stamp[i] == epoch` means slot `i` was written during
/// the current walk, anything else reads as "unvisited" — so resetting
/// between walks is a single counter increment, not an O(n) fill.
struct Scratch {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<f64>,
    prev: Vec<u32>,
    heap: BinaryHeap<HeapItem>,
    queue: VecDeque<(SatIndex, u32)>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            epoch: 0,
            stamp: Vec::new(),
            dist: Vec::new(),
            prev: Vec::new(),
            heap: BinaryHeap::new(),
            queue: VecDeque::new(),
        }
    }

    /// Start a walk over a graph with `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() != n {
            self.stamp = vec![0; n];
            self.dist = vec![f64::INFINITY; n];
            self.prev = vec![NO_PREV; n];
            self.epoch = 0;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp counter wrapped (once per ~4 billion walks): clear the
            // stale stamps so old epochs can't alias the new one.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.queue.clear();
    }

    #[inline]
    fn visited(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    #[inline]
    fn dist(&self, i: usize) -> f64 {
        if self.visited(i) {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn record(&mut self, i: usize, dist: f64, prev: u32) {
        self.stamp[i] = self.epoch;
        self.dist[i] = dist;
        self.prev[i] = prev;
    }

    /// Rebuild the node chain ending at `last` from the `prev` links.
    fn trace_path(&self, last: SatIndex) -> Vec<SatIndex> {
        let mut sats = vec![last];
        let mut cur = last;
        while self.prev[cur.as_usize()] != NO_PREV {
            cur = SatIndex(self.prev[cur.as_usize()]);
            sats.push(cur);
        }
        sats.reverse();
        sats
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Run `f` with this thread's scratch buffers. A reentrant call (a BFS
/// target predicate invoking routing again) falls back to fresh buffers
/// instead of panicking on the `RefCell`.
fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut Scratch::new()),
    })
}

/// Latency-weighted shortest path between two satellites. `None` when the
/// destination is unreachable (faults can partition the grid).
pub fn dijkstra(graph: &IslGraph, src: SatIndex, dst: SatIndex) -> Option<IslPath> {
    if !graph.is_alive(src) || !graph.is_alive(dst) {
        return None;
    }
    if src == dst {
        return Some(IslPath {
            sats: vec![src],
            length: Km::ZERO,
            propagation: Latency::ZERO,
        });
    }
    with_scratch(|s| {
        s.begin(graph.len());
        s.record(src.as_usize(), 0.0, NO_PREV);
        s.heap.push(HeapItem {
            cost: 0.0,
            sat: src,
        });

        while let Some(HeapItem { cost, sat }) = s.heap.pop() {
            if cost > s.dist(sat.as_usize()) {
                continue;
            }
            if sat == dst {
                break;
            }
            for edge in graph.neighbors(sat) {
                let next = cost + edge.length.0;
                if next < s.dist(edge.to.as_usize()) {
                    s.record(edge.to.as_usize(), next, sat.0);
                    s.heap.push(HeapItem {
                        cost: next,
                        sat: edge.to,
                    });
                }
            }
        }

        let total = s.dist(dst.as_usize());
        if total.is_infinite() {
            return None;
        }
        let sats = s.trace_path(dst);
        debug_assert_eq!(sats.first(), Some(&src));
        let length = Km(total);
        Some(IslPath {
            sats,
            length,
            propagation: spacecdn_geo::propagation::propagation_delay(
                length,
                spacecdn_geo::Medium::Vacuum,
            ),
        })
    })
}

/// Single-source shortest paths: for every satellite, the (kilometres,
/// hop-count) of the cheapest-by-distance path from `src`. Unreachable or
/// failed satellites get `(f64::INFINITY, u32::MAX)`. One call costs one
/// Dijkstra; use it when many destinations share a source (e.g. scoring all
/// gateways).
pub fn dijkstra_distances(graph: &IslGraph, src: SatIndex) -> Vec<(f64, u32)> {
    let n = graph.len();
    let mut out = vec![(f64::INFINITY, u32::MAX); n];
    if !graph.is_alive(src) {
        return out;
    }
    out[src.as_usize()] = (0.0, 0);
    with_scratch(|s| {
        s.begin(graph.len());
        s.heap.push(HeapItem {
            cost: 0.0,
            sat: src,
        });
        while let Some(HeapItem { cost, sat }) = s.heap.pop() {
            if cost > out[sat.as_usize()].0 {
                continue;
            }
            let hops = out[sat.as_usize()].1;
            for edge in graph.neighbors(sat) {
                let next = cost + edge.length.0;
                if next < out[edge.to.as_usize()].0 {
                    out[edge.to.as_usize()] = (next, hops + 1);
                    s.heap.push(HeapItem {
                        cost: next,
                        sat: edge.to,
                    });
                }
            }
        }
    });
    out
}

/// Hop distances (BFS levels) from `src` to every satellite; `u32::MAX`
/// marks unreachable or failed satellites.
pub fn hop_distances(graph: &IslGraph, src: SatIndex) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.len()];
    if !graph.is_alive(src) {
        return dist;
    }
    dist[src.as_usize()] = 0;
    with_scratch(|s| {
        s.begin(graph.len());
        s.queue.push_back((src, 0));
        while let Some((sat, d)) = s.queue.pop_front() {
            for edge in graph.neighbors(sat) {
                if dist[edge.to.as_usize()] == u32::MAX {
                    dist[edge.to.as_usize()] = d + 1;
                    s.queue.push_back((edge.to, d + 1));
                }
            }
        }
    });
    dist
}

/// BFS from `src` for the nearest satellite (in hops) satisfying
/// `is_target`, limited to `max_hops`. Returns the full path. Ties at equal
/// hop count resolve to the first target discovered in deterministic BFS
/// order. The source itself is considered (zero hops).
pub fn bfs_nearest(
    graph: &IslGraph,
    src: SatIndex,
    max_hops: u32,
    mut is_target: impl FnMut(SatIndex) -> bool,
) -> Option<IslPath> {
    if !graph.is_alive(src) {
        return None;
    }
    if is_target(src) {
        return Some(IslPath {
            sats: vec![src],
            length: Km::ZERO,
            propagation: Latency::ZERO,
        });
    }
    with_scratch(|s| {
        s.begin(graph.len());
        s.record(src.as_usize(), 0.0, NO_PREV);
        s.queue.push_back((src, 0u32));

        while let Some((sat, hops)) = s.queue.pop_front() {
            if hops >= max_hops {
                continue;
            }
            for edge in graph.neighbors(sat) {
                if s.visited(edge.to.as_usize()) {
                    continue;
                }
                s.record(edge.to.as_usize(), 0.0, sat.0);
                if is_target(edge.to) {
                    // Reconstruct and measure the path.
                    let sats = s.trace_path(edge.to);
                    let mut length = Km::ZERO;
                    for w in sats.windows(2) {
                        length += graph.position(w[0]).distance(graph.position(w[1]));
                    }
                    return Some(IslPath {
                        sats,
                        length,
                        propagation: spacecdn_geo::propagation::propagation_delay(
                            length,
                            spacecdn_geo::Medium::Vacuum,
                        ),
                    });
                }
                s.queue.push_back((edge.to, hops + 1));
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use spacecdn_geo::SimTime;
    use spacecdn_orbit::shell::shells;
    use spacecdn_orbit::Constellation;

    fn shell1_graph() -> (Constellation, IslGraph) {
        let c = Constellation::new(shells::starlink_shell1());
        let g = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        (c, g)
    }

    #[test]
    fn trivial_path_to_self() {
        let (_, g) = shell1_graph();
        let p = dijkstra(&g, SatIndex(7), SatIndex(7)).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.length, Km::ZERO);
    }

    #[test]
    fn single_hop_matches_edge_length() {
        let (c, g) = shell1_graph();
        let a = SatIndex(0);
        let b = c.sat_at(0, 1);
        let p = dijkstra(&g, a, b).unwrap();
        assert_eq!(p.hop_count(), 1);
        let edge_len = g.neighbors(a).iter().find(|e| e.to == b).unwrap().length.0;
        assert!((p.length.0 - edge_len).abs() < 1e-9);
    }

    #[test]
    fn path_is_connected_chain() {
        let (c, g) = shell1_graph();
        let p = dijkstra(&g, SatIndex(0), c.sat_at(36, 11)).unwrap();
        assert!(p.hop_count() >= 2);
        for w in p.sats.windows(2) {
            assert!(
                g.neighbors(w[0]).iter().any(|e| e.to == w[1]),
                "non-adjacent consecutive satellites"
            );
        }
    }

    #[test]
    fn dijkstra_prefers_short_inter_plane_hops() {
        // Walk the inter-plane neighbour chain three planes east; Dijkstra
        // to that satellite should use exactly those 3 cheap hops.
        let (c, g) = shell1_graph();
        let src = c.sat_at(0, 0);
        let mut cur = src;
        let mut expected_len = 0.0;
        for _ in 0..3 {
            let next = g
                .neighbors(cur)
                .iter()
                .find(|e| c.plane_of(e.to) == (c.plane_of(cur) + 1) % 72)
                .expect("east inter-plane link");
            expected_len += next.length.0;
            cur = next.to;
        }
        let p = dijkstra(&g, src, cur).unwrap();
        assert_eq!(p.hop_count(), 3);
        assert!(
            (p.length.0 - expected_len).abs() < 1e-6,
            "got {}",
            p.length.0
        );
        assert!(p.length.0 < 3.0 * 1500.0, "got {}", p.length.0);
    }

    #[test]
    fn dijkstra_symmetric_cost() {
        let (c, g) = shell1_graph();
        let a = c.sat_at(5, 3);
        let b = c.sat_at(40, 15);
        let ab = dijkstra(&g, a, b).unwrap();
        let ba = dijkstra(&g, b, a).unwrap();
        assert!((ab.length.0 - ba.length.0).abs() < 1e-6);
    }

    #[test]
    fn grid_is_fully_connected() {
        let (_, g) = shell1_graph();
        let d = hop_distances(&g, SatIndex(0));
        assert!(d.iter().all(|&h| h != u32::MAX));
        // Grid diameter of a 72×22 torus is 36 + 11 = 47.
        let max = *d.iter().max().unwrap();
        assert_eq!(max, 47, "unexpected diameter {max}");
    }

    #[test]
    fn hop_distances_match_bfs_nearest() {
        let (c, g) = shell1_graph();
        let src = c.sat_at(10, 10);
        let dst = c.sat_at(14, 12);
        let d = hop_distances(&g, src)[dst.as_usize()];
        let p = bfs_nearest(&g, src, 64, |s| s == dst).unwrap();
        assert_eq!(p.hop_count() as u32, d);
    }

    #[test]
    fn bfs_respects_hop_budget() {
        let (c, g) = shell1_graph();
        let src = c.sat_at(0, 0);
        let dst = c.sat_at(10, 0); // 10 hops away
        assert!(bfs_nearest(&g, src, 9, |s| s == dst).is_none());
        assert!(bfs_nearest(&g, src, 10, |s| s == dst).is_some());
    }

    #[test]
    fn bfs_zero_hops_only_source() {
        let (_, g) = shell1_graph();
        let src = SatIndex(0);
        assert!(bfs_nearest(&g, src, 0, |s| s == src).is_some());
        assert!(bfs_nearest(&g, src, 0, |s| s == SatIndex(1)).is_none());
    }

    #[test]
    fn bfs_finds_nearest_of_many() {
        let (c, g) = shell1_graph();
        let src = c.sat_at(0, 0);
        let near = c.sat_at(2, 0); // 2 hops
        let far = c.sat_at(20, 0); // 20 hops
        let targets = [near, far];
        let p = bfs_nearest(&g, src, 30, |s| targets.contains(&s)).unwrap();
        assert_eq!(*p.sats.last().unwrap(), near);
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn routing_around_failures() {
        let c = Constellation::new(shells::starlink_shell1());
        let a = c.sat_at(0, 0);
        let b = c.sat_at(2, 0);
        let mid = c.sat_at(1, 0);
        let mut faults = FaultPlan::none();
        faults.fail_sat(mid);
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        let p = dijkstra(&g, a, b).unwrap();
        assert!(!p.sats.contains(&mid));
        assert!(p.hop_count() >= 3, "detour must be longer");
    }

    #[test]
    fn unreachable_with_dead_endpoint() {
        let c = Constellation::new(shells::starlink_shell1());
        let mut faults = FaultPlan::none();
        faults.fail_sat(SatIndex(5));
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        assert!(dijkstra(&g, SatIndex(0), SatIndex(5)).is_none());
        assert!(dijkstra(&g, SatIndex(5), SatIndex(0)).is_none());
        assert!(bfs_nearest(&g, SatIndex(5), 10, |_| true).is_none());
    }

    #[test]
    fn dijkstra_no_worse_than_bfs_path_length() {
        // Dijkstra optimises kilometres; its path length must be ≤ any
        // hop-minimal path's length.
        let (c, g) = shell1_graph();
        let src = c.sat_at(3, 5);
        let dst = c.sat_at(30, 16);
        let dj = dijkstra(&g, src, dst).unwrap();
        let bfs = bfs_nearest(&g, src, 64, |s| s == dst).unwrap();
        assert!(dj.length.0 <= bfs.length.0 + 1e-6);
    }
}
