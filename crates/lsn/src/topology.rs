//! The +Grid ISL topology snapshot.
//!
//! Starlink v1.5+ satellites carry four laser terminals: two to the
//! neighbours fore and aft in the same plane, two to the nearest satellites
//! in the adjacent planes. The intra-plane links are geometrically constant;
//! the inter-plane links stretch and shrink with latitude (planes converge
//! towards the inclination limit). A snapshot freezes all link lengths at
//! one instant; experiments rebuild snapshots as simulated time advances.
//!
//! # Data layout
//!
//! Adjacency is stored in **CSR (compressed sparse row)** form as three
//! flat arrays — `offsets` (one entry per satellite plus a terminator),
//! `neighbours` and `lengths_km` (one entry per directed edge, structure
//! of arrays) — instead of a `Vec<Vec<Edge>>` of per-satellite heap
//! allocations. Routing kernels walk contiguous slices with no pointer
//! chasing; the [`IslEdge`] view survives as a cheap iterator
//! ([`Neighbors`]) so call sites keep their old shape.

use crate::cache::{routing_cache_enabled, RoutingCache, SourceTables};
use crate::fault::FaultPlan;
use crate::routing::{hop_distances, repair_dijkstra_table};
use crate::spatial::SpatialIndex;
use spacecdn_geo::propagation::{propagation_delay, Medium};
use spacecdn_geo::{Ecef, Geodetic, Km, Latency, SimTime};
use spacecdn_orbit::{Constellation, SatIndex};
use spacecdn_telemetry::{LazyCounter, LazyHistogram, Unit};
use std::collections::HashMap;
use std::sync::Arc;

/// Snapshot construction counters. Racy: the engine's snapshot pool
/// absorbs a scheduling-dependent share of would-be builds, and build
/// wall-clock is racy by nature.
static GRAPH_BUILDS: LazyCounter = LazyCounter::racy("lsn.graph.builds");
static GRAPH_BUILD_NS: LazyHistogram = LazyHistogram::racy("lsn.graph.build_ns", Unit::Nanos);
/// Delta-advancement counters, same racy classification (the snapshot pool
/// decides scheduling-dependently whether a patch happens at all).
static GRAPH_PATCHES: LazyCounter = LazyCounter::racy("lsn.graph.patches");
static GRAPH_PATCH_NS: LazyHistogram = LazyHistogram::racy("lsn.graph.patch_ns", Unit::Nanos);

/// Fraction of the vertex count the sparse table-repair dirty region may
/// reach before [`IslGraph::apply_delta`] abandons repair for that source
/// and falls back to a full recompute. Past this point the seeded re-run
/// saves too little over a fresh Dijkstra to pay for the flood.
const REPAIR_DIRTY_FRACTION: f64 = 0.25;

/// One directed adjacency entry: a neighbour and the link length.
///
/// Materialised on the fly from the CSR arrays by [`Neighbors`]; not the
/// storage format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslEdge {
    /// The neighbouring satellite.
    pub to: SatIndex,
    /// Laser link length at the snapshot instant.
    pub length: Km,
}

/// Iterator over a satellite's outgoing ISLs, yielding [`IslEdge`]s
/// materialised from the CSR row.
///
/// Cheap to copy; offers `len`/`is_empty`/`iter` so code written against
/// the old `&[IslEdge]` slice API keeps compiling.
#[derive(Debug, Clone, Copy)]
pub struct Neighbors<'g> {
    to: &'g [u32],
    lengths: &'g [f64],
}

impl<'g> Neighbors<'g> {
    /// Number of (remaining) neighbours.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.to.len()
    }

    /// True when the satellite has no (remaining) ISLs.
    pub fn is_empty(&self) -> bool {
        self.to.is_empty()
    }

    /// Slice-API compatibility: a fresh iterator over the same row.
    pub fn iter(&self) -> Neighbors<'g> {
        *self
    }

    /// The `i`-th edge of the row, if present.
    pub fn get(&self, i: usize) -> Option<IslEdge> {
        Some(IslEdge {
            to: SatIndex(*self.to.get(i)?),
            length: Km(self.lengths[i]),
        })
    }
}

impl Iterator for Neighbors<'_> {
    type Item = IslEdge;

    fn next(&mut self) -> Option<IslEdge> {
        let (&to, rest) = self.to.split_first()?;
        let (&km, lrest) = self.lengths.split_first()?;
        self.to = rest;
        self.lengths = lrest;
        Some(IslEdge {
            to: SatIndex(to),
            length: Km(km),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.to.len(), Some(self.to.len()))
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// A frozen ISL connectivity graph at one instant.
///
/// Carries two epoch-scoped acceleration structures that share its
/// lifetime: a [`RoutingCache`] memoizing single-source routing tables
/// (shared across clones — the cache is a pure function of the frozen
/// topology, so clones may as well pool their work) and a
/// [`SpatialIndex`] over alive satellites for nearest-satellite queries.
#[derive(Debug, Clone)]
pub struct IslGraph {
    time: SimTime,
    positions: Vec<Ecef>,
    /// CSR row starts: edges of satellite `s` live at
    /// `offsets[s]..offsets[s+1]` in `neighbours`/`lengths_km`. The two
    /// structural arrays are `Arc`-shared: [`Self::apply_delta`] steps
    /// whose fault delta leaves the adjacency unchanged reuse them
    /// zero-copy (only `lengths_km` is re-derived per instant).
    offsets: Arc<Vec<u32>>,
    /// Flat neighbour indices, grouped by source satellite.
    neighbours: Arc<Vec<u32>>,
    /// Link lengths in km, parallel to `neighbours`.
    lengths_km: Vec<f64>,
    alive: Vec<bool>,
    /// Alive *and* ground link intact: the mask for serving user
    /// terminals and gateways. A GSL-failed satellite stays in `alive`
    /// (it relays ISLs) but leaves `servable`.
    servable: Vec<bool>,
    /// The plan this snapshot was lowered from; [`Self::apply_delta`]
    /// diffs the next epoch's plan against it.
    faults: FaultPlan,
    /// The phase-determined inter-plane slot offsets probed at build time
    /// (interior pairs, seam pair). Stored so a delta step can detect the
    /// rare near-tie flip that would change adjacency globally.
    interior_offset: i64,
    seam_offset: i64,
    cache: Arc<RoutingCache>,
    spatial: SpatialIndex,
}

/// What [`IslGraph::apply_delta`] did, for telemetry and the benches'
/// delta-vs-full accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct PatchStats {
    /// Directed edges in rewritten CSR rows (old edges dropped plus new
    /// edges emitted). Zero on structure-preserving steps.
    pub patched_edges: u64,
    /// CSR rows copied verbatim from the previous snapshot.
    pub carried_rows: u64,
    /// Dijkstra-table entries re-relaxed by sparse repair across all
    /// repaired cached sources.
    pub repaired_vertices: u64,
    /// Cached sources whose tables could not be repaired (dirty region
    /// over threshold, edge additions, or an offset flip) and were dropped
    /// for full on-demand recomputation.
    pub full_fallbacks: u64,
    /// Did the step change adjacency structure at all?
    pub structural: bool,
    /// Did the spatial index hit its drift threshold and rebuild?
    pub spatial_rebuilt: bool,
}

/// Derive the alive/servable masks of a fresh snapshot.
fn fault_masks(constellation: &Constellation, faults: &FaultPlan) -> (Vec<bool>, Vec<bool>) {
    let n = constellation.len();
    let mut alive = vec![true; n];
    let mut servable = vec![true; n];
    for sat in constellation.sat_indices() {
        if faults.sat_failed(sat) {
            alive[sat.as_usize()] = false;
        }
        if faults.gsl_failed(sat) {
            servable[sat.as_usize()] = false;
        }
    }
    (alive, servable)
}

/// Phase-determined slot offsets of the nearest satellite one plane over:
/// `(interior, seam)`. See [`IslGraph::build`]. Shared by the full build
/// and the delta path so both lower the identical adjacency; the delta
/// path re-probes every step because a near-tie between two candidate
/// slots could flip the argmin as geometry evolves.
fn probe_offsets(constellation: &Constellation, positions: &[Ecef]) -> (i64, i64) {
    let plane_count = constellation.config().plane_count as i64;
    let sats_per_plane = constellation.config().sats_per_plane as i64;
    let nearest_slot_offset = |from_plane: i64| -> i64 {
        let probe = positions[constellation.sat_at(from_plane, 0).as_usize()];
        let mut best = (f64::INFINITY, 0i64);
        for s in 0..sats_per_plane {
            let d = probe
                .distance(positions[constellation.sat_at(from_plane + 1, s).as_usize()])
                .0;
            if d < best.0 {
                best = (d, s);
            }
        }
        best.1
    };
    let interior_offset = nearest_slot_offset(0);
    // With F = 0 every plane is identically phased, so the seam pair
    // (P-1, 0) is geometrically the same as any interior pair — no
    // second probe needed.
    let seam_offset = if plane_count > 1 && constellation.config().phase_factor != 0 {
        nearest_slot_offset(plane_count - 1)
    } else {
        interior_offset
    };
    (interior_offset, seam_offset)
}

/// The ≤4 +Grid candidate neighbours of `sat` in fixed aft/fore/left/right
/// order, given the probed inter-plane offsets. Factored out of the build
/// loop so [`IslGraph::apply_delta`] regenerates dirty rows with literally
/// the same code path.
fn grid_candidates(
    constellation: &Constellation,
    sat: SatIndex,
    interior_offset: i64,
    seam_offset: i64,
) -> [SatIndex; 4] {
    let plane_count = constellation.config().plane_count as i64;
    // Offset used when crossing from plane p to plane p+1.
    let offset_from = |p: i64| -> i64 {
        if p.rem_euclid(plane_count) == plane_count - 1 {
            seam_offset
        } else {
            interior_offset
        }
    };
    let plane = constellation.plane_of(sat) as i64;
    let slot = constellation.slot_of(sat) as i64;
    [
        constellation.sat_at(plane, slot - 1), // aft
        constellation.sat_at(plane, slot + 1), // fore
        constellation.sat_at(plane - 1, slot - offset_from(plane - 1)), // left
        constellation.sat_at(plane + 1, slot + offset_from(plane)), // right
    ]
}

impl IslGraph {
    /// Build the +Grid snapshot of `constellation` at `t`, excluding
    /// anything failed in `faults`.
    ///
    /// Inter-plane links attach to the *geometrically nearest* satellite in
    /// the adjacent plane. With Walker phasing the nearest slot is shifted
    /// by a constant offset (identical for every satellite and every
    /// instant, because the whole pattern co-rotates rigidly), so the offset
    /// is computed once per build and the resulting adjacency is symmetric.
    ///
    /// The CSR arrays are built in one pass over the satellites: each
    /// satellite's candidate neighbours are evaluated exactly once into a
    /// fixed-size stash, then flattened into exactly-sized flat arrays.
    pub fn build(constellation: &Constellation, t: SimTime, faults: &FaultPlan) -> Self {
        GRAPH_BUILDS.incr();
        let _span = GRAPH_BUILD_NS.timer();
        let n = constellation.len();
        let positions = constellation.snapshot_ecef(t);
        let (alive, servable) = fault_masks(constellation, faults);

        // Phase-determined slot offset of the nearest satellite one plane
        // over (see doc comment). The offset is uniform for all interior
        // plane pairs, but the wrap-around pair (P-1 → 0) can differ: Walker
        // phasing accumulates F·360/S degrees over a full revolution of
        // planes, which lands on a (possibly non-zero) whole-slot shift at
        // the seam.
        let (interior_offset, seam_offset) = probe_offsets(constellation, &positions);

        // One pass: evaluate each satellite's ≤4 candidate links exactly
        // once into a fixed-size stash, tracking the exact edge total.
        let mut stash: Vec<([u32; 4], [f64; 4], u8)> = vec![([0; 4], [0.0; 4], 0); n];
        let mut edge_total = 0usize;
        for sat in constellation.sat_indices() {
            if !alive[sat.as_usize()] {
                continue;
            }
            let candidates = grid_candidates(constellation, sat, interior_offset, seam_offset);
            let row = &mut stash[sat.as_usize()];
            for nb in candidates {
                if nb == sat || !alive[nb.as_usize()] || faults.link_failed(sat, nb) {
                    continue;
                }
                let length = positions[sat.as_usize()].distance(positions[nb.as_usize()]);
                let k = row.2 as usize;
                row.0[k] = nb.0;
                row.1[k] = length.0;
                row.2 += 1;
                edge_total += 1;
            }
        }

        // Flatten into exactly-sized CSR arrays.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbours = Vec::with_capacity(edge_total);
        let mut lengths_km = Vec::with_capacity(edge_total);
        offsets.push(0u32);
        for (tos, kms, deg) in &stash {
            let deg = *deg as usize;
            neighbours.extend_from_slice(&tos[..deg]);
            lengths_km.extend_from_slice(&kms[..deg]);
            offsets.push(neighbours.len() as u32);
        }

        let spatial = SpatialIndex::build(&positions, &servable);
        IslGraph {
            time: t,
            positions,
            offsets: Arc::new(offsets),
            neighbours: Arc::new(neighbours),
            lengths_km,
            alive,
            servable,
            faults: faults.clone(),
            interior_offset,
            seam_offset,
            cache: Arc::new(RoutingCache::new()),
            spatial,
        }
    }

    /// Advance this snapshot to `(t, faults)` by patching instead of
    /// rebuilding: the delta between the two fault plans determines which
    /// CSR rows are rewritten (everything else is carried — zero-copy via
    /// the shared `Arc`s when the structure is untouched), positions are
    /// refreshed with the hoisted-but-bit-identical
    /// [`Constellation::snapshot_ecef_into`], the spatial index is advanced
    /// with conservatively inflated bounds, and the routing cache carries,
    /// repairs, or drops the previous epoch's tables depending on what the
    /// step invalidated.
    ///
    /// `constellation` must be the one this snapshot was built from. The
    /// result is **bit-identical** to `IslGraph::build(constellation, t,
    /// faults)` in every observable: positions, CSR adjacency order, length
    /// mantissas, masks, routing tables and nearest-satellite answers —
    /// the timeline oracle and the `properties.rs` proptests enforce this.
    /// Only throughput telemetry and spatial pruning counters may differ.
    pub fn apply_delta(
        &self,
        constellation: &Constellation,
        t: SimTime,
        faults: &FaultPlan,
    ) -> (IslGraph, PatchStats) {
        let n = constellation.len();
        assert_eq!(n, self.len(), "apply_delta across different constellations");
        GRAPH_PATCHES.incr();
        let _span = GRAPH_PATCH_NS.timer();
        let mut stats = PatchStats::default();
        let delta = self.faults.diff(faults);
        let same_time = t == self.time;

        // Positions: carried bit-for-bit on a same-instant step, otherwise
        // refreshed by the hoisted kernel (bit-identical to a fresh
        // `snapshot_ecef` — pinned in the orbit crate's tests).
        let mut positions = Vec::new();
        if same_time {
            positions.clone_from(&self.positions);
        } else {
            constellation.snapshot_ecef_into(t, &mut positions);
        }
        let step_drift_km = if same_time {
            0.0
        } else {
            constellation.max_drift_km(t.as_secs_f64() - self.time.as_secs_f64())
        };

        // Masks: recompute exactly the entries the delta can have touched;
        // everything else is unchanged by the definition of the set diff.
        let mut alive = self.alive.clone();
        let mut servable = self.servable.clone();
        let mut touched: Vec<u32> = delta
            .failed_sats
            .iter()
            .chain(&delta.healed_sats)
            .chain(&delta.failed_gsls)
            .chain(&delta.healed_gsls)
            .map(|s| s.0)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let mut removed_servable: Vec<u32> = Vec::new();
        let mut added_servable: Vec<u32> = Vec::new();
        for &s in &touched {
            let sat = SatIndex(s);
            alive[s as usize] = !faults.sat_failed(sat);
            let was = self.servable[s as usize];
            let now = !faults.gsl_failed(sat);
            servable[s as usize] = now;
            if was && !now {
                removed_servable.push(s);
            } else if !was && now {
                added_servable.push(s);
            }
        }

        // Re-probe the inter-plane offsets at the new instant: the argmin
        // over slot distances could in principle flip on a near-tie
        // phasing, which would change adjacency globally — treat that as
        // an all-rows-dirty patch.
        let (interior_offset, seam_offset) = probe_offsets(constellation, &positions);
        let offsets_flipped =
            interior_offset != self.interior_offset || seam_offset != self.seam_offset;

        let structural = delta.is_structural() || offsets_flipped;
        stats.structural = structural;
        let (offsets, neighbours, lengths_km) = if !structural {
            // Structure untouched: share the flat arrays, re-derive only
            // the lengths (every inter-plane length moves with latitude).
            let lengths_km = if same_time {
                self.lengths_km.clone()
            } else {
                let mut lengths = Vec::with_capacity(self.lengths_km.len());
                for (sat, w) in self.offsets.windows(2).enumerate() {
                    let (lo, hi) = (w[0] as usize, w[1] as usize);
                    for &nb in &self.neighbours[lo..hi] {
                        lengths.push(positions[sat].distance(positions[nb as usize]).0);
                    }
                }
                lengths
            };
            stats.carried_rows = n as u64;
            (
                Arc::clone(&self.offsets),
                Arc::clone(&self.neighbours),
                lengths_km,
            )
        } else {
            // Dirty rows: every satellite whose candidate set can have
            // changed — the changed satellites themselves, their grid
            // candidates (the relation is symmetric, so these are exactly
            // the rows referencing them), and endpoints of explicit link
            // changes. An offset flip dirties everything.
            let mut dirty = vec![offsets_flipped; n];
            if !offsets_flipped {
                for &s in delta.failed_sats.iter().chain(&delta.healed_sats) {
                    dirty[s.as_usize()] = true;
                    for nb in grid_candidates(constellation, s, interior_offset, seam_offset) {
                        dirty[nb.as_usize()] = true;
                    }
                }
                for &(a, b) in delta.failed_links.iter().chain(&delta.healed_links) {
                    dirty[a.as_usize()] = true;
                    dirty[b.as_usize()] = true;
                }
            }

            let mut offsets_new = Vec::with_capacity(n + 1);
            let mut neighbours_new = Vec::with_capacity(self.neighbours.len() + 16);
            let mut lengths_new = Vec::with_capacity(self.lengths_km.len() + 16);
            offsets_new.push(0u32);
            for s in 0..n as u32 {
                let sat = SatIndex(s);
                if dirty[s as usize] {
                    let (old_row, _) = self.neighbor_row(s);
                    stats.patched_edges += old_row.len() as u64;
                    if alive[s as usize] {
                        for nb in grid_candidates(constellation, sat, interior_offset, seam_offset)
                        {
                            if nb == sat || !alive[nb.as_usize()] || faults.link_failed(sat, nb) {
                                continue;
                            }
                            neighbours_new.push(nb.0);
                            lengths_new.push(
                                positions[sat.as_usize()]
                                    .distance(positions[nb.as_usize()])
                                    .0,
                            );
                            stats.patched_edges += 1;
                        }
                    }
                } else {
                    stats.carried_rows += 1;
                    let (row, old_lens) = self.neighbor_row(s);
                    neighbours_new.extend_from_slice(row);
                    if same_time {
                        lengths_new.extend_from_slice(old_lens);
                    } else {
                        for &nb in row {
                            lengths_new
                                .push(positions[s as usize].distance(positions[nb as usize]).0);
                        }
                    }
                }
                offsets_new.push(neighbours_new.len() as u32);
            }
            (Arc::new(offsets_new), Arc::new(neighbours_new), lengths_new)
        };

        // Spatial index: advance with inflated-but-valid bounds, or rebuild
        // once the accumulated drift hits the threshold.
        let spatial =
            if removed_servable.is_empty() && added_servable.is_empty() && step_drift_km == 0.0 {
                self.spatial.clone()
            } else {
                match self.spatial.advanced(
                    &positions,
                    &removed_servable,
                    &added_servable,
                    step_drift_km,
                ) {
                    Some(s) => s,
                    None => {
                        stats.spatial_rebuilt = true;
                        SpatialIndex::build(&positions, &servable)
                    }
                }
            };

        let mut graph = IslGraph {
            time: t,
            positions,
            offsets,
            neighbours,
            lengths_km,
            alive,
            servable,
            faults: faults.clone(),
            interior_offset,
            seam_offset,
            cache: Arc::new(RoutingCache::new()),
            spatial,
        };

        // Routing cache succession: what survives depends on what moved.
        if routing_cache_enabled() {
            if !structural {
                graph.cache = Arc::new(if same_time {
                    // Same adjacency *and* lengths: every table is still
                    // exact, carry them all (plus unconsumed hop seeds).
                    RoutingCache::carried(
                        self.cache.tables_snapshot(),
                        self.cache.hop_seed_snapshot(),
                    )
                } else {
                    // Lengths moved, structure didn't: the BFS halves stay
                    // exact — seed them so misses skip the BFS re-run.
                    RoutingCache::carried(HashMap::new(), self.cache.hop_seed_snapshot())
                });
            } else if same_time && delta.is_pure_removal() && !offsets_flipped {
                // Dynamic SSSP: same instant, edges only removed — repair
                // each warmed source's table sparsely over the dirty
                // region, falling back past the threshold.
                let removed_edges = self.removed_directed_edges(&delta);
                let max_dirty = ((n as f64) * REPAIR_DIRTY_FRACTION) as usize;
                let mut repaired: HashMap<u32, Arc<SourceTables>> = HashMap::new();
                for (src, old_tables) in self.cache.tables_snapshot() {
                    match repair_dijkstra_table(
                        self,
                        &graph,
                        SatIndex(src),
                        &removed_edges,
                        &old_tables.km,
                        max_dirty,
                    ) {
                        Some(outcome) => {
                            stats.repaired_vertices += outcome.repaired as u64;
                            let hops = hop_distances(&graph, SatIndex(src));
                            repaired.insert(
                                src,
                                Arc::new(SourceTables {
                                    km: outcome.table,
                                    hops,
                                }),
                            );
                        }
                        None => stats.full_fallbacks += 1,
                    }
                }
                graph.cache = Arc::new(RoutingCache::carried(repaired, HashMap::new()));
            } else {
                // Structure changed non-monotonically (healings, or an
                // offset flip): nothing carries; warmed sources recompute
                // on demand.
                stats.full_fallbacks += self.cache.cached_sources() as u64;
            }
        }

        (graph, stats)
    }

    /// Every directed edge present in this snapshot that a pure-removal
    /// delta deletes, with its length — the seed set for sparse table
    /// repair.
    fn removed_directed_edges(&self, delta: &crate::fault::FaultPlanDelta) -> Vec<(u32, u32, f64)> {
        let mut removed = Vec::new();
        for &s in &delta.failed_sats {
            let (row, lens) = self.neighbor_row(s.0);
            for (&nb, &len) in row.iter().zip(lens) {
                // ECEF distance is symmetric in its operands bit-for-bit,
                // so the reverse edge carries the identical length.
                removed.push((s.0, nb, len));
                removed.push((nb, s.0, len));
            }
        }
        for &(a, b) in &delta.failed_links {
            let (row, lens) = self.neighbor_row(a.0);
            if let Some(k) = row.iter().position(|&nb| nb == b.0) {
                removed.push((a.0, b.0, lens[k]));
                removed.push((b.0, a.0, lens[k]));
            }
        }
        removed
    }

    /// Instant this snapshot was taken.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Number of satellites (including failed ones, which have no edges).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the graph has no satellites.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Is the satellite operational in this snapshot? (Its ISLs relay;
    /// its ground link may still be down — see [`Self::gsl_alive`].)
    pub fn is_alive(&self, sat: SatIndex) -> bool {
        self.alive[sat.as_usize()]
    }

    /// Can the satellite serve ground radios (alive *and* GSL intact)?
    /// This is the mask [`Self::nearest_alive`] selects overhead and
    /// gateway satellites from; ISL relaying and cache *sourcing* only
    /// need [`Self::is_alive`].
    pub fn gsl_alive(&self, sat: SatIndex) -> bool {
        self.servable[sat.as_usize()]
    }

    /// Outgoing ISLs of a satellite (empty for failed satellites).
    pub fn neighbors(&self, sat: SatIndex) -> Neighbors<'_> {
        let (to, lengths) = self.neighbor_row(sat.0);
        Neighbors { to, lengths }
    }

    /// CSR row of a satellite: neighbour indices and link lengths (km) as
    /// parallel slices. The zero-cost view routing kernels iterate over.
    #[inline]
    pub fn neighbor_row(&self, sat: u32) -> (&[u32], &[f64]) {
        let lo = self.offsets[sat as usize] as usize;
        let hi = self.offsets[sat as usize + 1] as usize;
        (&self.neighbours[lo..hi], &self.lengths_km[lo..hi])
    }

    /// The raw CSR arrays `(offsets, neighbours, lengths_km)` for kernels
    /// that index rows directly.
    #[inline]
    pub fn csr(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.offsets, &self.neighbours, &self.lengths_km)
    }

    /// Earth-fixed position of a satellite at the snapshot instant.
    pub fn position(&self, sat: SatIndex) -> Ecef {
        self.positions[sat.as_usize()]
    }

    /// One-way propagation delay across a single ISL.
    pub fn edge_delay(&self, edge: &IslEdge) -> Latency {
        propagation_delay(edge.length, Medium::Vacuum)
    }

    /// The *servable* satellite (alive with an intact ground link)
    /// nearest in slant range to a ground point. `None` if no satellite
    /// can serve ground at all.
    ///
    /// Answered from the snapshot's [`SpatialIndex`]; the result (winner
    /// and tie-break) is identical to [`Self::nearest_alive_linear`].
    pub fn nearest_alive(&self, ground: Geodetic) -> Option<(SatIndex, Km)> {
        if routing_cache_enabled() {
            self.spatial.nearest(&self.positions, ground.to_ecef())
        } else {
            self.nearest_alive_linear(ground)
        }
    }

    /// Reference implementation of [`Self::nearest_alive`]: a full scan
    /// over every satellite. Kept for equivalence tests, benchmarks, and
    /// the `SPACECDN_NO_ROUTING_CACHE` baseline mode.
    pub fn nearest_alive_linear(&self, ground: Geodetic) -> Option<(SatIndex, Km)> {
        let g = ground.to_ecef();
        let mut best: Option<(SatIndex, Km)> = None;
        for (i, pos) in self.positions.iter().enumerate() {
            if !self.servable[i] {
                continue;
            }
            let d = pos.distance(g);
            if best.is_none_or(|(_, bd)| d.0 < bd.0) {
                best = Some((SatIndex(i as u32), d));
            }
        }
        best
    }

    /// Memoized single-source routing tables (Dijkstra kilometres/hops and
    /// BFS hop levels) from `src`. First use per source computes the
    /// tables; later uses — from any thread or clone of this graph —
    /// share them. With the cache disabled (see
    /// [`crate::cache::set_routing_cache_override`]) the tables are
    /// recomputed per call, which is the pre-cache baseline behaviour.
    pub fn routing_tables(&self, src: SatIndex) -> Arc<SourceTables> {
        if routing_cache_enabled() {
            self.cache.tables_for(self, src)
        } else {
            Arc::new(SourceTables::compute(self, src))
        }
    }

    /// Minimum ISL hop count between two satellites (`u32::MAX` when
    /// unreachable).
    ///
    /// BFS hop levels on an undirected graph are exactly symmetric, so with
    /// the cache enabled this is answered from *either* endpoint's memoized
    /// tables — a table computed for source `s` also serves queries *to*
    /// `s`, halving the tables needed for pairwise hop queries. (Kilometre
    /// tables are *not* served in reverse: a float path sum accumulated in
    /// the opposite edge order may differ in the last bits, and campaign
    /// outputs must stay byte-identical.)
    pub fn hop_distance_between(&self, a: SatIndex, b: SatIndex) -> u32 {
        if routing_cache_enabled() {
            self.cache.hops_between(self, a, b)
        } else {
            crate::routing::hop_distances(self, a)[b.as_usize()]
        }
    }

    /// Pre-compute and memoize routing tables for many sources in one
    /// batch, reusing one scratch working set across all of them (the
    /// frontier-reuse BFS/Dijkstra kernel). No-op when the routing cache is
    /// disabled. Tables computed here are bitwise identical to on-demand
    /// ones, so warming never changes results — only when the work happens.
    pub fn warm_routing_cache(&self, sources: &[SatIndex]) {
        if routing_cache_enabled() {
            self.cache.warm(self, sources);
        }
    }

    /// Number of source satellites with memoized routing tables.
    pub fn cached_sources(&self) -> usize {
        self.cache.cached_sources()
    }

    /// How many pairwise hop queries were answered from the *reverse*
    /// endpoint's table (diagnostic; see [`Self::hop_distance_between`]).
    pub fn reverse_table_hits(&self) -> u64 {
        self.cache.reverse_hits()
    }

    /// The snapshot's spatial index (diagnostic access).
    pub fn spatial_index(&self) -> &SpatialIndex {
        &self.spatial
    }

    /// Total number of directed edges (diagnostic).
    pub fn edge_count(&self) -> usize {
        self.neighbours.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SourceTables;
    use spacecdn_orbit::shell::shells;

    fn graph() -> IslGraph {
        let c = Constellation::new(shells::starlink_shell1());
        IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none())
    }

    #[test]
    fn every_satellite_has_four_links() {
        let g = graph();
        for i in 0..g.len() {
            assert_eq!(
                g.neighbors(SatIndex(i as u32)).len(),
                4,
                "sat {i} degree wrong"
            );
        }
        assert_eq!(g.edge_count(), 4 * 1584);
    }

    #[test]
    fn csr_rows_match_iterator_view() {
        let g = graph();
        let (offsets, neighbours, lengths) = g.csr();
        assert_eq!(offsets.len(), g.len() + 1);
        assert_eq!(neighbours.len(), lengths.len());
        for i in 0..g.len() {
            let (to, km) = g.neighbor_row(i as u32);
            let edges: Vec<IslEdge> = g.neighbors(SatIndex(i as u32)).collect();
            assert_eq!(edges.len(), to.len());
            for (k, e) in edges.iter().enumerate() {
                assert_eq!(e.to.0, to[k]);
                assert_eq!(e.length.0, km[k]);
                assert_eq!(g.neighbors(SatIndex(i as u32)).get(k).unwrap(), *e);
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = graph();
        for i in 0..g.len() {
            let sat = SatIndex(i as u32);
            for e in g.neighbors(sat) {
                assert!(
                    g.neighbors(e.to).iter().any(|back| back.to == sat),
                    "edge {i}->{} has no reverse",
                    e.to.0
                );
            }
        }
    }

    #[test]
    fn intra_plane_links_are_constant_length() {
        let c = Constellation::new(shells::starlink_shell1());
        let g0 = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        let g1 = IslGraph::build(&c, SimTime::from_secs(1200), &FaultPlan::none());
        // Fore neighbour of sat 0 is in the same plane: its link length is
        // time-invariant.
        let fore = c.sat_at(0, 1);
        let len = |g: &IslGraph| {
            g.neighbors(SatIndex(0))
                .iter()
                .find(|e| e.to == fore)
                .expect("fore link present")
                .length
                .0
        };
        assert!((len(&g0) - len(&g1)).abs() < 1e-6);
        assert!((1900.0..2000.0).contains(&len(&g0)), "got {}", len(&g0));
    }

    #[test]
    fn inter_plane_links_shorter_than_intra() {
        // For Shell 1 (72 planes vs 22 slots) adjacent planes are much
        // closer together than adjacent slots: every satellite's two
        // shortest links are its inter-plane ones.
        let c = Constellation::new(shells::starlink_shell1());
        let g = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        let sat = SatIndex(0);
        let fore = c.sat_at(0, 1);
        let intra_len = g
            .neighbors(sat)
            .iter()
            .find(|e| e.to == fore)
            .expect("fore link present")
            .length
            .0;
        let inter: Vec<f64> = g
            .neighbors(sat)
            .iter()
            .filter(|e| c.plane_of(e.to) != 0)
            .map(|e| e.length.0)
            .collect();
        assert_eq!(inter.len(), 2);
        for len in inter {
            assert!(len < intra_len, "{len} !< {intra_len}");
            assert!((300.0..1500.0).contains(&len), "inter-plane link {len} km");
        }
    }

    #[test]
    fn edge_delays_physical() {
        let g = graph();
        for e in g.neighbors(SatIndex(100)) {
            let d = g.edge_delay(&e).ms();
            // 400..2000 km at c: 1.3..6.7 ms one-way.
            assert!((0.5..8.0).contains(&d), "delay {d} ms");
        }
    }

    #[test]
    fn failed_sat_has_no_edges_and_neighbors_drop_it() {
        let c = Constellation::new(shells::starlink_shell1());
        let mut faults = FaultPlan::none();
        faults.fail_sat(SatIndex(50));
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        assert!(!g.is_alive(SatIndex(50)));
        assert!(g.neighbors(SatIndex(50)).is_empty());
        for i in 0..g.len() {
            assert!(
                g.neighbors(SatIndex(i as u32))
                    .iter()
                    .all(|e| e.to != SatIndex(50)),
                "someone still links to the dead satellite"
            );
        }
        assert_eq!(g.edge_count(), 4 * 1584 - 8);
    }

    #[test]
    fn failed_link_removed_both_ways() {
        let c = Constellation::new(shells::starlink_shell1());
        let a = SatIndex(0);
        let b = c.sat_at(0, 1);
        let mut faults = FaultPlan::none();
        faults.fail_link(a, b);
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        assert!(g.neighbors(a).iter().all(|e| e.to != b));
        assert!(g.neighbors(b).iter().all(|e| e.to != a));
        assert_eq!(g.neighbors(a).len(), 3);
    }

    #[test]
    fn nearest_alive_skips_failures() {
        let c = Constellation::new(shells::starlink_shell1());
        let city = Geodetic::ground(48.1, 11.6);
        let g = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        let (best, d) = g.nearest_alive(city).unwrap();
        assert!(d.0 < 1200.0);

        let mut faults = FaultPlan::none();
        faults.fail_sat(best);
        let g2 = IslGraph::build(&c, SimTime::EPOCH, &faults);
        let (second, d2) = g2.nearest_alive(city).unwrap();
        assert_ne!(second, best);
        assert!(d2.0 >= d.0);
    }

    #[test]
    fn gsl_failed_sat_relays_but_cannot_serve() {
        let c = Constellation::new(shells::starlink_shell1());
        let city = Geodetic::ground(48.1, 11.6);
        let g0 = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        let (overhead, _) = g0.nearest_alive(city).unwrap();

        let mut faults = FaultPlan::none();
        faults.fail_gsl(overhead);
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        // ISLs untouched: still alive, still four laser links, edges intact.
        assert!(g.is_alive(overhead));
        assert!(!g.gsl_alive(overhead));
        assert_eq!(g.neighbors(overhead).len(), 4);
        assert_eq!(g.edge_count(), g0.edge_count());
        // But it no longer serves ground: nearest moves on, both via the
        // spatial index and the linear reference scan.
        let (second, _) = g.nearest_alive(city).unwrap();
        assert_ne!(second, overhead);
        assert_eq!(g.nearest_alive(city), g.nearest_alive_linear(city));
    }

    #[test]
    fn time_only_step_shares_csr_structure() {
        let c = Constellation::new(shells::starlink_shell1());
        let plan = FaultPlan::none();
        let g0 = IslGraph::build(&c, SimTime::EPOCH, &plan);
        let (g1, stats) = g0.apply_delta(&c, SimTime::from_secs(5), &plan);
        assert!(!stats.structural);
        assert_eq!(stats.patched_edges, 0);
        // The adjacency arrays are the same allocation, not a copy.
        let (o0, n0, _) = g0.csr();
        let (o1, n1, l1) = g1.csr();
        assert!(std::ptr::eq(o0.as_ptr(), o1.as_ptr()));
        assert!(std::ptr::eq(n0.as_ptr(), n1.as_ptr()));
        // Lengths were re-derived for the new instant, bit-identical to a
        // fresh build.
        let fresh = IslGraph::build(&c, SimTime::from_secs(5), &plan);
        let (_, _, lf) = fresh.csr();
        for (a, b) in l1.iter().zip(lf) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gsl_only_step_carries_warmed_tables() {
        let c = Constellation::new(shells::starlink_shell1());
        let g0 = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        let sources = [SatIndex(0), SatIndex(700)];
        g0.warm_routing_cache(&sources);
        let mut faults = FaultPlan::none();
        faults.fail_gsl(SatIndex(50));
        let (g1, stats) = g0.apply_delta(&c, SimTime::EPOCH, &faults);
        // A GSL kill touches no ISL edge: the warmed tables ride along
        // untouched and still match a cold compute on the patched graph.
        assert!(!stats.structural);
        assert_eq!(g1.cached_sources(), sources.len());
        assert!(!g1.gsl_alive(SatIndex(50)));
        for src in sources {
            let got = g1.routing_tables(src);
            let want = SourceTables::compute(&g1, src);
            assert_eq!(got.hops, want.hops);
            for (a, b) in got.km.iter().zip(&want.km) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1, b.1);
            }
        }
    }

    #[test]
    fn pure_removal_step_repairs_tables_sparsely() {
        let c = Constellation::new(shells::starlink_shell1());
        let g0 = IslGraph::build(&c, SimTime::EPOCH, &FaultPlan::none());
        let sources = [SatIndex(3), SatIndex(911)];
        g0.warm_routing_cache(&sources);
        let mut faults = FaultPlan::none();
        faults.fail_sat(SatIndex(400));
        let (g1, stats) = g0.apply_delta(&c, SimTime::EPOCH, &faults);
        assert!(stats.structural);
        assert!(stats.patched_edges > 0);
        assert_eq!(stats.full_fallbacks, 0);
        assert!(stats.repaired_vertices > 0);
        // The repair touched only a small region of each table.
        assert!(
            (stats.repaired_vertices as usize) < sources.len() * c.len() / 4,
            "repaired {} vertices",
            stats.repaired_vertices
        );
        assert_eq!(g1.cached_sources(), sources.len());
        let fresh = IslGraph::build(&c, SimTime::EPOCH, &faults);
        for src in sources {
            let got = g1.routing_tables(src);
            let want = SourceTables::compute(&fresh, src);
            assert_eq!(got.hops, want.hops);
            for (a, b) in got.km.iter().zip(&want.km) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1, b.1);
            }
        }
    }

    #[test]
    fn all_failed_yields_none() {
        let c = Constellation::new(shells::test_shell());
        let mut faults = FaultPlan::none();
        for s in c.sat_indices() {
            faults.fail_sat(s);
        }
        let g = IslGraph::build(&c, SimTime::EPOCH, &faults);
        assert!(g.nearest_alive(Geodetic::ground(0.0, 0.0)).is_none());
    }
}
