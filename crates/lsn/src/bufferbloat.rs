//! Bufferbloat: queueing delay under load.
//!
//! §3.2 corroborates earlier findings that Starlink suffers significant
//! bufferbloat — the authors observe **> 200 ms during active downloads**
//! from ISL-dependent countries. We model the loaded-latency inflation as an
//! M/M/1-style queueing term that explodes as utilisation approaches
//! saturation, with a cap representing the (finite, but generously sized)
//! buffers.

use serde::{Deserialize, Serialize};
use spacecdn_geo::{DetRng, Latency};

/// Queueing-delay model for a loaded access link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BufferbloatModel {
    /// Mean queueing delay at 50 % utilisation, ms.
    pub base_queue_ms: f64,
    /// Cap on queueing delay (finite buffers), ms.
    pub max_queue_ms: f64,
}

impl Default for BufferbloatModel {
    fn default() -> Self {
        BufferbloatModel {
            base_queue_ms: 15.0,
            max_queue_ms: 400.0,
        }
    }
}

impl BufferbloatModel {
    /// Mean queueing delay at the given utilisation in `[0, 1)`.
    ///
    /// Shaped like M/M/1 waiting time: `base × ρ/(1−ρ)` normalised so that
    /// ρ = 0.5 yields `base_queue_ms`, clamped to `max_queue_ms`.
    pub fn mean_delay(&self, utilization: f64) -> Latency {
        let rho = utilization.clamp(0.0, 0.999);
        let raw = self.base_queue_ms * (rho / (1.0 - rho));
        Latency::from_ms(raw.min(self.max_queue_ms))
    }

    /// One sampled queueing delay (exponential around the mean — the
    /// classic M/M/1 waiting-time distribution), capped.
    pub fn sample_delay(&self, utilization: f64, rng: &mut DetRng) -> Latency {
        let mean = self.mean_delay(utilization).ms();
        if mean <= 0.0 {
            return Latency::ZERO;
        }
        Latency::from_ms(rng.exponential(mean).min(self.max_queue_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_adds_nothing() {
        assert_eq!(BufferbloatModel::default().mean_delay(0.0), Latency::ZERO);
    }

    #[test]
    fn half_utilisation_is_base() {
        let m = BufferbloatModel::default();
        assert!((m.mean_delay(0.5).ms() - m.base_queue_ms).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_utilisation() {
        let m = BufferbloatModel::default();
        let mut last = -1.0;
        for u in [0.0, 0.2, 0.5, 0.7, 0.9, 0.95, 0.99] {
            let d = m.mean_delay(u).ms();
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn active_download_exceeds_200ms() {
        // The paper's observation: > 200 ms during active downloads.
        let m = BufferbloatModel::default();
        assert!(m.mean_delay(0.95).ms() > 200.0);
    }

    #[test]
    fn saturation_capped() {
        let m = BufferbloatModel::default();
        assert!(m.mean_delay(1.0).ms() <= m.max_queue_ms);
        assert!(m.mean_delay(5.0).ms() <= m.max_queue_ms);
    }

    #[test]
    fn samples_capped_and_varying() {
        let m = BufferbloatModel::default();
        let mut rng = DetRng::new(2, "bloat");
        let mut any_nonzero = false;
        for _ in 0..200 {
            let d = m.sample_delay(0.8, &mut rng).ms();
            assert!(d <= m.max_queue_ms);
            assert!(d >= 0.0);
            any_nonzero |= d > 0.0;
        }
        assert!(any_nonzero);
        assert_eq!(m.sample_delay(0.0, &mut rng), Latency::ZERO);
    }
}
