//! Property-based tests for constellation geometry.

use proptest::prelude::*;
use spacecdn_geo::{Geodetic, SimTime};
use spacecdn_orbit::shell::ShellConfig;
use spacecdn_orbit::{Constellation, SatIndex};

fn arb_shell() -> impl Strategy<Value = ShellConfig> {
    (2u32..12, 2u32..12, 300.0f64..1200.0, 40.0f64..98.0).prop_flat_map(
        |(planes, sats, alt, inc)| {
            (0u32..planes).prop_map(move |f| ShellConfig {
                altitude_km: alt,
                inclination_deg: inc,
                plane_count: planes,
                sats_per_plane: sats,
                phase_factor: f,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_satellites_hold_altitude(shell in arb_shell(), t in 0u64..100_000) {
        let c = Constellation::new(shell);
        for sat in c.sat_indices().step_by(7) {
            let pos = c.position(sat, SimTime::from_secs(t));
            prop_assert!((pos.alt_km - shell.altitude_km).abs() < 1e-6);
        }
    }

    #[test]
    fn latitude_never_exceeds_inclination(shell in arb_shell(), t in 0u64..100_000) {
        let c = Constellation::new(shell);
        let lat_cap = if shell.inclination_deg <= 90.0 {
            shell.inclination_deg
        } else {
            180.0 - shell.inclination_deg
        };
        for sat in c.sat_indices().step_by(5) {
            let pos = c.position(sat, SimTime::from_secs(t));
            prop_assert!(pos.lat_deg.abs() <= lat_cap + 1e-6);
        }
    }

    #[test]
    fn distinct_satellites_never_collide(shell in arb_shell(), t in 0u64..50_000) {
        let c = Constellation::new(shell);
        let snap = c.snapshot_ecef(SimTime::from_secs(t));
        for i in 0..snap.len() {
            for j in (i + 1)..snap.len() {
                prop_assert!(snap[i].distance(snap[j]).0 > 1.0,
                    "sats {i} and {j} collide");
            }
        }
    }

    #[test]
    fn inter_sat_distance_symmetric(shell in arb_shell(), t in 0u64..50_000) {
        let c = Constellation::new(shell);
        let a = SatIndex(0);
        let b = SatIndex((c.len() / 2) as u32);
        let t = SimTime::from_secs(t);
        let ab = c.inter_sat_distance(a, b, t).0;
        let ba = c.inter_sat_distance(b, a, t).0;
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn intra_plane_neighbor_distance_constant(shell in arb_shell(), t1 in 0u64..50_000, t2 in 0u64..50_000) {
        // Same-plane neighbours co-rotate: their chord never changes.
        let c = Constellation::new(shell);
        let a = c.sat_at(0, 0);
        let b = c.sat_at(0, 1);
        let d1 = c.inter_sat_distance(a, b, SimTime::from_secs(t1)).0;
        let d2 = c.inter_sat_distance(a, b, SimTime::from_secs(t2)).0;
        prop_assert!((d1 - d2).abs() < 1e-6, "{d1} vs {d2}");
    }

    #[test]
    fn nearest_satellite_slant_at_least_altitude(
        shell in arb_shell(),
        lat in -60.0f64..60.0,
        lon in -180.0f64..180.0,
        t in 0u64..50_000,
    ) {
        let c = Constellation::new(shell);
        let (_, d) = c.nearest_satellite(Geodetic::ground(lat, lon), SimTime::from_secs(t));
        prop_assert!(d.0 >= shell.altitude_km - 1e-6);
    }

    #[test]
    fn plane_slot_decomposition_consistent(shell in arb_shell()) {
        let c = Constellation::new(shell);
        for sat in c.sat_indices() {
            let p = c.plane_of(sat);
            let s = c.slot_of(sat);
            prop_assert!(p < shell.plane_count);
            prop_assert!(s < shell.sats_per_plane);
            prop_assert_eq!(c.sat_at(p as i64, s as i64), sat);
        }
    }
}
